//! Property tests for the checked-conversion helpers and the address
//! decomposition they guard: narrowing either round-trips exactly or is
//! rejected with the offending value, and page/line/frame splits recompose
//! to the original address for any input.

use mempod_types::convert::{
    try_u32_from_u64, try_usize_from_u64, u32_from_u64, u64_from_u32, u64_from_usize,
    usize_from_u32,
};
use mempod_types::{Addr, FrameId, Geometry, LineId, PageId, LINE_SIZE, PAGE_SIZE};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Narrowing to u32 round-trips for every in-range value, through both
    /// the fallible and panicking flavors and back through usize.
    #[test]
    fn u32_narrowing_round_trips(v in 0u64..=u32::MAX as u64) {
        let narrow = try_u32_from_u64(v).expect("in range");
        prop_assert_eq!(narrow, u32_from_u64(v));
        prop_assert_eq!(u64_from_u32(narrow), v);
        prop_assert_eq!(u64_from_usize(usize_from_u32(narrow)), v);
    }

    /// Every out-of-range value is rejected, carrying the value and target
    /// type in the error (nothing is silently truncated).
    #[test]
    fn u32_narrowing_rejects_out_of_range(v in (u32::MAX as u64 + 1)..u64::MAX) {
        let err = try_u32_from_u64(v).expect_err("out of range");
        prop_assert_eq!(err.value, v);
        prop_assert_eq!(err.target, "u32");
    }

    /// usize narrowing round-trips for values below 2^32 (the compile-time
    /// guard admits only 32..=64-bit targets, so these always fit).
    #[test]
    fn usize_narrowing_round_trips(v in 0u64..(1u64 << 32)) {
        let narrow = try_usize_from_u64(v).expect("fits every supported target");
        prop_assert_eq!(u64_from_usize(narrow), v);
    }

    /// A byte address splits into (page, offset) and (line, offset) pieces
    /// that each recompose to the original address exactly.
    #[test]
    fn addr_split_recomposes(page in 0u64..(1u64 << 40), offset in 0u64..PAGE_SIZE as u64) {
        let a = Addr(page * PAGE_SIZE as u64 + offset);
        prop_assert_eq!(a.page(), PageId(page));
        prop_assert_eq!(a.page_offset(), offset);
        prop_assert_eq!(a.page().base_addr().0 + a.page_offset(), a.0);
        prop_assert_eq!(a.line().base_addr().0 + a.line_offset(), a.0);
        prop_assert_eq!(a.line().page(), PageId(page));
        prop_assert_eq!(a.line().index_in_page(), offset / LINE_SIZE as u64);
    }

    /// Line indices decompose against their page consistently: a page's
    /// first line plus the in-page index reproduces the line.
    #[test]
    fn line_split_recomposes(line in 0u64..(1u64 << 45)) {
        let l = LineId(line);
        prop_assert_eq!(l.page().first_line().index() + l.index_in_page(), l.index());
        prop_assert_eq!(l.base_addr().line(), l);
    }

    /// Pod-residue frame numbering (which routes through the checked u32
    /// narrowing) round-trips: the i-th fast frame of a pod maps back to
    /// that pod and index.
    #[test]
    fn fast_frame_pod_split_round_trips(pod in 0u32..4, i in 0u64..512) {
        let geo = Geometry::tiny();
        if pod >= geo.pods() || i >= geo.fast_pages_per_pod() {
            return Ok(()); // outside this geometry; nothing to check
        }
        let frame = geo.fast_frame_of_pod(pod, i);
        prop_assert!(geo.contains_frame(frame));
        prop_assert_eq!(geo.pod_of_frame(frame), pod);
        prop_assert_eq!(frame, FrameId(i * geo.pods() as u64 + pod as u64));
    }
}
