//! Capacity layout of a two-level (fast + slow) flat-address-space memory.
//!
//! The paper's system (Table 2) is 1 GB of die-stacked HBM plus 8 GB of
//! off-chip DDR4, managed in 2 KB pages and clustered into 4 pods. This
//! module captures that layout and the arithmetic everything else relies on:
//!
//! * **Static mapping** — before any migration, page *p* lives in frame *p*;
//!   frames `< fast_pages` are HBM, the rest are DDR.
//! * **Pod assignment** — pages and frames are interleaved over pods by
//!   `index % pods`. Because the fast-tier frame count is a multiple of the
//!   pod count, a page and all fast frames of its pod share the same residue,
//!   so intra-pod migration never changes a page's pod (the property MemPod's
//!   clustered design depends on).

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::addr::{FrameId, LineId, PageId};
use crate::convert::{u32_from_u64, u64_from_u32, u64_from_usize};
use crate::error::GeometryError;

/// Page size in bytes. A page migration moves 32 cache lines (paper §6.2).
pub const PAGE_SIZE: usize = 2048;
/// Cache-line size in bytes.
pub const LINE_SIZE: usize = 64;
/// Cache lines per page.
pub const LINES_PER_PAGE: usize = PAGE_SIZE / LINE_SIZE;

/// Which level of the two-level memory a page or frame belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Tier {
    /// Die-stacked, high-bandwidth, low-latency memory (HBM).
    Fast,
    /// Off-chip commodity memory (DDR4).
    Slow,
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tier::Fast => write!(f, "fast"),
            Tier::Slow => write!(f, "slow"),
        }
    }
}

/// The capacity layout of a two-level memory.
///
/// # Examples
///
/// ```
/// use mempod_types::{Geometry, FrameId, PageId, Tier};
///
/// let geo = Geometry::paper_default();
/// assert_eq!(geo.fast_pages(), 524_288);           // 1 GB / 2 KB
/// assert_eq!(geo.slow_pages(), 8 * 524_288);       // 8 GB / 2 KB
/// assert_eq!(geo.slow_to_fast_ratio(), 8);
/// assert_eq!(geo.pod_of_page(PageId(6)), 2);       // 6 % 4
/// assert_eq!(geo.tier_of_frame(FrameId(524_288)), Tier::Slow);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Geometry {
    fast_bytes: u64,
    slow_bytes: u64,
    pods: u32,
}

impl Geometry {
    /// Creates a layout from tier capacities in bytes and a pod count.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError`] if either capacity is zero or not a multiple
    /// of the page size, if `pods` is zero, or if the fast-tier page count is
    /// not a multiple of `pods` (which would break pod-invariant migration).
    pub fn new(fast_bytes: u64, slow_bytes: u64, pods: u32) -> Result<Self, GeometryError> {
        if fast_bytes == 0 || slow_bytes == 0 {
            return Err(GeometryError::ZeroCapacity);
        }
        if !fast_bytes.is_multiple_of(u64_from_usize(PAGE_SIZE))
            || !slow_bytes.is_multiple_of(u64_from_usize(PAGE_SIZE))
        {
            return Err(GeometryError::UnalignedCapacity {
                page_size: u64_from_usize(PAGE_SIZE),
            });
        }
        if pods == 0 {
            return Err(GeometryError::ZeroPods);
        }
        let fast_pages = fast_bytes / u64_from_usize(PAGE_SIZE);
        let slow_pages = slow_bytes / u64_from_usize(PAGE_SIZE);
        if !fast_pages.is_multiple_of(u64_from_u32(pods))
            || !slow_pages.is_multiple_of(u64_from_u32(pods))
        {
            return Err(GeometryError::PodsDoNotDivide {
                pods,
                fast_pages,
                slow_pages,
            });
        }
        Ok(Geometry {
            fast_bytes,
            slow_bytes,
            pods,
        })
    }

    /// The paper's configuration: 1 GB HBM + 8 GB DDR4, 4 pods.
    pub fn paper_default() -> Self {
        Geometry::new(1 << 30, 8 << 30, 4).expect("paper configuration is valid")
    }

    /// A small layout (4 MB + 32 MB, 4 pods) convenient for fast tests.
    pub fn tiny() -> Self {
        Geometry::new(4 << 20, 32 << 20, 4).expect("tiny configuration is valid")
    }

    /// Fast-tier capacity in bytes.
    pub const fn fast_bytes(&self) -> u64 {
        self.fast_bytes
    }

    /// Slow-tier capacity in bytes.
    pub const fn slow_bytes(&self) -> u64 {
        self.slow_bytes
    }

    /// Total capacity in bytes.
    pub const fn total_bytes(&self) -> u64 {
        self.fast_bytes + self.slow_bytes
    }

    /// Number of pods.
    pub const fn pods(&self) -> u32 {
        self.pods
    }

    /// Number of fast-tier page frames.
    pub const fn fast_pages(&self) -> u64 {
        self.fast_bytes / u64_from_usize(PAGE_SIZE)
    }

    /// Number of slow-tier page frames.
    pub const fn slow_pages(&self) -> u64 {
        self.slow_bytes / u64_from_usize(PAGE_SIZE)
    }

    /// Total pages (= total frames) in the flat address space.
    pub const fn total_pages(&self) -> u64 {
        self.fast_pages() + self.slow_pages()
    }

    /// Total cache lines in the flat address space.
    pub const fn total_lines(&self) -> u64 {
        self.total_pages() * u64_from_usize(LINES_PER_PAGE)
    }

    /// Cache lines in the fast tier.
    pub const fn fast_lines(&self) -> u64 {
        self.fast_pages() * u64_from_usize(LINES_PER_PAGE)
    }

    /// Pages handled by each pod.
    pub const fn pages_per_pod(&self) -> u64 {
        self.total_pages() / u64_from_u32(self.pods)
    }

    /// Fast frames owned by each pod.
    pub const fn fast_pages_per_pod(&self) -> u64 {
        self.fast_pages() / u64_from_u32(self.pods)
    }

    /// Slow pages per fast page (the paper's 1:8 configuration ratio).
    pub const fn slow_to_fast_ratio(&self) -> u64 {
        self.slow_pages() / self.fast_pages()
    }

    /// Whether `page` is a valid page of this layout.
    pub const fn contains_page(&self, page: PageId) -> bool {
        page.0 < self.total_pages()
    }

    /// Whether `frame` is a valid frame of this layout.
    pub const fn contains_frame(&self, frame: FrameId) -> bool {
        frame.0 < self.total_pages()
    }

    /// The tier a *frame* physically belongs to.
    pub const fn tier_of_frame(&self, frame: FrameId) -> Tier {
        if frame.0 < self.fast_pages() {
            Tier::Fast
        } else {
            Tier::Slow
        }
    }

    /// The tier a page occupies under the *static* (no-migration) mapping.
    pub const fn tier_of_page(&self, page: PageId) -> Tier {
        self.tier_of_frame(FrameId(page.0))
    }

    /// The tier a line occupies under the static mapping.
    pub const fn tier_of_line(&self, line: LineId) -> Tier {
        if line.0 < self.fast_lines() {
            Tier::Fast
        } else {
            Tier::Slow
        }
    }

    /// The pod that owns `page`.
    pub const fn pod_of_page(&self, page: PageId) -> u32 {
        u32_from_u64(page.0 % u64_from_u32(self.pods))
    }

    /// The pod that owns `frame`.
    pub const fn pod_of_frame(&self, frame: FrameId) -> u32 {
        u32_from_u64(frame.0 % u64_from_u32(self.pods))
    }

    /// The frame page `page` occupies before any migration (identity map).
    pub const fn static_frame_of(&self, page: PageId) -> FrameId {
        FrameId(page.0)
    }

    /// Pod-local index of a page: its position among its pod's pages.
    pub const fn pod_local_page_index(&self, page: PageId) -> u64 {
        page.0 / u64_from_u32(self.pods)
    }

    /// The `i`-th fast frame of pod `pod` (i in `0..fast_pages_per_pod()`).
    ///
    /// # Panics
    ///
    /// Panics if `pod` or `i` is out of range.
    pub fn fast_frame_of_pod(&self, pod: u32, i: u64) -> FrameId {
        assert!(pod < self.pods, "pod {pod} out of range");
        assert!(
            i < self.fast_pages_per_pod(),
            "fast frame index {i} out of range"
        );
        FrameId(i * u64_from_u32(self.pods) + u64_from_u32(pod))
    }

    /// Returns a layout with both tiers scaled down by `factor` (capacities
    /// divided), keeping the pod count — useful for running the paper's
    /// experiments at laptop scale.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError`] if the scaled layout is invalid.
    pub fn scaled_down(&self, factor: u64) -> Result<Self, GeometryError> {
        Geometry::new(
            self.fast_bytes / factor,
            self.slow_bytes / factor,
            self.pods,
        )
    }
}

impl Default for Geometry {
    fn default() -> Self {
        Geometry::paper_default()
    }
}

impl fmt::Display for Geometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}MB fast + {}MB slow, {} pods",
            self.fast_bytes >> 20,
            self.slow_bytes >> 20,
            self.pods
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_paper_numbers() {
        let g = Geometry::paper_default();
        assert_eq!(g.fast_pages(), 524_288);
        assert_eq!(g.slow_pages(), 4_194_304);
        assert_eq!(g.total_pages(), 4_718_592); // "4.5M counters"
        assert_eq!(g.pages_per_pod(), 1_179_648); // "1.1M pages per Pod"
        assert_eq!(g.slow_to_fast_ratio(), 8);
        // 21 bits address 1.1M pages per pod.
        assert!(g.pages_per_pod() < (1 << 21));
    }

    #[test]
    fn validation_rejects_bad_layouts() {
        assert!(matches!(
            Geometry::new(0, 8 << 30, 4),
            Err(GeometryError::ZeroCapacity)
        ));
        assert!(matches!(
            Geometry::new(1 << 30, 100, 4),
            Err(GeometryError::UnalignedCapacity { .. })
        ));
        assert!(matches!(
            Geometry::new(1 << 30, 8 << 30, 0),
            Err(GeometryError::ZeroPods)
        ));
        // 3 pods do not divide 524288 fast pages.
        assert!(matches!(
            Geometry::new(1 << 30, 8 << 30, 3),
            Err(GeometryError::PodsDoNotDivide { .. })
        ));
    }

    #[test]
    fn tiers_split_at_fast_boundary() {
        let g = Geometry::tiny();
        let boundary = g.fast_pages();
        assert_eq!(g.tier_of_frame(FrameId(boundary - 1)), Tier::Fast);
        assert_eq!(g.tier_of_frame(FrameId(boundary)), Tier::Slow);
        assert_eq!(g.tier_of_page(PageId(boundary - 1)), Tier::Fast);
        assert_eq!(g.tier_of_page(PageId(boundary)), Tier::Slow);
        assert_eq!(g.tier_of_line(LineId(g.fast_lines() - 1)), Tier::Fast);
        assert_eq!(g.tier_of_line(LineId(g.fast_lines())), Tier::Slow);
    }

    #[test]
    fn pod_assignment_is_residue_based_and_migration_safe() {
        let g = Geometry::tiny();
        for p in 0..64u64 {
            assert_eq!(g.pod_of_page(PageId(p)), (p % 4) as u32);
        }
        // Every fast frame of pod i has residue i, so intra-pod migration
        // keeps the pod invariant.
        for pod in 0..g.pods() {
            for i in 0..g.fast_pages_per_pod() {
                let f = g.fast_frame_of_pod(pod, i);
                assert_eq!(g.pod_of_frame(f), pod);
                assert_eq!(g.tier_of_frame(f), Tier::Fast);
            }
        }
    }

    #[test]
    fn fast_frames_of_pod_enumerate_all_fast_frames() {
        let g = Geometry::tiny();
        let mut seen = std::collections::HashSet::new();
        for pod in 0..g.pods() {
            for i in 0..g.fast_pages_per_pod() {
                seen.insert(g.fast_frame_of_pod(pod, i));
            }
        }
        assert_eq!(seen.len() as u64, g.fast_pages());
        assert!(seen.iter().all(|f| f.0 < g.fast_pages()));
    }

    #[test]
    fn scaled_down_keeps_shape() {
        let g = Geometry::paper_default().scaled_down(64).unwrap();
        assert_eq!(g.slow_to_fast_ratio(), 8);
        assert_eq!(g.pods(), 4);
        assert_eq!(g.total_bytes(), (9 << 30) / 64);
    }

    #[test]
    fn display_is_informative() {
        let s = Geometry::paper_default().to_string();
        assert!(s.contains("1024MB fast"));
        assert!(s.contains("4 pods"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fast_frame_of_pod_bounds_checked() {
        let g = Geometry::tiny();
        let _ = g.fast_frame_of_pod(0, g.fast_pages_per_pod());
    }
}
