//! Fault-injection configuration and taxonomy.
//!
//! Faults are *planned*, not random: every injected fault is a pure
//! function of the configured seed and the simulated coordinates of the
//! event it perturbs (frames for migrations, channel index and time window
//! for DRAM faults). Wall-clock time never enters the derivation, so a run
//! with a given `FaultConfig` is bit-identical across replays and across
//! shard counts — the property the differential tests in `tests/sharding.rs`
//! pin down.
//!
//! The taxonomy has three levels:
//!
//! * **migration faults** — a swap aborts mid-flight (transiently, retried
//!   with exponential backoff in simulated time, or permanently, rolled
//!   back so the address map is exactly as before);
//! * **channel faults** — timing perturbations inside a DRAM channel
//!   ([`ChannelFaultKind`]): latency spikes, stuck banks, refresh storms;
//! * **runner faults** — a shard worker panic, contained at the epoch
//!   barrier and recovered by degrading to the sequential path.

use serde::{Deserialize, Serialize};

use crate::time::Picos;

/// One part per million: rates are integer ppm so fault decisions never
/// involve floating point (floats would jeopardize bit-identical replay).
pub const PPM: u64 = 1_000_000;

/// Deterministic fault-injection plan parameters.
///
/// All rates are expressed in parts per million ([`PPM`]); a rate of 0
/// disables that fault class. The default config injects nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Seed every fault decision is derived from.
    pub seed: u64,
    /// Probability (ppm) that a migration suffers at least one mid-swap
    /// abort.
    pub migration_abort_ppm: u32,
    /// Retries granted to an aborted migration before it is rolled back
    /// permanently (0 = every fault is permanent).
    pub migration_max_retries: u32,
    /// Base retry backoff in simulated time; attempt `k` waits
    /// `backoff * 2^(k-1)`.
    pub migration_backoff: Picos,
    /// Cap on the exponential backoff.
    pub migration_backoff_cap: Picos,
    /// Probability (ppm) that a channel fault fires in any one
    /// `channel_window` of simulated time on any one channel.
    pub channel_fault_ppm: u32,
    /// Width of the channel-fault decision window.
    pub channel_window: Picos,
    /// Force a worker panic on one shard at one barrier batch (for
    /// degradation testing).
    pub worker_panic: Option<WorkerPanic>,
}

impl FaultConfig {
    /// A plan that injects nothing (but still threads the seed through).
    pub fn quiet(seed: u64) -> Self {
        FaultConfig {
            seed,
            migration_abort_ppm: 0,
            migration_max_retries: 0,
            migration_backoff: Picos::from_ns(500),
            migration_backoff_cap: Picos::from_us(8),
            channel_fault_ppm: 0,
            channel_window: Picos::from_us(1),
            worker_panic: None,
        }
    }

    /// Whether any fault class can actually fire.
    pub fn is_active(&self) -> bool {
        self.migration_abort_ppm > 0 || self.channel_fault_ppm > 0 || self.worker_panic.is_some()
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::quiet(0)
    }
}

/// A forced shard-worker panic: shard `shard % shard_count` panics when it
/// runs its `batch`-th barrier batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerPanic {
    /// Target shard (taken modulo the effective shard count).
    pub shard: u32,
    /// Barrier batch index at which the panic fires (0 = first batch).
    pub batch: u64,
}

/// The planned outcome for one faulted migration, decided at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigrationFaultSpec {
    /// Number of attempts that abort mid-swap (at least 1).
    pub failed_attempts: u32,
    /// Whether the migration exhausts its retries and is rolled back.
    pub permanent: bool,
}

/// Why a migration attempt aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultCause {
    /// A transient failure of the migration datapath.
    Transient,
    /// A conflicting write arrived for a page mid-swap and invalidated the
    /// copied data.
    ConflictingWrite,
}

/// A timing perturbation injected into one DRAM channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChannelFaultKind {
    /// The data bus blacks out for the given extra duration.
    LatencySpike(Picos),
    /// One bank (raw index, interpreted modulo the channel's bank count)
    /// loses its open row and stays busy until the window ends.
    StuckBank(u32),
    /// The channel performs `k` back-to-back extra refreshes.
    RefreshStorm(u32),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_config_is_inactive() {
        let cfg = FaultConfig::quiet(7);
        assert!(!cfg.is_active());
        assert_eq!(cfg.seed, 7);
        assert_eq!(FaultConfig::default(), FaultConfig::quiet(0));
    }

    #[test]
    fn any_nonzero_rate_activates() {
        let mut cfg = FaultConfig::quiet(1);
        cfg.migration_abort_ppm = 1;
        assert!(cfg.is_active());
        let mut cfg = FaultConfig::quiet(1);
        cfg.channel_fault_ppm = 1;
        assert!(cfg.is_active());
        let mut cfg = FaultConfig::quiet(1);
        cfg.worker_panic = Some(WorkerPanic { shard: 0, batch: 3 });
        assert!(cfg.is_active());
    }

    #[test]
    fn fault_types_round_trip_through_serde() {
        let cfg = FaultConfig {
            seed: 42,
            migration_abort_ppm: 5_000,
            migration_max_retries: 3,
            migration_backoff: Picos::from_ns(200),
            migration_backoff_cap: Picos::from_us(4),
            channel_fault_ppm: 100,
            channel_window: Picos::from_us(2),
            worker_panic: Some(WorkerPanic { shard: 1, batch: 9 }),
        };
        let json = serde_json::to_string(cfg).expect("serialize");
        let back: FaultConfig = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(cfg, back);
        let spec = MigrationFaultSpec {
            failed_attempts: 2,
            permanent: false,
        };
        let json = serde_json::to_string(spec).expect("serialize");
        let back: MigrationFaultSpec = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(spec, back);
        for kind in [
            ChannelFaultKind::LatencySpike(Picos::from_ns(800)),
            ChannelFaultKind::StuckBank(5),
            ChannelFaultKind::RefreshStorm(3),
        ] {
            let json = serde_json::to_string(kind).expect("serialize");
            let back: ChannelFaultKind = serde_json::from_str(&json).expect("deserialize");
            assert_eq!(kind, back);
        }
    }
}
