//! Top-level system configuration (the paper's Table 2 in serializable form).

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::geometry::Geometry;
use crate::time::{Clock, Picos};

/// Which activity-tracking structure a manager uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrackerKind {
    /// Majority Element Algorithm map (the paper's contribution, §3).
    Mea,
    /// One saturating counter per page (HMA-style "Full Counters").
    FullCounters,
    /// One competing counter per segment (THM-style).
    Competing,
}

impl fmt::Display for TrackerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrackerKind::Mea => write!(f, "MEA"),
            TrackerKind::FullCounters => write!(f, "FullCounters"),
            TrackerKind::Competing => write!(f, "Competing"),
        }
    }
}

/// The complete simulated-system configuration.
///
/// Defaults reproduce the paper's Table 2: an 8-core 3.2 GHz CPU in front of
/// 1 GB HBM + 8 GB DDR4-1600, MemPod intervals of 50 µs with 64 two-bit MEA
/// counters per pod.
///
/// # Examples
///
/// ```
/// use mempod_types::SystemConfig;
///
/// let cfg = SystemConfig::paper_default();
/// assert_eq!(cfg.cores, 8);
/// assert_eq!(cfg.epoch.as_us_f64(), 50.0);
/// assert_eq!(cfg.mea_entries, 64);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Memory capacity layout.
    pub geometry: Geometry,
    /// Number of CPU cores generating traffic.
    pub cores: u8,
    /// CPU core frequency in MHz (used to scale software penalties).
    pub cpu_mhz: u64,
    /// Migration interval (epoch) length.
    pub epoch: Picos,
    /// MEA entries per pod (also the per-pod migration budget per epoch).
    pub mea_entries: usize,
    /// Width of each MEA counter in bits (counters saturate).
    pub mea_counter_bits: u32,
    /// Total metadata (remap-table / counter) cache capacity in bytes, or
    /// `None` to model free on-chip metadata as in the paper's Fig. 8.
    pub metadata_cache_bytes: Option<u64>,
}

impl SystemConfig {
    /// The paper's Table 2 configuration with the §6.3.1 best parameters.
    pub fn paper_default() -> Self {
        SystemConfig {
            geometry: Geometry::paper_default(),
            cores: 8,
            cpu_mhz: 3200,
            epoch: Picos::from_us(50),
            mea_entries: 64,
            mea_counter_bits: 2,
            metadata_cache_bytes: None,
        }
    }

    /// A scaled-down configuration for fast tests and smoke runs.
    pub fn tiny() -> Self {
        SystemConfig {
            geometry: Geometry::tiny(),
            cores: 8,
            cpu_mhz: 3200,
            epoch: Picos::from_us(50),
            mea_entries: 64,
            mea_counter_bits: 2,
            metadata_cache_bytes: None,
        }
    }

    /// The CPU clock domain.
    pub fn cpu_clock(&self) -> Clock {
        Clock::from_mhz(self.cpu_mhz)
    }

    /// Maximum value an MEA counter can hold.
    pub fn mea_counter_max(&self) -> u64 {
        if self.mea_counter_bits >= 64 {
            u64::MAX
        } else {
            (1u64 << self.mea_counter_bits) - 1
        }
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table2() {
        let c = SystemConfig::paper_default();
        assert_eq!(c.cpu_mhz, 3200);
        assert_eq!(c.geometry.fast_bytes(), 1 << 30);
        assert_eq!(c.geometry.slow_bytes(), 8 << 30);
        assert_eq!(c.mea_counter_bits, 2);
        assert_eq!(c.mea_counter_max(), 3);
        assert!(c.metadata_cache_bytes.is_none());
    }

    #[test]
    fn counter_max_saturates_at_width() {
        let mut c = SystemConfig::paper_default();
        c.mea_counter_bits = 8;
        assert_eq!(c.mea_counter_max(), 255);
        c.mea_counter_bits = 64;
        assert_eq!(c.mea_counter_max(), u64::MAX);
        c.mea_counter_bits = 1;
        assert_eq!(c.mea_counter_max(), 1);
    }

    #[test]
    fn config_is_serializable() {
        // serde_json lives in downstream crates; here we only assert the
        // bounds hold so experiment configs can be persisted.
        fn assert_serializable<T: serde::Serialize + serde::de::DeserializeOwned>() {}
        assert_serializable::<SystemConfig>();
        assert_serializable::<TrackerKind>();
    }

    #[test]
    fn tracker_kind_display() {
        assert_eq!(TrackerKind::Mea.to_string(), "MEA");
        assert_eq!(TrackerKind::FullCounters.to_string(), "FullCounters");
        assert_eq!(TrackerKind::Competing.to_string(), "Competing");
    }
}
