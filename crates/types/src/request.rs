//! Memory requests as they leave the last-level cache.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::addr::Addr;
use crate::time::Picos;

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// A demand read (LLC miss fill).
    Read,
    /// A writeback from the LLC.
    Write,
}

impl AccessKind {
    /// `true` for writes.
    pub const fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => write!(f, "R"),
            AccessKind::Write => write!(f, "W"),
        }
    }
}

/// Identifies which of the simulated CPU cores issued a request.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct CoreId(pub u8);

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// Monotonic identifier assigned by the simulator to each request.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct RequestId(pub u64);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

/// A single main-memory request (one 64 B cache-line transfer).
///
/// # Examples
///
/// ```
/// use mempod_types::{AccessKind, Addr, CoreId, MemRequest, Picos};
///
/// let r = MemRequest::new(Addr(0x1000), AccessKind::Read, Picos::from_ns(10), CoreId(3));
/// assert_eq!(r.addr.page().0, 2); // 0x1000 / 2048
/// assert!(!r.kind.is_write());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemRequest {
    /// Original (pre-remap) byte address.
    pub addr: Addr,
    /// Read or write.
    pub kind: AccessKind,
    /// Arrival time at the memory subsystem.
    pub arrival: Picos,
    /// Issuing core.
    pub core: CoreId,
}

impl MemRequest {
    /// Creates a request.
    pub const fn new(addr: Addr, kind: AccessKind, arrival: Picos, core: CoreId) -> Self {
        MemRequest {
            addr,
            kind,
            arrival,
            core,
        }
    }
}

impl fmt::Display for MemRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{} @{} by {}",
            self.kind, self.addr, self.arrival, self.core
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_kind_predicates() {
        assert!(AccessKind::Write.is_write());
        assert!(!AccessKind::Read.is_write());
        assert_eq!(AccessKind::Read.to_string(), "R");
        assert_eq!(AccessKind::Write.to_string(), "W");
    }

    #[test]
    fn request_display_mentions_all_fields() {
        let r = MemRequest::new(Addr(0x40), AccessKind::Write, Picos(500), CoreId(7));
        let s = r.to_string();
        assert!(s.contains('W'));
        assert!(s.contains("0x40"));
        assert!(s.contains("core7"));
    }

    #[test]
    fn ids_are_ordered() {
        assert!(RequestId(1) < RequestId(2));
        assert!(CoreId(0) < CoreId(1));
    }
}
