//! Address-space newtypes.
//!
//! A migration simulator juggles three distinct address notions that are all
//! "just integers" underneath, and confusing them is the classic bug class:
//!
//! * [`Addr`] — a byte address in the *original* (OS-visible) flat address
//!   space, as issued by the last-level cache.
//! * [`PageId`] / [`LineId`] — the page (2 KB) and cache-line (64 B) a byte
//!   address falls in, still in original address space.
//! * [`FrameId`] — a *physical* page-sized slot in the memory devices. After
//!   a migration, `PageId` 7 may live in `FrameId` 4000000. Remap tables map
//!   pages to frames; the DRAM model only ever sees frames.
//!
//! Keeping these as separate newtypes means a remap table that accidentally
//! returns a page where a frame is required simply does not compile.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::convert::u64_from_usize;
use crate::geometry::{LINE_SIZE, PAGE_SIZE};

/// A byte address in the original flat address space.
///
/// # Examples
///
/// ```
/// use mempod_types::{Addr, LineId, PageId};
///
/// let a = Addr(2 * 2048 + 130);
/// assert_eq!(a.page(), PageId(2));
/// assert_eq!(a.line(), LineId(2 * 32 + 2));
/// assert_eq!(a.page_offset(), 130);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Addr(pub u64);

impl Addr {
    /// The page this byte address falls in.
    pub const fn page(self) -> PageId {
        PageId(self.0 / u64_from_usize(PAGE_SIZE))
    }

    /// The 64-byte cache line this byte address falls in.
    pub const fn line(self) -> LineId {
        LineId(self.0 / u64_from_usize(LINE_SIZE))
    }

    /// Byte offset within the containing page.
    pub const fn page_offset(self) -> u64 {
        self.0 % u64_from_usize(PAGE_SIZE)
    }

    /// Byte offset within the containing cache line.
    pub const fn line_offset(self) -> u64 {
        self.0 % u64_from_usize(LINE_SIZE)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Self {
        Addr(v)
    }
}

/// A 2 KB page identifier in the original address space.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct PageId(pub u64);

impl PageId {
    /// The byte address of the first byte of this page.
    pub const fn base_addr(self) -> Addr {
        Addr(self.0 * u64_from_usize(PAGE_SIZE))
    }

    /// The first cache line of this page.
    pub const fn first_line(self) -> LineId {
        LineId(self.0 * u64_from_usize(PAGE_SIZE / LINE_SIZE))
    }

    /// Raw index.
    pub const fn index(self) -> u64 {
        self.0
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A 64 B cache-line identifier in the original address space.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct LineId(pub u64);

impl LineId {
    /// The page containing this line.
    pub const fn page(self) -> PageId {
        PageId(self.0 / u64_from_usize(PAGE_SIZE / LINE_SIZE))
    }

    /// The byte address of the first byte of this line.
    pub const fn base_addr(self) -> Addr {
        Addr(self.0 * u64_from_usize(LINE_SIZE))
    }

    /// Line index within its containing page (0..32 for 2 KB pages).
    pub const fn index_in_page(self) -> u64 {
        self.0 % u64_from_usize(PAGE_SIZE / LINE_SIZE)
    }

    /// Raw index.
    pub const fn index(self) -> u64 {
        self.0
    }
}

impl fmt::Display for LineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// A physical page-sized frame in the memory devices.
///
/// Frames are numbered over the whole two-level memory: indices below the
/// fast-tier frame count are HBM frames, the rest are off-chip DDR frames
/// (see [`Geometry`](crate::geometry::Geometry) for the split and for
/// pod-local numbering).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct FrameId(pub u64);

impl FrameId {
    /// Raw index.
    pub const fn index(self) -> u64 {
        self.0
    }
}

impl fmt::Display for FrameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_decomposition() {
        let a = Addr(5 * 2048 + 777);
        assert_eq!(a.page(), PageId(5));
        assert_eq!(a.page_offset(), 777);
        assert_eq!(a.line_offset(), 777 % 64);
        assert_eq!(a.line().page(), PageId(5));
    }

    #[test]
    fn page_line_roundtrip() {
        for p in [0u64, 1, 17, 1 << 20] {
            let page = PageId(p);
            assert_eq!(page.base_addr().page(), page);
            assert_eq!(page.first_line().page(), page);
            assert_eq!(page.first_line().index_in_page(), 0);
        }
    }

    #[test]
    fn line_arithmetic() {
        let l = LineId(33);
        assert_eq!(l.page(), PageId(1));
        assert_eq!(l.index_in_page(), 1);
        assert_eq!(l.base_addr(), Addr(33 * 64));
        assert_eq!(l.base_addr().line(), l);
    }

    #[test]
    fn display_forms() {
        assert_eq!(PageId(3).to_string(), "P3");
        assert_eq!(LineId(4).to_string(), "L4");
        assert_eq!(FrameId(5).to_string(), "F5");
        assert_eq!(Addr(255).to_string(), "0xff");
        assert_eq!(format!("{:x}", Addr(255)), "ff");
    }

    #[test]
    fn from_u64() {
        let a: Addr = 42u64.into();
        assert_eq!(a, Addr(42));
    }
}
