//! Error types.

use std::error::Error;
use std::fmt;

/// Errors from constructing a [`Geometry`](crate::geometry::Geometry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeometryError {
    /// A tier capacity was zero.
    ZeroCapacity,
    /// A tier capacity was not a multiple of the page size.
    UnalignedCapacity {
        /// The required alignment.
        page_size: u64,
    },
    /// The pod count was zero.
    ZeroPods,
    /// The pod count does not divide both tiers' page counts.
    PodsDoNotDivide {
        /// Requested pod count.
        pods: u32,
        /// Fast-tier page count.
        fast_pages: u64,
        /// Slow-tier page count.
        slow_pages: u64,
    },
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::ZeroCapacity => write!(f, "tier capacity must be nonzero"),
            GeometryError::UnalignedCapacity { page_size } => {
                write!(f, "tier capacity must be a multiple of {page_size} bytes")
            }
            GeometryError::ZeroPods => write!(f, "pod count must be nonzero"),
            GeometryError::PodsDoNotDivide {
                pods,
                fast_pages,
                slow_pages,
            } => write!(
                f,
                "{pods} pods do not evenly divide {fast_pages} fast and {slow_pages} slow pages"
            ),
        }
    }
}

impl Error for GeometryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let e = GeometryError::PodsDoNotDivide {
            pods: 3,
            fast_pages: 10,
            slow_pages: 80,
        };
        let s = e.to_string();
        assert!(s.contains('3'));
        assert!(s.contains("10"));
        assert!(!s.starts_with(char::is_uppercase));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn implements_error_and_is_send_sync() {
        fn takes_err<E: Error + Send + Sync + 'static>(_: E) {}
        takes_err(GeometryError::ZeroCapacity);
    }
}
