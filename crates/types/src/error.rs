//! Error types.

use std::error::Error;
use std::fmt;

/// Errors from constructing a [`Geometry`](crate::geometry::Geometry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeometryError {
    /// A tier capacity was zero.
    ZeroCapacity,
    /// A tier capacity was not a multiple of the page size.
    UnalignedCapacity {
        /// The required alignment.
        page_size: u64,
    },
    /// The pod count was zero.
    ZeroPods,
    /// The pod count does not divide both tiers' page counts.
    PodsDoNotDivide {
        /// Requested pod count.
        pods: u32,
        /// Fast-tier page count.
        fast_pages: u64,
        /// Slow-tier page count.
        slow_pages: u64,
    },
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::ZeroCapacity => write!(f, "tier capacity must be nonzero"),
            GeometryError::UnalignedCapacity { page_size } => {
                write!(f, "tier capacity must be a multiple of {page_size} bytes")
            }
            GeometryError::ZeroPods => write!(f, "pod count must be nonzero"),
            GeometryError::PodsDoNotDivide {
                pods,
                fast_pages,
                slow_pages,
            } => write!(
                f,
                "{pods} pods do not evenly divide {fast_pages} fast and {slow_pages} slow pages"
            ),
        }
    }
}

impl Error for GeometryError {}

/// Runtime failures inside the simulation engine, each carrying enough
/// context (which shard, which pod, which migration, which resource) to
/// locate the failure without a debugger. These are *recoverable* errors:
/// the engine's policy is to degrade (sequential fallback, rollback,
/// lock-state reconstruction) rather than abort the process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A shard worker thread panicked mid-batch.
    ShardWorkerPanicked {
        /// Index of the shard whose worker died.
        shard: u32,
    },
    /// A migration exhausted its retries and was rolled back.
    MigrationAborted {
        /// Pod performing the swap, if the manager is pod-clustered.
        pod: Option<u32>,
        /// One frame of the abandoned swap.
        frame_a: u64,
        /// The other frame.
        frame_b: u64,
    },
    /// A channel fault left a DRAM channel in a degraded state.
    ChannelDegraded {
        /// Global channel index.
        channel: u32,
    },
    /// A mutex was poisoned by a panicking holder; the state was
    /// reconstructed from the poisoned guard.
    LockPoisoned {
        /// Which shared resource the lock guarded.
        resource: &'static str,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::ShardWorkerPanicked { shard } => {
                write!(f, "shard {shard} worker panicked mid-batch")
            }
            EngineError::MigrationAborted {
                pod,
                frame_a,
                frame_b,
            } => match pod {
                Some(p) => write!(
                    f,
                    "migration {frame_a}<->{frame_b} in pod {p} aborted permanently"
                ),
                None => write!(f, "migration {frame_a}<->{frame_b} aborted permanently"),
            },
            EngineError::ChannelDegraded { channel } => {
                write!(f, "channel {channel} degraded by an injected fault")
            }
            EngineError::LockPoisoned { resource } => {
                write!(f, "lock for {resource} was poisoned and recovered")
            }
        }
    }
}

impl Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let e = GeometryError::PodsDoNotDivide {
            pods: 3,
            fast_pages: 10,
            slow_pages: 80,
        };
        let s = e.to_string();
        assert!(s.contains('3'));
        assert!(s.contains("10"));
        assert!(!s.starts_with(char::is_uppercase));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn engine_errors_carry_their_context() {
        let cases: Vec<(EngineError, &[&str])> = vec![
            (
                EngineError::ShardWorkerPanicked { shard: 3 },
                &["shard 3", "panicked"],
            ),
            (
                EngineError::MigrationAborted {
                    pod: Some(2),
                    frame_a: 17,
                    frame_b: 40,
                },
                &["17", "40", "pod 2"],
            ),
            (
                EngineError::MigrationAborted {
                    pod: None,
                    frame_a: 5,
                    frame_b: 9,
                },
                &["5", "9"],
            ),
            (
                EngineError::ChannelDegraded { channel: 11 },
                &["channel 11"],
            ),
            (
                EngineError::LockPoisoned {
                    resource: "result slots",
                },
                &["result slots", "poisoned"],
            ),
        ];
        for (e, needles) in cases {
            let s = e.to_string();
            for needle in needles {
                assert!(s.contains(needle), "{s:?} missing {needle:?}");
            }
            assert!(!s.starts_with(char::is_uppercase));
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn implements_error_and_is_send_sync() {
        fn takes_err<E: Error + Send + Sync + 'static>(_: E) {}
        takes_err(GeometryError::ZeroCapacity);
        takes_err(EngineError::ShardWorkerPanicked { shard: 0 });
    }
}
