//! Simulated time in picoseconds and clock-domain arithmetic.
//!
//! The suite mixes several clock domains: a 3.2 GHz CPU (312.5 ps period), a
//! 1 GHz HBM bus (1000 ps), an 800 MHz DDR4-1600 bus (1250 ps), a 1.2 GHz
//! DDR4-2400 bus (833⅓ ps — note: *not* integral!) and a hypothetical 4 GHz
//! HBM (250 ps). Expressing all events in integer picoseconds keeps the event
//! queue totally ordered without floating-point comparison hazards; each
//! [`Clock`] converts between its own cycle counts and global picoseconds.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or span of) simulated time, in integer picoseconds.
///
/// `Picos` is used both as an absolute timestamp and as a duration; the
/// arithmetic impls (`Add`, `Sub`, scalar `Mul`/`Div`) cover both usages.
///
/// # Examples
///
/// ```
/// use mempod_types::Picos;
///
/// let t = Picos::from_ns(50) + Picos::from_us(1);
/// assert_eq!(t.as_ps(), 1_050_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Picos(pub u64);

impl Picos {
    /// The zero timestamp (simulation start).
    pub const ZERO: Picos = Picos(0);
    /// The largest representable timestamp, used as "never".
    pub const MAX: Picos = Picos(u64::MAX);

    /// Creates a timestamp from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        Picos(ns * 1_000)
    }

    /// Creates a timestamp from microseconds.
    pub const fn from_us(us: u64) -> Self {
        Picos(us * 1_000_000)
    }

    /// Creates a timestamp from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        Picos(ms * 1_000_000_000)
    }

    /// Raw picosecond count.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// This timestamp expressed in (fractional) nanoseconds.
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This timestamp expressed in (fractional) microseconds.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating subtraction: returns [`Picos::ZERO`] instead of wrapping.
    pub fn saturating_sub(self, rhs: Picos) -> Picos {
        Picos(self.0.saturating_sub(rhs.0))
    }

    /// The later of two timestamps.
    pub fn max(self, rhs: Picos) -> Picos {
        if self.0 >= rhs.0 {
            self
        } else {
            rhs
        }
    }

    /// The earlier of two timestamps.
    pub fn min(self, rhs: Picos) -> Picos {
        if self.0 <= rhs.0 {
            self
        } else {
            rhs
        }
    }
}

impl fmt::Display for Picos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e9)
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ns", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ps", self.0)
        }
    }
}

impl Add for Picos {
    type Output = Picos;
    fn add(self, rhs: Picos) -> Picos {
        Picos(self.0 + rhs.0)
    }
}

impl AddAssign for Picos {
    fn add_assign(&mut self, rhs: Picos) {
        self.0 += rhs.0;
    }
}

impl Sub for Picos {
    type Output = Picos;
    fn sub(self, rhs: Picos) -> Picos {
        Picos(self.0 - rhs.0)
    }
}

impl SubAssign for Picos {
    fn sub_assign(&mut self, rhs: Picos) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Picos {
    type Output = Picos;
    fn mul(self, rhs: u64) -> Picos {
        Picos(self.0 * rhs)
    }
}

impl Div<u64> for Picos {
    type Output = Picos;
    fn div(self, rhs: u64) -> Picos {
        Picos(self.0 / rhs)
    }
}

impl Sum for Picos {
    fn sum<I: Iterator<Item = Picos>>(iter: I) -> Picos {
        iter.fold(Picos::ZERO, Add::add)
    }
}

/// A clock domain: converts between cycle counts and global picoseconds.
///
/// Frequencies that do not divide 10¹² evenly (e.g. DDR4-2400's 1.2 GHz) are
/// handled by keeping the frequency in kHz and computing cycle boundaries
/// with 128-bit intermediate precision, so long simulations do not drift.
///
/// # Examples
///
/// ```
/// use mempod_types::{Clock, Picos};
///
/// let hbm = Clock::from_mhz(1000);
/// assert_eq!(hbm.cycles_to_ps(7), Picos(7_000));
/// let ddr = Clock::from_mhz(800);
/// assert_eq!(ddr.cycles_to_ps(11), Picos(13_750));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Clock {
    freq_khz: u64,
}

impl Clock {
    /// Creates a clock from a frequency in MHz.
    ///
    /// # Panics
    ///
    /// Panics if `mhz` is zero.
    pub const fn from_mhz(mhz: u64) -> Self {
        assert!(mhz > 0, "clock frequency must be nonzero");
        Clock {
            freq_khz: mhz * 1_000,
        }
    }

    /// Creates a clock from a frequency in kHz.
    ///
    /// # Panics
    ///
    /// Panics if `khz` is zero.
    pub const fn from_khz(khz: u64) -> Self {
        assert!(khz > 0, "clock frequency must be nonzero");
        Clock { freq_khz: khz }
    }

    /// The clock frequency in kHz.
    pub const fn freq_khz(self) -> u64 {
        self.freq_khz
    }

    /// The duration of `cycles` clock cycles.
    ///
    /// Rounds up to the next picosecond so that a timing *constraint* of N
    /// cycles is never shortened by integer truncation.
    pub fn cycles_to_ps(self, cycles: u64) -> Picos {
        // cycles * 1e12 / (khz * 1e3) = cycles * 1e9 / khz
        let num = (cycles as u128) * 1_000_000_000u128;
        let den = self.freq_khz as u128;
        Picos(num.div_ceil(den) as u64)
    }

    /// How many *complete* cycles fit in `span`.
    pub fn ps_to_cycles(self, span: Picos) -> u64 {
        let num = (span.0 as u128) * (self.freq_khz as u128);
        (num / 1_000_000_000u128) as u64
    }

    /// One clock period, rounded up to a whole picosecond.
    pub fn period(self) -> Picos {
        self.cycles_to_ps(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        assert_eq!(Picos::from_ns(1).as_ps(), 1_000);
        assert_eq!(Picos::from_us(1).as_ps(), 1_000_000);
        assert_eq!(Picos::from_ms(1).as_ps(), 1_000_000_000);
        assert_eq!(Picos::from_us(50).as_us_f64(), 50.0);
        assert_eq!(Picos::from_ns(3).as_ns_f64(), 3.0);
    }

    #[test]
    fn arithmetic() {
        let a = Picos(100);
        let b = Picos(40);
        assert_eq!(a + b, Picos(140));
        assert_eq!(a - b, Picos(60));
        assert_eq!(a * 3, Picos(300));
        assert_eq!(a / 4, Picos(25));
        assert_eq!(b.saturating_sub(a), Picos::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
        let mut c = a;
        c += b;
        assert_eq!(c, Picos(140));
        c -= b;
        assert_eq!(c, a);
        let total: Picos = [a, b, Picos(1)].into_iter().sum();
        assert_eq!(total, Picos(141));
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(Picos(500).to_string(), "500ps");
        assert_eq!(Picos(1_500).to_string(), "1.500ns");
        assert_eq!(Picos(2_500_000).to_string(), "2.500us");
        assert_eq!(Picos(3_000_000_000).to_string(), "3.000ms");
    }

    #[test]
    fn clock_integral_frequencies() {
        let hbm = Clock::from_mhz(1000);
        assert_eq!(hbm.period(), Picos(1_000));
        assert_eq!(hbm.cycles_to_ps(17), Picos(17_000));
        assert_eq!(hbm.ps_to_cycles(Picos(17_999)), 17);

        let ddr = Clock::from_mhz(800);
        assert_eq!(ddr.period(), Picos(1_250));
        assert_eq!(ddr.cycles_to_ps(28), Picos(35_000));
    }

    #[test]
    fn clock_non_integral_frequency_rounds_up() {
        // DDR4-2400: 1.2 GHz -> 833.33.. ps period.
        let c = Clock::from_mhz(1200);
        assert_eq!(c.period(), Picos(834));
        // 3 cycles = 2500 ps exactly.
        assert_eq!(c.cycles_to_ps(3), Picos(2_500));
        // A constraint is never shortened.
        assert!(c.cycles_to_ps(1) * 3 >= c.cycles_to_ps(3));
    }

    #[test]
    fn clock_no_drift_over_long_spans() {
        let c = Clock::from_mhz(1200);
        // One simulated second = 1.2e9 cycles exactly.
        assert_eq!(c.ps_to_cycles(Picos(1_000_000_000_000)), 1_200_000_000);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_frequency_panics() {
        let _ = Clock::from_mhz(0);
    }
}
