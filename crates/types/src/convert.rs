//! Checked integer conversions for address arithmetic.
//!
//! The audit lint (`cargo run -p mempod-audit -- lint`) bans bare `as`
//! casts in the address-arithmetic modules ([`addr`](crate::addr),
//! [`geometry`](crate::geometry), and the DRAM address mapper): a silent
//! truncation there turns into a wrong bank/row/pod, which the simulator
//! happily models without ever crashing. Every width change instead routes
//! through this module, where each conversion is either provably lossless
//! (widening, with a compile-time guard on platform word size) or
//! explicitly checked.
//!
//! Two flavors are provided for narrowing:
//!
//! * `try_*` — fallible, for values that come from input (configs, traces);
//! * panicking (`u32_from_u64`, `usize_from_u64`) — for values that are
//!   structurally bounded (e.g. a residue modulo a `u32` channel count),
//!   where overflow is a programming error, and which remain usable in
//!   `const fn` address math.

use std::fmt;

// The address space is modeled in u64; a usize must fit into it for trace
// buffers and table indices to be addressable. Every platform Rust
// supports satisfies both guards.
const _: () = assert!(usize::BITS <= 64, "usize wider than u64 unsupported");
const _: () = assert!(usize::BITS >= 32, "16-bit targets unsupported");

/// A narrowing conversion failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvertError {
    /// The value that did not fit.
    pub value: u64,
    /// The target type's name.
    pub target: &'static str,
}

impl fmt::Display for ConvertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "value {} does not fit in {}", self.value, self.target)
    }
}

impl std::error::Error for ConvertError {}

/// Widens a `usize` to `u64`. Lossless: the guard above rejects platforms
/// with a wider-than-64-bit word.
#[must_use]
pub const fn u64_from_usize(x: usize) -> u64 {
    x as u64
}

/// Widens a `u32` to `u64`. Always lossless.
#[must_use]
pub const fn u64_from_u32(x: u32) -> u64 {
    x as u64
}

/// Widens a `u32` to `usize`. Lossless: the guard above rejects 16-bit
/// targets.
#[must_use]
pub const fn usize_from_u32(x: u32) -> usize {
    x as usize
}

/// Narrows a `u64` to `u32`, for values structurally bounded below
/// `2^32` (e.g. a residue modulo a `u32` channel or pod count).
///
/// # Panics
///
/// Panics if `x` does not fit — a programming error, not an input error.
#[must_use]
pub const fn u32_from_u64(x: u64) -> u32 {
    match u32_checked(x) {
        Some(v) => v,
        None => panic!("u64 value does not fit in u32"),
    }
}

/// Narrows a `u64` to `usize`, for structurally bounded values (e.g. an
/// index already compared against a collection length).
///
/// # Panics
///
/// Panics if `x` does not fit — only possible on 32-bit targets.
#[must_use]
pub const fn usize_from_u64(x: u64) -> usize {
    if x <= usize::MAX as u64 {
        x as usize
    } else {
        panic!("u64 value does not fit in usize")
    }
}

/// Fallibly narrows a `u64` to `u32`.
///
/// # Errors
///
/// Returns [`ConvertError`] if `x` exceeds `u32::MAX`.
pub const fn try_u32_from_u64(x: u64) -> Result<u32, ConvertError> {
    match u32_checked(x) {
        Some(v) => Ok(v),
        None => Err(ConvertError {
            value: x,
            target: "u32",
        }),
    }
}

/// Fallibly narrows a `u64` to `usize` (fails only on 32-bit targets).
///
/// # Errors
///
/// Returns [`ConvertError`] if `x` exceeds `usize::MAX`.
pub const fn try_usize_from_u64(x: u64) -> Result<usize, ConvertError> {
    if x <= usize::MAX as u64 {
        Ok(x as usize)
    } else {
        Err(ConvertError {
            value: x,
            target: "usize",
        })
    }
}

const fn u32_checked(x: u64) -> Option<u32> {
    if x <= u32::MAX as u64 {
        Some(x as u32)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widening_is_identity() {
        assert_eq!(u64_from_usize(usize::MAX), usize::MAX as u64);
        assert_eq!(u64_from_u32(u32::MAX), u64::from(u32::MAX));
        assert_eq!(usize_from_u32(7), 7usize);
    }

    #[test]
    fn narrowing_round_trips_in_range() {
        for v in [0u64, 1, 0xffff, u64::from(u32::MAX)] {
            assert_eq!(u64::from(u32_from_u64(v)), v);
            assert_eq!(try_u32_from_u64(v), Ok(u32_from_u64(v)));
            assert_eq!(u64_from_usize(usize_from_u64(v)), v);
        }
    }

    #[test]
    fn narrowing_rejects_out_of_range() {
        let e = try_u32_from_u64(u64::from(u32::MAX) + 1).unwrap_err();
        assert_eq!(e.target, "u32");
        assert!(e.to_string().contains("does not fit in u32"));
    }

    #[test]
    #[should_panic(expected = "does not fit in u32")]
    fn panicking_narrowing_panics_out_of_range() {
        let _ = u32_from_u64(1 << 40);
    }

    #[test]
    fn const_usable() {
        const PAGE: u64 = u64_from_usize(2048);
        const POD: u32 = u32_from_u64(3);
        assert_eq!(PAGE, 2048);
        assert_eq!(POD, 3);
    }
}
