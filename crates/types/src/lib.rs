//! Foundational types shared by every crate in the MemPod reproduction suite.
//!
//! This crate defines the vocabulary of the simulator:
//!
//! * [`time`] — picosecond-resolution simulated time ([`Picos`]) and clock
//!   domains ([`Clock`]), so the 3.2 GHz CPU and the 1 GHz / 800 MHz memory
//!   buses compose without rounding drift.
//! * [`addr`] — byte addresses, page and line identifiers, and physical frame
//!   indices, each a distinct newtype so the type system separates the *name*
//!   of a page from the *place* it currently lives (the heart of a migration
//!   simulator).
//! * [`request`] — memory requests as they leave the last-level cache.
//! * [`geometry`] — the capacity layout of a two-level memory (fast HBM
//!   frames + slow DDR frames, pages, pods).
//! * [`config`] — the serializable top-level system configuration mirroring
//!   Table 2 of the paper.
//! * [`convert`] — checked integer conversions; the audit lint bans bare
//!   `as` casts in address arithmetic, and these helpers are the sanctioned
//!   route for width changes.
//!
//! # Examples
//!
//! ```
//! use mempod_types::{Geometry, PageId, Tier};
//!
//! // The paper's 1 GB HBM + 8 GB DDR4 system with 2 KB pages and 4 pods.
//! let geo = Geometry::paper_default();
//! assert_eq!(geo.total_pages(), 4_718_592); // the paper's "4.5M" pages
//! assert_eq!(geo.pages_per_pod(), 1_179_648); // the paper's "1.1M" pages/pod
//! assert_eq!(geo.tier_of_page(PageId(0)), Tier::Fast);
//! ```

pub mod addr;
pub mod config;
pub mod convert;
pub mod error;
pub mod fault;
pub mod geometry;
pub mod request;
pub mod time;

pub use addr::{Addr, FrameId, LineId, PageId};
pub use config::{SystemConfig, TrackerKind};
pub use convert::ConvertError;
pub use error::{EngineError, GeometryError};
pub use fault::{ChannelFaultKind, FaultCause, FaultConfig, MigrationFaultSpec, WorkerPanic};
pub use geometry::{Geometry, Tier, LINES_PER_PAGE, LINE_SIZE, PAGE_SIZE};
pub use request::{AccessKind, CoreId, MemRequest, RequestId};
pub use time::{Clock, Picos};
