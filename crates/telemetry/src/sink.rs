//! Pluggable JSONL sinks for the event stream.

use mempod_sync::{Arc, Mutex};
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use crate::event::Event;

/// Destination for rendered JSONL event lines.
///
/// Implementations receive one line per event, without the trailing
/// newline. `wants_lines` lets the emitter skip serialization entirely for
/// sinks that discard everything (the null sink), which is what keeps
/// always-on telemetry cheap.
pub trait EventSink: fmt::Debug + Send {
    /// Whether this sink will do anything with emitted lines. Emitters may
    /// skip rendering when this is `false`.
    fn wants_lines(&self) -> bool {
        true
    }

    /// Consumes one JSONL line.
    fn emit(&mut self, line: &str);

    /// Consumes one structured event. The default renders the event as a
    /// JSONL line and forwards to [`EventSink::emit`]; structure-aware
    /// sinks (the Chrome trace exporter, tee fan-out) override this to see
    /// the typed event before it is flattened to text.
    fn emit_event(&mut self, event: &Event) {
        self.emit(&event.to_jsonl());
    }

    /// Flushes buffered output (end of run).
    fn flush(&mut self) {}
}

/// Discards every event without rendering it.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn wants_lines(&self) -> bool {
        false
    }

    fn emit(&mut self, _line: &str) {}
}

/// Accepts every event — so emitters render spans and events exactly as
/// they would for a real sink — then drops the rendered line. This is the
/// benchmarking sink: it prices the full produce-and-serialize path without
/// any I/O, unlike [`NullSink`], whose `wants_lines() == false` short-
/// circuits production entirely.
#[derive(Debug, Clone, Copy, Default)]
pub struct DiscardSink {
    lines: u64,
}

impl DiscardSink {
    /// A fresh discarding sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Lines rendered and dropped so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }
}

impl EventSink for DiscardSink {
    fn emit(&mut self, _line: &str) {
        self.lines += 1;
    }
}

/// Streams events to a file, one JSON object per line.
#[derive(Debug)]
pub struct FileSink {
    w: BufWriter<File>,
    /// I/O errors observed while writing (surfaced at `flush`, not by
    /// panicking mid-run).
    errors: u64,
}

impl FileSink {
    /// Creates (truncating) the JSONL file at `path`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the file cannot be created.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(FileSink {
            w: BufWriter::new(File::create(path)?),
            errors: 0,
        })
    }

    /// Number of write errors swallowed so far.
    pub fn errors(&self) -> u64 {
        self.errors
    }
}

impl EventSink for FileSink {
    fn emit(&mut self, line: &str) {
        if writeln!(self.w, "{line}").is_err() {
            self.errors += 1;
        }
    }

    fn flush(&mut self) {
        if self.w.flush().is_err() {
            self.errors += 1;
        }
    }
}

/// Collects events in memory, for tests.
///
/// The backing vector is shared: keep a [`MemorySink::handle`] before
/// moving the sink into a `Telemetry` and read the lines after the run.
#[derive(Debug, Default)]
pub struct MemorySink {
    lines: Arc<Mutex<Vec<String>>>,
}

impl MemorySink {
    /// An empty in-memory sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A shared handle to the collected lines.
    pub fn handle(&self) -> Arc<Mutex<Vec<String>>> {
        Arc::clone(&self.lines)
    }
}

impl EventSink for MemorySink {
    fn emit(&mut self, line: &str) {
        if let Ok(mut lines) = self.lines.lock() {
            lines.push(line.to_string());
        }
    }
}

/// Fans every event out to two sinks — e.g. a JSONL timeline *and* a
/// Chrome trace from the same run (`simrun --timeline … --trace-out …`).
#[derive(Debug)]
pub struct TeeSink {
    a: Box<dyn EventSink>,
    b: Box<dyn EventSink>,
}

impl TeeSink {
    /// Couples two sinks.
    pub fn new(a: Box<dyn EventSink>, b: Box<dyn EventSink>) -> Self {
        TeeSink { a, b }
    }
}

impl EventSink for TeeSink {
    fn wants_lines(&self) -> bool {
        self.a.wants_lines() || self.b.wants_lines()
    }

    fn emit(&mut self, line: &str) {
        self.a.emit(line);
        self.b.emit(line);
    }

    fn emit_event(&mut self, event: &Event) {
        // Forward the *typed* event so a structure-aware branch (Chrome
        // exporter) keeps its override even behind the tee.
        self.a.emit_event(event);
        self.b.emit_event(event);
    }

    fn flush(&mut self) {
        self.a.flush();
        self.b.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_declines_lines() {
        let mut s = NullSink;
        assert!(!s.wants_lines());
        s.emit("ignored");
        s.flush();
    }

    #[test]
    fn memory_sink_collects_in_order() {
        let mut s = MemorySink::new();
        let handle = s.handle();
        s.emit("one");
        s.emit("two");
        s.flush();
        let lines = handle.lock().unwrap();
        assert_eq!(*lines, vec!["one".to_string(), "two".to_string()]);
    }

    #[test]
    fn file_sink_writes_jsonl() {
        let path = std::env::temp_dir().join(format!(
            "mempod-telemetry-sink-{}.jsonl",
            std::process::id()
        ));
        {
            let mut s = FileSink::create(&path).expect("create");
            s.emit("{\"a\":1}");
            s.emit("{\"b\":2}");
            s.flush();
            assert_eq!(s.errors(), 0);
        }
        let text = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(text, "{\"a\":1}\n{\"b\":2}\n");
        let _ = std::fs::remove_file(&path);
    }
}
