//! Metric primitives: counters, gauges and log2-bucket histograms behind a
//! registry with cheap pre-registered handles.
//!
//! The registry is built for hot loops: registration happens once up front
//! and returns a plain index ([`CounterId`] / [`GaugeId`] / [`HistogramId`]),
//! so recording is an array indexing plus an add — no hashing, no string
//! comparison, no allocation. Snapshot readers (the epoch driver, report
//! assembly) pull cumulative values and diff them between epochs.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// Number of log2 buckets: bucket `b` holds values whose bit length is `b`
/// (value 0 in bucket 0, 1 in bucket 1, 2–3 in bucket 2, ... up to bucket
/// 64 for values ≥ 2^63).
pub const LOG2_BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples.
///
/// Recording costs one leading-zeros instruction, an array increment and
/// min/max updates. Percentile queries return the upper bound of the bucket
/// the requested rank falls in, clamped to the recorded `[min, max]` range,
/// so for any recorded data: `min() ≤ p50 ≤ p99 ≤ max()`.
///
/// # Examples
///
/// ```
/// use mempod_telemetry::Log2Histogram;
///
/// let mut h = Log2Histogram::new();
/// for v in [1u64, 2, 3, 100] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.min(), Some(1));
/// assert_eq!(h.max(), Some(100));
/// let p50 = h.value_at_quantile(0.50).unwrap();
/// let p99 = h.value_at_quantile(0.99).unwrap();
/// assert!(1 <= p50 && p50 <= p99 && p99 <= 100);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Log2Histogram {
    buckets: [u64; LOG2_BUCKETS],
    count: u64,
    sum: u64,
    /// Smallest recorded value (`u64::MAX` while empty).
    min: u64,
    /// Largest recorded value (0 while empty).
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index of a value: its bit length.
#[inline]
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Upper bound of the values bucket `b` can hold.
fn bucket_upper_bound(b: usize) -> u64 {
    if b >= 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Log2Histogram {
            buckets: [0; LOG2_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of recorded samples (`None` while empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The value at quantile `q` (0.0 ..= 1.0): the upper bound of the
    /// bucket containing the ⌈q·count⌉-th smallest sample, clamped to the
    /// recorded `[min, max]` range. `None` while empty.
    pub fn value_at_quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Some(bucket_upper_bound(b).clamp(self.min, self.max));
            }
        }
        // Unreachable while `count` equals the bucket total; be safe anyway.
        Some(self.max)
    }

    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Bucket-wise difference `self − earlier`, for turning a cumulative
    /// histogram into a per-epoch one. `min`/`max` cannot be reconstructed
    /// for the window, so the cumulative bounds carry over (the clamp range
    /// stays an over-approximation of the window's true range).
    pub fn diff(&self, earlier: &Log2Histogram) -> Log2Histogram {
        let mut out = self.clone();
        for (a, b) in out.buckets.iter_mut().zip(earlier.buckets.iter()) {
            *a = a.saturating_sub(*b);
        }
        out.count = self.count.saturating_sub(earlier.count);
        out.sum = self.sum.saturating_sub(earlier.sum);
        if out.count == 0 {
            out.min = u64::MAX;
            out.max = 0;
        }
        out
    }

    /// Resets to empty.
    pub fn clear(&mut self) {
        *self = Log2Histogram::new();
    }
}

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// A registry of named metrics with index handles.
///
/// # Examples
///
/// ```
/// use mempod_telemetry::MetricRegistry;
///
/// let mut reg = MetricRegistry::new();
/// let c = reg.counter("sim.requests");
/// reg.inc(c, 3);
/// assert_eq!(reg.counter_value(c), 3);
/// ```
#[derive(Debug, Default)]
pub struct MetricRegistry {
    counter_names: Vec<&'static str>,
    counters: Vec<u64>,
    gauge_names: Vec<&'static str>,
    gauges: Vec<u64>,
    hist_names: Vec<&'static str>,
    hists: Vec<Log2Histogram>,
}

impl MetricRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or looks up) a counter named `name`.
    pub fn counter(&mut self, name: &'static str) -> CounterId {
        if let Some(i) = self.counter_names.iter().position(|n| *n == name) {
            return CounterId(i);
        }
        self.counter_names.push(name);
        self.counters.push(0);
        CounterId(self.counters.len() - 1)
    }

    /// Registers (or looks up) a gauge named `name`.
    pub fn gauge(&mut self, name: &'static str) -> GaugeId {
        if let Some(i) = self.gauge_names.iter().position(|n| *n == name) {
            return GaugeId(i);
        }
        self.gauge_names.push(name);
        self.gauges.push(0);
        GaugeId(self.gauges.len() - 1)
    }

    /// Registers (or looks up) a histogram named `name`.
    pub fn histogram(&mut self, name: &'static str) -> HistogramId {
        if let Some(i) = self.hist_names.iter().position(|n| *n == name) {
            return HistogramId(i);
        }
        self.hist_names.push(name);
        self.hists.push(Log2Histogram::new());
        HistogramId(self.hists.len() - 1)
    }

    /// Adds `by` to a counter.
    #[inline]
    pub fn inc(&mut self, id: CounterId, by: u64) {
        self.counters[id.0] += by;
    }

    /// Sets a gauge.
    #[inline]
    pub fn set(&mut self, id: GaugeId, v: u64) {
        self.gauges[id.0] = v;
    }

    /// Records a histogram sample.
    #[inline]
    pub fn record(&mut self, id: HistogramId, v: u64) {
        self.hists[id.0].record(v);
    }

    /// Current counter value.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0]
    }

    /// Current gauge value.
    pub fn gauge_value(&self, id: GaugeId) -> u64 {
        self.gauges[id.0]
    }

    /// Borrow of a histogram.
    pub fn histogram_ref(&self, id: HistogramId) -> &Log2Histogram {
        &self.hists[id.0]
    }

    /// All counters and gauges by name (gauges share the namespace), for
    /// snapshot assembly.
    pub fn scalars(&self) -> HashMap<String, u64> {
        let mut out = HashMap::new();
        for (n, v) in self.counter_names.iter().zip(self.counters.iter()) {
            out.insert((*n).to_string(), *v);
        }
        for (n, v) in self.gauge_names.iter().zip(self.gauges.iter()) {
            out.insert((*n).to_string(), *v);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_follow_bit_length() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn empty_histogram_yields_none() {
        let h = Log2Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.value_at_quantile(0.5), None);
    }

    #[test]
    fn single_value_is_every_percentile() {
        let mut h = Log2Histogram::new();
        h.record(37);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.value_at_quantile(q), Some(37));
        }
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let mut h = Log2Histogram::new();
        for v in 0..1000u64 {
            h.record(v * 17 % 512);
        }
        let mut last = h.min().unwrap();
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let p = h.value_at_quantile(q).unwrap();
            assert!(p >= last, "q={q}: {p} < {last}");
            assert!(p <= h.max().unwrap());
            last = p;
        }
    }

    #[test]
    fn merge_and_diff_are_inverse_on_counts() {
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        for v in [1u64, 5, 9, 200] {
            a.record(v);
        }
        for v in [3u64, 1024] {
            b.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 6);
        let back = merged.diff(&a);
        assert_eq!(back.count(), b.count());
        assert_eq!(back.sum(), b.sum());
    }

    #[test]
    fn registry_handles_are_stable_and_deduplicated() {
        let mut reg = MetricRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("y");
        let a2 = reg.counter("x");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        reg.inc(a, 2);
        reg.inc(b, 5);
        let g = reg.gauge("depth");
        reg.set(g, 9);
        let h = reg.histogram("lat");
        reg.record(h, 100);
        assert_eq!(reg.counter_value(a), 2);
        assert_eq!(reg.gauge_value(g), 9);
        assert_eq!(reg.histogram_ref(h).count(), 1);
        let scalars = reg.scalars();
        assert_eq!(scalars["x"], 2);
        assert_eq!(scalars["depth"], 9);
    }
}
