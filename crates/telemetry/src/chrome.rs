//! Chrome trace-event exporter: renders the event stream as a JSON array
//! loadable by Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!
//! The mapping, per the trace-event format:
//!
//! * causal [`SpanRecord`]s for requests render as `"X"` complete events
//!   on the *causal* process, one thread track per pod;
//! * migration-lifecycle spans render as `"b"`/`"e"` async pairs keyed by
//!   the span id, so overlapping migrations nest correctly;
//! * execution spans ([`SpanName::ShardBatch`] / [`SpanName::Barrier`])
//!   render as `"X"` events on the *shards* process, one thread per shard;
//! * epoch snapshots render as `"C"` counter samples (requests,
//!   migrations, fast-service fraction);
//! * fault and provenance events (aborts, retries, rollbacks, ping-pongs)
//!   render as `"i"` instants with their payload under `args`.
//!
//! Timestamps convert from simulated picoseconds to the format's
//! microseconds as `ps / 1e6`, keeping sub-µs resolution as fractions.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use serde_json::{json, Value};

use crate::event::{Event, EventKind};
use crate::sink::EventSink;
use crate::span::{SpanName, SpanRecord, SPAN_NONE};

/// Synthetic process id for causal (simulated-machine) tracks.
const PID_CAUSAL: u64 = 1;
/// Synthetic process id for execution (shard-worker) tracks.
const PID_SHARDS: u64 = 2;

/// Converts simulated picoseconds to trace-format microseconds.
fn us(ps: u64) -> f64 {
    // 2^53 µs of simulated time (~285 years) before any precision loss;
    // runs are many orders of magnitude shorter.
    ps as f64 / 1e6
}

/// Streams events as a Chrome trace-event JSON array.
///
/// The array is opened at creation and closed (idempotently) at
/// [`EventSink::flush`]; events arriving after the close are dropped and
/// counted in [`ChromeTraceSink::errors`]. Raw pre-rendered lines
/// ([`EventSink::emit`]) are ignored — this sink only consumes typed
/// events via [`EventSink::emit_event`], which is the path `Telemetry`
/// always uses.
#[derive(Debug)]
pub struct ChromeTraceSink {
    w: BufWriter<File>,
    wrote_any: bool,
    closed: bool,
    errors: u64,
}

impl ChromeTraceSink {
    /// Creates (truncating) the trace file at `path` and writes the array
    /// opener plus process-name metadata.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the file cannot be created.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let mut sink = ChromeTraceSink {
            w: BufWriter::new(File::create(path)?),
            wrote_any: false,
            closed: false,
            errors: 0,
        };
        if sink.w.write_all(b"[").is_err() {
            sink.errors += 1;
        }
        sink.record(json!({
            "name": "process_name", "ph": "M", "pid": PID_CAUSAL,
            "args": {"name": "causal (simulated machine)"},
        }));
        sink.record(json!({
            "name": "process_name", "ph": "M", "pid": PID_SHARDS,
            "args": {"name": "shard workers"},
        }));
        Ok(sink)
    }

    /// Number of write errors swallowed (or post-close events dropped).
    pub fn errors(&self) -> u64 {
        self.errors
    }

    /// Appends one trace record to the array.
    fn record(&mut self, v: Value) {
        if self.closed {
            self.errors += 1;
            return;
        }
        let sep: &[u8] = if self.wrote_any { b",\n" } else { b"\n" };
        let line = serde_json::to_string(&v).unwrap_or_default();
        if self.w.write_all(sep).is_err() || self.w.write_all(line.as_bytes()).is_err() {
            self.errors += 1;
        }
        self.wrote_any = true;
    }

    /// Renders one span as trace records.
    fn span(&mut self, t_ps: u64, s: &SpanRecord) {
        let _ = t_ps; // spans carry their own interval; the event time is the end.
        let name = s.name.as_str();
        match s.name {
            SpanName::ShardBatch | SpanName::Barrier => {
                self.record(json!({
                    "name": name, "ph": "X", "cat": "exec",
                    "pid": PID_SHARDS, "tid": s.shard,
                    "ts": us(s.start_ps), "dur": us(s.dur_ps()),
                    "args": {"id": format!("{:#018x}", s.id), "items": s.aux},
                }));
            }
            SpanName::Migration
            | SpanName::MigrationAborted
            | SpanName::MigrationAttempt
            | SpanName::MigrationBackoff => {
                // Async pair keyed by the lifecycle root: children share
                // the root id so Perfetto nests them on one async track.
                let key = if s.parent == SPAN_NONE {
                    s.id
                } else {
                    s.parent
                };
                let id = format!("{key:#018x}");
                let tid = u64::from(s.pod.unwrap_or(0)) + 1;
                let args = json!({
                    "frame": s.frame, "attempt": s.aux,
                    "span": format!("{:#018x}", s.id),
                });
                self.record(json!({
                    "name": name, "ph": "b", "cat": "migration", "id": id,
                    "pid": PID_CAUSAL, "tid": tid, "ts": us(s.start_ps),
                    "args": args,
                }));
                self.record(json!({
                    "name": name, "ph": "e", "cat": "migration", "id": id,
                    "pid": PID_CAUSAL, "tid": tid, "ts": us(s.end_ps),
                }));
            }
            SpanName::Request | SpanName::Gate | SpanName::Service | SpanName::MetaFetch => {
                let tid = u64::from(s.pod.unwrap_or(0)) + 1;
                self.record(json!({
                    "name": name, "ph": "X", "cat": "request",
                    "pid": PID_CAUSAL, "tid": tid,
                    "ts": us(s.start_ps), "dur": us(s.dur_ps()),
                    "args": {
                        "frame": s.frame,
                        "span": format!("{:#018x}", s.id),
                        "parent": format!("{:#018x}", s.parent),
                    },
                }));
            }
        }
    }

    /// Renders a non-span event, if it has a trace mapping.
    fn other(&mut self, e: &Event) {
        let t = e.t_ps;
        match &e.kind {
            EventKind::Epoch(s) => {
                self.record(json!({
                    "name": "epoch", "ph": "C", "pid": PID_CAUSAL, "tid": 0,
                    "ts": us(t),
                    "args": {
                        "requests_delta": s.requests_delta,
                        "migrations_delta": s.migrations_delta,
                        "fast_service_fraction": s.fast_service_fraction,
                    },
                }));
            }
            EventKind::MigrationAbort {
                pod,
                frame_a,
                frame_b,
                attempt,
                conflicting,
            } => self.instant(
                t,
                "MigrationAbort",
                *pod,
                json!({
                    "frame_a": *frame_a, "frame_b": *frame_b,
                    "attempt": *attempt, "conflicting": *conflicting,
                }),
            ),
            EventKind::MigrationRetry {
                pod,
                frame_a,
                frame_b,
                attempt,
                backoff_ps,
            } => self.instant(
                t,
                "MigrationRetry",
                *pod,
                json!({
                    "frame_a": *frame_a, "frame_b": *frame_b,
                    "attempt": *attempt, "backoff_ps": *backoff_ps,
                }),
            ),
            EventKind::MigrationRollback {
                pod,
                frame_a,
                frame_b,
                attempts,
            } => self.instant(
                t,
                "MigrationRollback",
                *pod,
                json!({
                    "frame_a": *frame_a, "frame_b": *frame_b,
                    "attempts": *attempts,
                }),
            ),
            EventKind::PagePingPong {
                page,
                round_trip_ps,
                trips,
            } => self.instant(
                t,
                "PagePingPong",
                None,
                json!({
                    "page": *page, "round_trip_ps": *round_trip_ps,
                    "trips": *trips,
                }),
            ),
            // Everything else (remaps, bursts, high-water marks, runner
            // progress) stays JSONL-only: high-volume and better served by
            // `tracelens` queries than by cluttering the timeline UI.
            _ => {}
        }
    }

    /// Appends one `"i"` instant record.
    fn instant(&mut self, t_ps: u64, name: &str, pod: Option<u32>, args: Value) {
        let tid = u64::from(pod.unwrap_or(0)) + 1;
        self.record(json!({
            "name": name, "ph": "i", "s": "t", "cat": "fault",
            "pid": PID_CAUSAL, "tid": tid, "ts": us(t_ps), "args": args,
        }));
    }
}

impl EventSink for ChromeTraceSink {
    fn emit(&mut self, _line: &str) {
        // Pre-rendered JSONL has lost the structure this exporter needs;
        // `Telemetry` always routes through `emit_event`.
    }

    fn emit_event(&mut self, event: &Event) {
        match &event.kind {
            EventKind::Span(s) => self.span(event.t_ps, s),
            _ => self.other(event),
        }
    }

    fn flush(&mut self) {
        if !self.closed {
            self.closed = true;
            if self.w.write_all(b"\n]\n").is_err() {
                self.errors += 1;
            }
        }
        if self.w.flush().is_err() {
            self.errors += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{migration_span_id, request_span_id};

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("mempod-chrome-{}-{name}.json", std::process::id()))
    }

    #[test]
    fn produces_a_loadable_json_array() {
        let path = tmp("array");
        {
            let mut sink = ChromeTraceSink::create(&path).expect("create");
            let req = SpanRecord {
                id: request_span_id(5, 0, 100),
                parent: SPAN_NONE,
                name: SpanName::Request,
                start_ps: 100,
                end_ps: 900,
                pod: Some(2),
                frame: 5,
                shard: 0,
                aux: 0,
            };
            sink.emit_event(&Event::new(900, EventKind::Span(req)));
            let mig = SpanRecord {
                id: migration_span_id(1, 2, 50),
                parent: SPAN_NONE,
                name: SpanName::Migration,
                start_ps: 50,
                end_ps: 4_050,
                pod: Some(0),
                frame: 1,
                shard: 0,
                aux: 2,
            };
            sink.emit_event(&Event::new(4_050, EventKind::Span(mig)));
            sink.emit_event(&Event::new(
                60,
                EventKind::PagePingPong {
                    page: 9,
                    round_trip_ps: 10,
                    trips: 1,
                },
            ));
            sink.flush();
            assert_eq!(sink.errors(), 0);
        }
        let text = std::fs::read_to_string(&path).expect("read back");
        let v: Value = serde_json::from_str(&text).expect("valid JSON");
        let arr = v.as_array().expect("array");
        // 2 metadata + 1 request X + migration b/e pair + 1 instant.
        assert_eq!(arr.len(), 6);
        assert!(arr
            .iter()
            .all(|r| r.get("ph").and_then(Value::as_str).is_some()));
        let phases: Vec<&str> = arr
            .iter()
            .filter_map(|r| r.get("ph").and_then(Value::as_str))
            .collect();
        assert_eq!(phases, vec!["M", "M", "X", "b", "e", "i"]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn flush_is_idempotent_and_post_close_events_count_as_errors() {
        let path = tmp("close");
        {
            let mut sink = ChromeTraceSink::create(&path).expect("create");
            sink.flush();
            sink.flush();
            sink.emit_event(&Event::new(1, EventKind::MetaMissBurst { len: 9 }));
            assert_eq!(sink.errors(), 0); // unmapped kind: silently skipped
            sink.emit_event(&Event::new(
                1,
                EventKind::PagePingPong {
                    page: 1,
                    round_trip_ps: 1,
                    trips: 1,
                },
            ));
            assert_eq!(sink.errors(), 1); // mapped kind after close: dropped
        }
        let text = std::fs::read_to_string(&path).expect("read back");
        assert!(serde_json::from_str::<Value>(&text).is_ok(), "{text}");
        let _ = std::fs::remove_file(&path);
    }
}
