//! Structured events: the sanctioned alternative to ad-hoc printing from
//! hot paths. Each event serializes to one JSONL line through the active
//! [`EventSink`](crate::EventSink).

use serde::{Deserialize, Serialize};

use crate::ring::EpochSnapshot;

/// What happened.
///
/// `Epoch` dwarfs the other variants, but events are ephemeral — built,
/// serialized to a sink, dropped — never stored in bulk, and the vendored
/// serde shims have no `Box` impls to add indirection through.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// A migration's data movement began (its read phase was launched).
    MigrationStart {
        /// Pod performing the swap (`None` for non-clustered managers;
        /// serialized as null).
        pod: Option<u32>,
        /// One frame of the swap.
        frame_a: u64,
        /// The other frame.
        frame_b: u64,
        /// Lines moved per direction.
        lines: u32,
    },
    /// A migration's last write-back completed; its pages unblocked.
    MigrationComplete {
        /// Pod performing the swap.
        pod: Option<u32>,
        /// One frame of the swap.
        frame_a: u64,
        /// The other frame.
        frame_b: u64,
        /// Wall time from read launch to last write, picoseconds.
        latency_ps: u64,
    },
    /// A manager committed a remap: two pages exchanged frames (data
    /// movement may still be queued behind the pod's migration lane).
    RemapSwap {
        /// One page of the swap.
        page_a: u64,
        /// The other page.
        page_b: u64,
        /// Pod owning the remap entry, if clustered.
        pod: Option<u32>,
    },
    /// A run of consecutive metadata-cache misses ended, having reached at
    /// least the configured burst threshold.
    MetaMissBurst {
        /// Consecutive misses in the burst.
        len: u64,
    },
    /// An epoch window booked an unusually large number of all-bank
    /// refreshes while work was queued (refresh blackouts stalling demand).
    RefreshStall {
        /// Refreshes booked in the window.
        refreshes: u64,
        /// Epoch index of the window's end.
        epoch: u64,
    },
    /// The per-channel scheduling queue reached a new high-water depth.
    QueueDepthHighWater {
        /// New maximum queue depth.
        depth: u64,
        /// Epoch index in which it was observed.
        epoch: u64,
    },
    /// An epoch boundary's derived metrics (the timeline backbone).
    Epoch(EpochSnapshot),
    /// A migration attempt was abandoned mid-swap (injected fault): its
    /// queued background traffic was cancelled at the end of the read
    /// phase and no data was committed.
    MigrationAbort {
        /// Pod performing the swap.
        pod: Option<u32>,
        /// One frame of the swap.
        frame_a: u64,
        /// The other frame.
        frame_b: u64,
        /// 1-based attempt number that aborted.
        attempt: u32,
        /// Whether a conflicting write was parked on either page when the
        /// abort fired (the classic torn-swap hazard).
        conflicting: bool,
    },
    /// An aborted migration was resubmitted after simulated-time backoff.
    MigrationRetry {
        /// Pod performing the swap.
        pod: Option<u32>,
        /// One frame of the swap.
        frame_a: u64,
        /// The other frame.
        frame_b: u64,
        /// 1-based attempt number being launched.
        attempt: u32,
        /// Simulated backoff applied before this attempt, picoseconds.
        backoff_ps: u64,
    },
    /// A migration exhausted its retry budget; the address map was rolled
    /// back to its pre-swap state and the swap abandoned.
    MigrationRollback {
        /// Pod performing the swap.
        pod: Option<u32>,
        /// One frame of the swap.
        frame_a: u64,
        /// The other frame.
        frame_b: u64,
        /// Total attempts made before giving up.
        attempts: u32,
    },
    /// A shard worker panicked; caught at the epoch barrier.
    ShardPanic {
        /// Index of the first shard whose worker panicked.
        shard: u32,
    },
    /// The sharded engine abandoned its partial state and restarted the
    /// run on the sequential reference path.
    DegradedToSequential {
        /// Shard whose panic triggered the degradation.
        shard: u32,
    },
    /// The runner watchdog cancelled a job that exceeded its hard
    /// per-job timeout.
    JobTimeout {
        /// Job index within the submitted batch.
        job: usize,
    },
    /// A parallel-runner job started.
    JobStart {
        /// Job index within the submitted batch.
        job: usize,
        /// Short job label (workload/manager).
        label: String,
    },
    /// A parallel-runner job finished.
    JobFinish {
        /// Job index within the submitted batch.
        job: usize,
        /// Wall-clock milliseconds the job took.
        wall_ms: u64,
        /// Requests simulated.
        requests: u64,
    },
}

/// A timestamped event.
///
/// `t_ps` is simulated picoseconds for simulator events and wall-clock
/// milliseconds-since-run-start for runner events (runner progress has no
/// simulated clock).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Timestamp (see type docs for units).
    pub t_ps: u64,
    /// Payload.
    pub kind: EventKind,
}

impl Event {
    /// Creates an event.
    pub fn new(t_ps: u64, kind: EventKind) -> Self {
        Event { t_ps, kind }
    }

    /// Renders the event as one JSON line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        // Serialization through the vendored Value model is infallible for
        // derived types; an empty line would only signal a shim bug.
        serde_json::to_string(self).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_round_trip_through_the_value_model() {
        let samples = vec![
            Event::new(
                10,
                EventKind::MigrationStart {
                    pod: Some(3),
                    frame_a: 7,
                    frame_b: 4096,
                    lines: 32,
                },
            ),
            Event::new(
                20,
                EventKind::MigrationComplete {
                    pod: None,
                    frame_a: 7,
                    frame_b: 4096,
                    latency_ps: 123_456,
                },
            ),
            Event::new(
                30,
                EventKind::RemapSwap {
                    page_a: 1,
                    page_b: 2,
                    pod: Some(0),
                },
            ),
            Event::new(40, EventKind::MetaMissBurst { len: 17 }),
            Event::new(
                50,
                EventKind::RefreshStall {
                    refreshes: 9,
                    epoch: 2,
                },
            ),
            Event::new(
                60,
                EventKind::QueueDepthHighWater {
                    depth: 128,
                    epoch: 2,
                },
            ),
            Event::new(
                70,
                EventKind::JobFinish {
                    job: 4,
                    wall_ms: 1500,
                    requests: 1_000_000,
                },
            ),
            Event::new(
                80,
                EventKind::MigrationAbort {
                    pod: Some(1),
                    frame_a: 7,
                    frame_b: 4096,
                    attempt: 2,
                    conflicting: true,
                },
            ),
            Event::new(
                90,
                EventKind::MigrationRetry {
                    pod: Some(1),
                    frame_a: 7,
                    frame_b: 4096,
                    attempt: 3,
                    backoff_ps: 2_000_000,
                },
            ),
            Event::new(
                100,
                EventKind::MigrationRollback {
                    pod: None,
                    frame_a: 7,
                    frame_b: 4096,
                    attempts: 4,
                },
            ),
            Event::new(110, EventKind::ShardPanic { shard: 3 }),
            Event::new(120, EventKind::DegradedToSequential { shard: 3 }),
            Event::new(130, EventKind::JobTimeout { job: 2 }),
        ];
        for e in samples {
            let back = Event::deserialize(&e.to_value()).expect("round trip");
            assert_eq!(back, e);
        }
    }

    #[test]
    fn jsonl_line_parses_back() {
        let e = Event::new(99, EventKind::MetaMissBurst { len: 8 });
        let line = e.to_jsonl();
        assert!(!line.contains('\n'));
        let v = serde_json::from_str(&line).expect("valid json");
        let back = Event::deserialize(&v).expect("round trip");
        assert_eq!(back, e);
    }
}
