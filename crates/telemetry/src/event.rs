//! Structured events: the sanctioned alternative to ad-hoc printing from
//! hot paths. Each event serializes to one JSONL line through the active
//! [`EventSink`](crate::EventSink).

use serde::{Deserialize, Serialize};

use crate::ring::EpochSnapshot;
use crate::span::SpanRecord;

/// What happened.
///
/// `Epoch` dwarfs the other variants, but events are ephemeral — built,
/// serialized to a sink, dropped — never stored in bulk, and the vendored
/// serde shims have no `Box` impls to add indirection through.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// A migration's data movement began (its read phase was launched).
    MigrationStart {
        /// Pod performing the swap (`None` for non-clustered managers;
        /// serialized as null).
        pod: Option<u32>,
        /// One frame of the swap.
        frame_a: u64,
        /// The other frame.
        frame_b: u64,
        /// Lines moved per direction.
        lines: u32,
    },
    /// A migration's last write-back completed; its pages unblocked.
    MigrationComplete {
        /// Pod performing the swap.
        pod: Option<u32>,
        /// One frame of the swap.
        frame_a: u64,
        /// The other frame.
        frame_b: u64,
        /// Wall time from read launch to last write, picoseconds.
        latency_ps: u64,
    },
    /// A manager committed a remap: two pages exchanged frames (data
    /// movement may still be queued behind the pod's migration lane).
    RemapSwap {
        /// One page of the swap.
        page_a: u64,
        /// The other page.
        page_b: u64,
        /// Pod owning the remap entry, if clustered.
        pod: Option<u32>,
        /// Frame `page_a` occupied before the swap.
        frame_a: u64,
        /// Frame `page_b` occupied before the swap.
        frame_b: u64,
        /// Tracker count of the promoted page at decision time (0 when the
        /// mechanism exposes none).
        hotness: u64,
    },
    /// A run of consecutive metadata-cache misses ended, having reached at
    /// least the configured burst threshold.
    MetaMissBurst {
        /// Consecutive misses in the burst.
        len: u64,
    },
    /// An epoch window booked an unusually large number of all-bank
    /// refreshes while work was queued (refresh blackouts stalling demand).
    RefreshStall {
        /// Refreshes booked in the window.
        refreshes: u64,
        /// Epoch index of the window's end.
        epoch: u64,
    },
    /// The per-channel scheduling queue reached a new high-water depth.
    QueueDepthHighWater {
        /// New maximum queue depth.
        depth: u64,
        /// Epoch index in which it was observed.
        epoch: u64,
    },
    /// An epoch boundary's derived metrics (the timeline backbone).
    Epoch(EpochSnapshot),
    /// A migration attempt was abandoned mid-swap (injected fault): its
    /// queued background traffic was cancelled at the end of the read
    /// phase and no data was committed.
    MigrationAbort {
        /// Pod performing the swap.
        pod: Option<u32>,
        /// One frame of the swap.
        frame_a: u64,
        /// The other frame.
        frame_b: u64,
        /// 1-based attempt number that aborted.
        attempt: u32,
        /// Whether a conflicting write was parked on either page when the
        /// abort fired (the classic torn-swap hazard).
        conflicting: bool,
    },
    /// An aborted migration was resubmitted after simulated-time backoff.
    MigrationRetry {
        /// Pod performing the swap.
        pod: Option<u32>,
        /// One frame of the swap.
        frame_a: u64,
        /// The other frame.
        frame_b: u64,
        /// 1-based attempt number being launched.
        attempt: u32,
        /// Simulated backoff applied before this attempt, picoseconds.
        backoff_ps: u64,
    },
    /// A migration exhausted its retry budget; the address map was rolled
    /// back to its pre-swap state and the swap abandoned.
    MigrationRollback {
        /// Pod performing the swap.
        pod: Option<u32>,
        /// One frame of the swap.
        frame_a: u64,
        /// The other frame.
        frame_b: u64,
        /// Total attempts made before giving up.
        attempts: u32,
    },
    /// A shard worker panicked; caught at the epoch barrier.
    ShardPanic {
        /// Index of the first shard whose worker panicked.
        shard: u32,
    },
    /// The sharded engine abandoned its partial state and restarted the
    /// run on the sequential reference path.
    DegradedToSequential {
        /// Shard whose panic triggered the degradation.
        shard: u32,
    },
    /// The runner watchdog cancelled a job that exceeded its hard
    /// per-job timeout.
    JobTimeout {
        /// Job index within the submitted batch.
        job: usize,
    },
    /// A parallel-runner job started.
    JobStart {
        /// Job index within the submitted batch.
        job: usize,
        /// Short job label (workload/manager).
        label: String,
    },
    /// A parallel-runner job finished.
    JobFinish {
        /// Job index within the submitted batch.
        job: usize,
        /// Wall-clock milliseconds the job took.
        wall_ms: u64,
        /// Requests simulated.
        requests: u64,
    },
    /// A completed causal/execution span (see [`SpanRecord`]). The event's
    /// `t_ps` is the span's end time, so the merged stream stays ordered
    /// by when things were *known*, not when they began.
    Span(SpanRecord),
    /// The provenance ledger detected a page ping-ponging between tiers:
    /// it returned to a tier it had left within the detection window.
    PagePingPong {
        /// The page bouncing between tiers.
        page: u64,
        /// Simulated time from leaving the tier to returning to it.
        round_trip_ps: u64,
        /// Round trips observed for this page so far (1-based).
        trips: u32,
    },
}

/// A timestamped event.
///
/// `t_ps` is simulated picoseconds for simulator events and wall-clock
/// milliseconds-since-run-start for runner events (runner progress has no
/// simulated clock).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Timestamp (see type docs for units).
    pub t_ps: u64,
    /// Payload.
    pub kind: EventKind,
}

impl Event {
    /// Creates an event.
    pub fn new(t_ps: u64, kind: EventKind) -> Self {
        Event { t_ps, kind }
    }

    /// Renders the event as one JSON line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        // Spans are the only event emitted per *request* (albeit sampled),
        // so they get a hand-rolled serializer: the vendored Value model
        // costs microseconds per line, which alone blows the < 2 % tracing
        // budget. The output is byte-identical to the derive's (pinned by
        // `span_fast_path_matches_derived_serialization`).
        if let EventKind::Span(s) = &self.kind {
            return span_jsonl(self.t_ps, s);
        }
        // Serialization through the vendored Value model is infallible for
        // derived types; an empty line would only signal a shim bug.
        serde_json::to_string(self).unwrap_or_default()
    }
}

/// Hand-rolled rendering of a span line, byte-identical to the serde
/// derive's output for [`Event`] wrapping [`EventKind::Span`].
fn span_jsonl(t_ps: u64, s: &SpanRecord) -> String {
    use std::fmt::Write;
    let mut out = String::with_capacity(192);
    let _ = write!(
        out,
        "{{\"t_ps\":{t_ps},\"kind\":{{\"Span\":{{\"id\":{},\"parent\":{},\"name\":\"{}\",\"start_ps\":{},\"end_ps\":{},\"pod\":",
        s.id,
        s.parent,
        s.name.as_str(),
        s.start_ps,
        s.end_ps,
    );
    match s.pod {
        Some(p) => {
            let _ = write!(out, "{p}");
        }
        None => out.push_str("null"),
    }
    let _ = write!(
        out,
        ",\"frame\":{},\"shard\":{},\"aux\":{}}}}}}}",
        s.frame, s.shard, s.aux
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_round_trip_through_the_value_model() {
        let samples = vec![
            Event::new(
                10,
                EventKind::MigrationStart {
                    pod: Some(3),
                    frame_a: 7,
                    frame_b: 4096,
                    lines: 32,
                },
            ),
            Event::new(
                20,
                EventKind::MigrationComplete {
                    pod: None,
                    frame_a: 7,
                    frame_b: 4096,
                    latency_ps: 123_456,
                },
            ),
            Event::new(
                30,
                EventKind::RemapSwap {
                    page_a: 1,
                    page_b: 2,
                    pod: Some(0),
                    frame_a: 17,
                    frame_b: 3,
                    hotness: 64,
                },
            ),
            Event::new(40, EventKind::MetaMissBurst { len: 17 }),
            Event::new(
                50,
                EventKind::RefreshStall {
                    refreshes: 9,
                    epoch: 2,
                },
            ),
            Event::new(
                60,
                EventKind::QueueDepthHighWater {
                    depth: 128,
                    epoch: 2,
                },
            ),
            Event::new(
                70,
                EventKind::JobFinish {
                    job: 4,
                    wall_ms: 1500,
                    requests: 1_000_000,
                },
            ),
            Event::new(
                80,
                EventKind::MigrationAbort {
                    pod: Some(1),
                    frame_a: 7,
                    frame_b: 4096,
                    attempt: 2,
                    conflicting: true,
                },
            ),
            Event::new(
                90,
                EventKind::MigrationRetry {
                    pod: Some(1),
                    frame_a: 7,
                    frame_b: 4096,
                    attempt: 3,
                    backoff_ps: 2_000_000,
                },
            ),
            Event::new(
                100,
                EventKind::MigrationRollback {
                    pod: None,
                    frame_a: 7,
                    frame_b: 4096,
                    attempts: 4,
                },
            ),
            Event::new(110, EventKind::ShardPanic { shard: 3 }),
            Event::new(120, EventKind::DegradedToSequential { shard: 3 }),
            Event::new(130, EventKind::JobTimeout { job: 2 }),
            Event::new(
                140,
                EventKind::Span(SpanRecord {
                    id: crate::span::request_span_id(9, 1, 77),
                    parent: crate::span::SPAN_NONE,
                    name: crate::span::SpanName::Request,
                    start_ps: 77,
                    end_ps: 140,
                    pod: None,
                    frame: 9,
                    shard: 0,
                    aux: 0,
                }),
            ),
            Event::new(
                150,
                EventKind::PagePingPong {
                    page: 42,
                    round_trip_ps: 2_000_000,
                    trips: 3,
                },
            ),
        ];
        for e in samples {
            let back = Event::deserialize(&e.to_value()).expect("round trip");
            assert_eq!(back, e);
        }
    }

    #[test]
    fn jsonl_line_parses_back() {
        let e = Event::new(99, EventKind::MetaMissBurst { len: 8 });
        let line = e.to_jsonl();
        assert!(!line.contains('\n'));
        let v = serde_json::from_str(&line).expect("valid json");
        let back = Event::deserialize(&v).expect("round trip");
        assert_eq!(back, e);
    }

    #[test]
    fn span_fast_path_matches_derived_serialization() {
        use crate::span::{SpanName, SpanRecord, SPAN_NONE};
        let names = [
            SpanName::Request,
            SpanName::Gate,
            SpanName::Service,
            SpanName::MetaFetch,
            SpanName::Migration,
            SpanName::MigrationAborted,
            SpanName::MigrationAttempt,
            SpanName::MigrationBackoff,
            SpanName::ShardBatch,
            SpanName::Barrier,
        ];
        for (i, name) in names.into_iter().enumerate() {
            for pod in [None, Some(0), Some(u32::MAX)] {
                let rec = SpanRecord {
                    id: if i == 0 { u64::MAX } else { i as u64 },
                    parent: if i % 2 == 0 { SPAN_NONE } else { 7 },
                    name,
                    start_ps: 0,
                    end_ps: u64::MAX - 1,
                    pod,
                    frame: 1 << 40,
                    shard: i as u32,
                    aux: u64::from(u32::MAX) + 3,
                };
                let e = Event::new(u64::MAX, EventKind::Span(rec));
                // The fast path must be indistinguishable from the derive:
                // the differential trace tests compare raw lines.
                assert_eq!(
                    e.to_jsonl(),
                    serde_json::to_string(&e).expect("derived serialization"),
                    "fast path diverged for {name:?} pod {pod:?}"
                );
            }
        }
    }
}
