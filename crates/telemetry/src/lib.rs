//! Epoch-resolution telemetry for the MemPod suite.
//!
//! The paper's claims are temporal — per-epoch hot-set churn (§3),
//! migration traffic over time, epoch-boundary remap activity — so the
//! simulator needs more than end-of-run aggregates. This crate provides
//! the three observability primitives the rest of the workspace wires in:
//!
//! * a [`MetricRegistry`] of counters/gauges/[`Log2Histogram`]s with cheap
//!   pre-registered index handles (no hashing on the record path);
//! * [`EpochSnapshot`]s — derived per-epoch metrics pushed into a bounded
//!   [`SnapshotRing`] and streamed to the sink;
//! * structured [`Event`]s (migration start/complete, remap swaps,
//!   meta-cache miss bursts, refresh stalls, queue-depth high-water marks,
//!   runner job progress) serialized as JSONL through a pluggable
//!   [`EventSink`] ([`NullSink`] / [`FileSink`] / [`MemorySink`]).
//!
//! The design is *pull-based*: producers keep cheap cumulative counters and
//! the epoch driver in `mempod-sim` diffs them at epoch boundaries, so the
//! per-access hot path pays nothing beyond the counters it already
//! maintained. With the default [`NullSink`], events are not even
//! serialized ([`EventSink::wants_lines`]), which is what keeps the
//! measured overhead on `bench_sched --smoke` under 2 %.
//!
//! # Examples
//!
//! ```
//! use mempod_telemetry::{EventKind, MemorySink, Telemetry};
//!
//! let sink = MemorySink::new();
//! let lines = sink.handle();
//! let mut tel = Telemetry::with_sink(Box::new(sink));
//! tel.event(1_000, EventKind::MetaMissBurst { len: 12 });
//! tel.flush();
//! assert_eq!(lines.lock().unwrap().len(), 1);
//! ```

mod event;
mod metrics;
mod ring;
mod sink;

pub use event::{Event, EventKind};
pub use metrics::{CounterId, GaugeId, HistogramId, Log2Histogram, MetricRegistry, LOG2_BUCKETS};
pub use ring::{EpochSnapshot, SnapshotRing};
pub use sink::{EventSink, FileSink, MemorySink, NullSink};

/// Default number of epoch snapshots retained in memory.
pub const DEFAULT_RING_CAPACITY: usize = 1024;

/// The facade a producer holds: registry + ring + sink behind one enabled
/// flag.
///
/// A disabled `Telemetry` ([`Telemetry::disabled`]) makes every emit a
/// branch on a bool; an enabled one with a [`NullSink`] still skips event
/// serialization. Snapshots are always pushed into the ring when enabled so
/// programmatic consumers (`SimReport::timeline`) work without a sink.
#[derive(Debug)]
pub struct Telemetry {
    enabled: bool,
    /// Pre-registered metrics.
    pub registry: MetricRegistry,
    /// Recent epoch snapshots.
    pub ring: SnapshotRing,
    sink: Box<dyn EventSink>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::disabled()
    }
}

impl Telemetry {
    /// Telemetry that records nothing (the zero-cost default).
    pub fn disabled() -> Self {
        Telemetry {
            enabled: false,
            registry: MetricRegistry::new(),
            ring: SnapshotRing::new(0),
            sink: Box::new(NullSink),
        }
    }

    /// Enabled telemetry that counts and snapshots but emits no lines.
    pub fn null() -> Self {
        Self::with_sink(Box::new(NullSink))
    }

    /// Enabled telemetry streaming events to `sink`.
    pub fn with_sink(sink: Box<dyn EventSink>) -> Self {
        Telemetry {
            enabled: true,
            registry: MetricRegistry::new(),
            ring: SnapshotRing::new(DEFAULT_RING_CAPACITY),
            sink,
        }
    }

    /// Whether this telemetry records anything at all.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Emits a structured event (no-op when disabled; serialization is
    /// skipped when the sink discards lines).
    pub fn event(&mut self, t_ps: u64, kind: EventKind) {
        if !self.enabled || !self.sink.wants_lines() {
            return;
        }
        let line = Event::new(t_ps, kind).to_jsonl();
        self.sink.emit(&line);
    }

    /// Records an epoch snapshot: pushes it into the ring and streams it to
    /// the sink as an [`EventKind::Epoch`] line.
    pub fn snapshot(&mut self, snap: EpochSnapshot) {
        if !self.enabled {
            return;
        }
        if self.sink.wants_lines() {
            let line = Event::new(snap.t_ps, EventKind::Epoch(snap.clone())).to_jsonl();
            self.sink.emit(&line);
        }
        self.ring.push(snap);
    }

    /// Flushes the sink.
    pub fn flush(&mut self) {
        self.sink.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_telemetry_emits_nothing() {
        let mut tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        tel.event(0, EventKind::MetaMissBurst { len: 99 });
        tel.snapshot(EpochSnapshot::empty(0, 0));
        assert_eq!(tel.ring.total_pushed(), 0);
    }

    #[test]
    fn null_telemetry_snapshots_without_lines() {
        let mut tel = Telemetry::null();
        tel.snapshot(EpochSnapshot::empty(3, 300));
        assert_eq!(tel.ring.total_pushed(), 1);
        assert_eq!(tel.ring.latest().unwrap().epoch, 3);
    }

    #[test]
    fn sink_receives_events_and_snapshots() {
        let sink = MemorySink::new();
        let lines = sink.handle();
        let mut tel = Telemetry::with_sink(Box::new(sink));
        tel.event(
            5,
            EventKind::RemapSwap {
                page_a: 1,
                page_b: 2,
                pod: None,
            },
        );
        tel.snapshot(EpochSnapshot::empty(1, 100));
        tel.flush();
        let lines = lines.lock().unwrap();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("RemapSwap"));
        assert!(lines[1].contains("Epoch"));
    }
}
