//! Epoch-resolution telemetry for the MemPod suite.
//!
//! The paper's claims are temporal — per-epoch hot-set churn (§3),
//! migration traffic over time, epoch-boundary remap activity — so the
//! simulator needs more than end-of-run aggregates. This crate provides
//! the three observability primitives the rest of the workspace wires in:
//!
//! * a [`MetricRegistry`] of counters/gauges/[`Log2Histogram`]s with cheap
//!   pre-registered index handles (no hashing on the record path);
//! * [`EpochSnapshot`]s — derived per-epoch metrics pushed into a bounded
//!   [`SnapshotRing`] and streamed to the sink;
//! * structured [`Event`]s (migration start/complete, remap swaps,
//!   meta-cache miss bursts, refresh stalls, queue-depth high-water marks,
//!   runner job progress) serialized as JSONL through a pluggable
//!   [`EventSink`] ([`NullSink`] / [`FileSink`] / [`MemorySink`] /
//!   [`TeeSink`], plus the Perfetto-loadable [`ChromeTraceSink`]);
//! * deterministic causal [`span`]s ([`SpanRecord`]) over request service,
//!   migration lifecycles and shard batches, sampled by a pure hash of
//!   their stable identities ([`SpanConfig`]).
//!
//! The design is *pull-based*: producers keep cheap cumulative counters and
//! the epoch driver in `mempod-sim` diffs them at epoch boundaries, so the
//! per-access hot path pays nothing beyond the counters it already
//! maintained. With the default [`NullSink`], events are not even
//! serialized ([`EventSink::wants_lines`]), which is what keeps the
//! measured overhead on `bench_sched --smoke` under 2 %.
//!
//! # Examples
//!
//! ```
//! use mempod_telemetry::{EventKind, MemorySink, Telemetry};
//!
//! let sink = MemorySink::new();
//! let lines = sink.handle();
//! let mut tel = Telemetry::with_sink(Box::new(sink));
//! tel.event(1_000, EventKind::MetaMissBurst { len: 12 });
//! tel.flush();
//! assert_eq!(lines.lock().unwrap().len(), 1);
//! ```

mod chrome;
mod event;
mod metrics;
mod phase;
mod ring;
mod sink;
pub mod span;

pub use chrome::ChromeTraceSink;
pub use event::{Event, EventKind};
pub use metrics::{CounterId, GaugeId, HistogramId, Log2Histogram, MetricRegistry, LOG2_BUCKETS};
pub use phase::PhaseClock;
pub use ring::{EpochSnapshot, SnapshotRing};
pub use sink::{DiscardSink, EventSink, FileSink, MemorySink, NullSink, TeeSink};
pub use span::{SpanConfig, SpanName, SpanRecord, SPAN_NONE};

/// Default number of epoch snapshots retained in memory.
pub const DEFAULT_RING_CAPACITY: usize = 1024;

/// The facade a producer holds: registry + ring + sink behind one enabled
/// flag.
///
/// A disabled `Telemetry` ([`Telemetry::disabled`]) makes every emit a
/// branch on a bool; an enabled one with a [`NullSink`] still skips event
/// serialization. Snapshots are always pushed into the ring when enabled so
/// programmatic consumers (`SimReport::timeline`) work without a sink.
#[derive(Debug)]
pub struct Telemetry {
    enabled: bool,
    /// Pre-registered metrics.
    pub registry: MetricRegistry,
    /// Recent epoch snapshots.
    pub ring: SnapshotRing,
    sink: Box<dyn EventSink>,
    /// Causal span tracing, if switched on ([`Telemetry::with_spans`]).
    spans: Option<SpanConfig>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::disabled()
    }
}

impl Telemetry {
    /// Telemetry that records nothing (the zero-cost default).
    pub fn disabled() -> Self {
        Telemetry {
            enabled: false,
            registry: MetricRegistry::new(),
            ring: SnapshotRing::new(0),
            sink: Box::new(NullSink),
            spans: None,
        }
    }

    /// Enabled telemetry that counts and snapshots but emits no lines.
    pub fn null() -> Self {
        Self::with_sink(Box::new(NullSink))
    }

    /// Enabled telemetry streaming events to `sink`.
    pub fn with_sink(sink: Box<dyn EventSink>) -> Self {
        Telemetry {
            enabled: true,
            registry: MetricRegistry::new(),
            ring: SnapshotRing::new(DEFAULT_RING_CAPACITY),
            sink,
            spans: None,
        }
    }

    /// Switches span tracing on with `cfg` (builder-style).
    #[must_use]
    pub fn with_spans(mut self, cfg: SpanConfig) -> Self {
        self.spans = Some(cfg);
        self
    }

    /// The active span configuration: `None` when span tracing is off or
    /// this telemetry records nothing. Producers fetch this once per run
    /// and derive every sampling decision from it.
    pub fn span_config(&self) -> Option<SpanConfig> {
        if self.wants_events() {
            self.spans
        } else {
            None
        }
    }

    /// Whether this telemetry records anything at all.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Whether [`event`](Telemetry::event) actually records anything:
    /// enabled *and* the sink keeps lines. Sharded producers use this to
    /// skip buffering events that a barrier-time merge would only discard.
    #[inline]
    pub fn wants_events(&self) -> bool {
        self.enabled && self.sink.wants_lines()
    }

    /// Emits a structured event (no-op when disabled; serialization is
    /// skipped when the sink discards lines).
    pub fn event(&mut self, t_ps: u64, kind: EventKind) {
        if !self.wants_events() {
            return;
        }
        let ev = Event::new(t_ps, kind);
        self.sink.emit_event(&ev);
    }

    /// Emits a completed span as an [`EventKind::Span`] event, timestamped
    /// at its end. Records whose id is [`SPAN_NONE`] are unsampled markers
    /// and are dropped here — this is the single gate the audit rule
    /// `unsampled-span` forces tick-phase emitters through.
    pub fn emit_span(&mut self, rec: SpanRecord) {
        if rec.id == SPAN_NONE {
            return;
        }
        self.event(rec.end_ps, EventKind::Span(rec));
    }

    /// Drains per-shard event buffers (indexed by shard id) and emits them
    /// merged in timestamp-then-shard-id order; ties beyond that keep each
    /// shard's own emission order (the sort is stable). This is the
    /// deterministic barrier-time merge of the sharded event loop: the
    /// resulting stream depends only on simulated time and the shard map,
    /// never on thread scheduling. Buffers are cleared even when the sink
    /// discards lines.
    pub fn emit_merged(&mut self, shard_events: &mut [Vec<(u64, EventKind)>]) {
        if !self.wants_events() {
            for buf in shard_events.iter_mut() {
                buf.clear();
            }
            return;
        }
        let mut all: Vec<(u64, usize, EventKind)> = Vec::new();
        for (shard, buf) in shard_events.iter_mut().enumerate() {
            all.extend(buf.drain(..).map(|(t, kind)| (t, shard, kind)));
        }
        all.sort_by_key(|&(t, shard, _)| (t, shard));
        for (t, _, kind) in all {
            self.event(t, kind);
        }
    }

    /// Records an epoch snapshot: pushes it into the ring and streams it to
    /// the sink as an [`EventKind::Epoch`] line.
    pub fn snapshot(&mut self, snap: EpochSnapshot) {
        if !self.enabled {
            return;
        }
        if self.sink.wants_lines() {
            let ev = Event::new(snap.t_ps, EventKind::Epoch(snap.clone()));
            self.sink.emit_event(&ev);
        }
        self.ring.push(snap);
    }

    /// Flushes the sink.
    pub fn flush(&mut self) {
        self.sink.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_telemetry_emits_nothing() {
        let mut tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        tel.event(0, EventKind::MetaMissBurst { len: 99 });
        tel.snapshot(EpochSnapshot::empty(0, 0));
        assert_eq!(tel.ring.total_pushed(), 0);
    }

    #[test]
    fn null_telemetry_snapshots_without_lines() {
        let mut tel = Telemetry::null();
        tel.snapshot(EpochSnapshot::empty(3, 300));
        assert_eq!(tel.ring.total_pushed(), 1);
        assert_eq!(tel.ring.latest().unwrap().epoch, 3);
    }

    #[test]
    fn merged_emission_orders_by_time_then_shard() {
        let sink = MemorySink::new();
        let lines = sink.handle();
        let mut tel = Telemetry::with_sink(Box::new(sink));
        let mut buffers = vec![
            vec![
                (30, EventKind::MetaMissBurst { len: 1 }),
                (10, EventKind::MetaMissBurst { len: 2 }),
            ],
            vec![
                (10, EventKind::MetaMissBurst { len: 3 }),
                (20, EventKind::MetaMissBurst { len: 4 }),
            ],
        ];
        tel.emit_merged(&mut buffers);
        assert!(buffers.iter().all(Vec::is_empty));
        let lines = lines.lock().unwrap();
        let lens: Vec<u64> = lines
            .iter()
            .map(|l| {
                let v: serde_json::Value = serde_json::from_str(l).expect("json");
                v["kind"]["MetaMissBurst"]["len"].as_u64().expect("len")
            })
            .collect();
        // t=10 shard 0 before t=10 shard 1, then t=20, then t=30.
        assert_eq!(lens, vec![2, 3, 4, 1]);
    }

    #[test]
    fn merged_emission_clears_buffers_even_without_a_sink() {
        let mut tel = Telemetry::null();
        assert!(!tel.wants_events());
        let mut buffers = vec![vec![(5, EventKind::MetaMissBurst { len: 9 })]];
        tel.emit_merged(&mut buffers);
        assert!(buffers[0].is_empty());
    }

    #[test]
    fn emit_span_drops_unsampled_markers_and_stamps_end_time() {
        let sink = MemorySink::new();
        let lines = sink.handle();
        let mut tel = Telemetry::with_sink(Box::new(sink)).with_spans(SpanConfig::full());
        assert_eq!(tel.span_config(), Some(SpanConfig::full()));
        let mut rec = SpanRecord {
            id: span::request_span_id(3, 0, 10),
            parent: SPAN_NONE,
            name: SpanName::Request,
            start_ps: 10,
            end_ps: 40,
            pod: None,
            frame: 3,
            shard: 0,
            aux: 0,
        };
        tel.emit_span(rec);
        rec.id = SPAN_NONE;
        tel.emit_span(rec); // unsampled: dropped
        let lines = lines.lock().unwrap();
        assert_eq!(lines.len(), 1);
        let v: serde_json::Value = serde_json::from_str(&lines[0]).expect("json");
        assert_eq!(v["t_ps"].as_u64(), Some(40));
        assert!(lines[0].contains("Span"));
    }

    #[test]
    fn span_config_is_hidden_when_nothing_records() {
        let tel = Telemetry::null().with_spans(SpanConfig::full());
        assert_eq!(tel.span_config(), None); // null sink discards lines
        let tel = Telemetry::disabled().with_spans(SpanConfig::full());
        assert_eq!(tel.span_config(), None);
    }

    #[test]
    fn sink_receives_events_and_snapshots() {
        let sink = MemorySink::new();
        let lines = sink.handle();
        let mut tel = Telemetry::with_sink(Box::new(sink));
        tel.event(
            5,
            EventKind::RemapSwap {
                page_a: 1,
                page_b: 2,
                pod: None,
                frame_a: 1,
                frame_b: 2,
                hotness: 0,
            },
        );
        tel.snapshot(EpochSnapshot::empty(1, 100));
        tel.flush();
        let lines = lines.lock().unwrap();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("RemapSwap"));
        assert!(lines[1].contains("Epoch"));
    }
}
