//! Causal spans: deterministic, allocation-light trace intervals.
//!
//! A span is a `[start_ps, end_ps]` window of *simulated* time with a
//! stable 64-bit identity. Identities are derived by mixing the event's
//! own coordinates (frame pair, page, arrival time, shard, batch index) —
//! never a wall clock, never an allocation-order counter — so a traced run
//! emits the exact same span stream across 1/2/4/8 shards and replays.
//! The same derivation doubles as the sampling hash: whether a request is
//! traced is a pure function of its span id, decided once at admission.
//!
//! Two span domains share [`SpanRecord`]:
//!
//! * **Causal** spans (request service, migration lifecycles) describe the
//!   simulated machine. They always carry `shard == 0` so the stream is
//!   independent of how the simulation happens to be partitioned — the
//!   differential determinism tests compare these byte-for-byte.
//! * **Execution** spans ([`SpanName::ShardBatch`], [`SpanName::Barrier`])
//!   describe the harness itself: which shard ran which batch window.
//!   They are inherently per-shard-count and are only emitted when
//!   [`SpanConfig::exec_spans`] is set; differential tests exclude them.

use serde::{Deserialize, Serialize};

/// Sampling denominator: parts-per-million.
pub const PPM_SCALE: u32 = 1_000_000;

/// Reserved span id meaning "not sampled / no parent". Emitters drop
/// records whose id is 0, so the unsampled marker can flow through the
/// same `u64` fields the sampled path uses.
pub const SPAN_NONE: u64 = 0;

/// SplitMix64 finalizer: a cheap, high-quality 64-bit mixer. Identical to
/// the one `mempod-faults` uses for fault decisions (duplicated here so
/// telemetry keeps its zero-dependency footprint).
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Domain tags keep the id spaces of unrelated span kinds disjoint even
/// when their coordinates collide (a request at t and a batch index with
/// the same bits must not alias).
const TAG_REQUEST: u64 = 0x52_45_51; // "REQ"
const TAG_MIGRATION: u64 = 0x4d_49_47; // "MIG"
const TAG_EXEC: u64 = 0x45_58_45; // "EXE"

/// Folds a zero id onto a fixed non-zero constant so every derivation is
/// guaranteed to produce a valid (non-[`SPAN_NONE`]) identity.
#[inline]
fn nonzero(id: u64) -> u64 {
    if id == SPAN_NONE {
        0x6d65_6d70_6f64_5350 // "mempodSP"
    } else {
        id
    }
}

/// Identity of a request-service span: the request's page, line offset and
/// arrival time name it uniquely within a run.
#[inline]
pub fn request_span_id(page: u64, line: u64, arrival_ps: u64) -> u64 {
    nonzero(mix64(
        mix64(TAG_REQUEST ^ mix64(page)) ^ mix64(line).rotate_left(17) ^ arrival_ps,
    ))
}

/// Identity of a migration-lifecycle span: the swapped frame pair and the
/// simulated decision time name the lifecycle.
#[inline]
pub fn migration_span_id(frame_a: u64, frame_b: u64, decide_ps: u64) -> u64 {
    nonzero(mix64(
        mix64(TAG_MIGRATION ^ mix64(frame_a)) ^ mix64(frame_b).rotate_left(23) ^ decide_ps,
    ))
}

/// Identity of the `seq`-th child of `parent` (queue/schedule/service
/// phases under a request, attempts under a migration).
#[inline]
pub fn child_span_id(parent: u64, seq: u64) -> u64 {
    nonzero(mix64(parent ^ mix64(seq).rotate_left(11)))
}

/// Identity of an execution span: shard id and batch ordinal.
#[inline]
pub fn exec_span_id(shard: u64, batch: u64) -> u64 {
    nonzero(mix64(mix64(TAG_EXEC ^ shard) ^ mix64(batch).rotate_left(7)))
}

/// What interval a span describes. Unit variants serialize as bare JSON
/// strings, keeping span lines compact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanName {
    /// Whole request service: admission to completion (root).
    Request,
    /// Admission gating: arrival to issue into the channel queues (child
    /// of [`SpanName::Request`]; only emitted when the gate delayed the
    /// request, i.e. issue > arrival).
    Gate,
    /// Channel queue + DRAM service: issue to completion (child of
    /// [`SpanName::Request`]).
    Service,
    /// Metadata (remap-table) fetch the request waited on before issuing
    /// (child of [`SpanName::Request`]).
    MetaFetch,
    /// Whole committed migration lifecycle: decision to last write-back
    /// (root).
    Migration,
    /// Whole abandoned migration lifecycle: decision to rollback (root).
    MigrationAborted,
    /// One copy attempt inside a migration: launch to completion or abort
    /// (child of the lifecycle root; `aux` holds the 1-based attempt).
    MigrationAttempt,
    /// Simulated backoff between an aborted attempt and its retry (child
    /// of the lifecycle root; `aux` holds the attempt being backed off).
    MigrationBackoff,
    /// One shard worker's batch window in simulated time (`aux` holds the
    /// work items pumped). Execution domain.
    ShardBatch,
    /// An epoch barrier crossing observed by the merge step (`aux` holds
    /// the batch ordinal). Execution domain.
    Barrier,
}

impl SpanName {
    /// The name's serialized form — identical to its serde string, used by
    /// the hand-rolled span serializer and the Chrome exporter so span
    /// lines never pay the `Debug`-format allocation.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanName::Request => "Request",
            SpanName::Gate => "Gate",
            SpanName::Service => "Service",
            SpanName::MetaFetch => "MetaFetch",
            SpanName::Migration => "Migration",
            SpanName::MigrationAborted => "MigrationAborted",
            SpanName::MigrationAttempt => "MigrationAttempt",
            SpanName::MigrationBackoff => "MigrationBackoff",
            SpanName::ShardBatch => "ShardBatch",
            SpanName::Barrier => "Barrier",
        }
    }
}

/// One completed span. `Copy` and fixed-size on purpose: spans ride the
/// same per-shard `(t, EventKind)` buffers ordinary events use, so they
/// must stay cheap to move and free of allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Deterministic span identity ([`request_span_id`] and friends);
    /// never [`SPAN_NONE`] in an emitted record.
    pub id: u64,
    /// Parent span id, or [`SPAN_NONE`] for roots.
    pub parent: u64,
    /// What the interval describes.
    pub name: SpanName,
    /// Interval start, simulated picoseconds.
    pub start_ps: u64,
    /// Interval end, simulated picoseconds (`>= start_ps`).
    pub end_ps: u64,
    /// Pod involved, if the manager is pod-clustered.
    pub pod: Option<u32>,
    /// Anchor frame/page coordinate: the request's frame for request
    /// spans, `frame_a` for migration spans, 0 for execution spans.
    pub frame: u64,
    /// Shard that emitted the span. Always 0 for causal spans (the stream
    /// must not depend on the shard count); the real worker index for
    /// execution spans.
    pub shard: u32,
    /// Name-specific payload: attempt number, work-item count, … (see
    /// [`SpanName`]).
    pub aux: u64,
}

impl SpanRecord {
    /// Interval length in picoseconds (saturating, so a malformed record
    /// reads as zero rather than wrapping).
    pub fn dur_ps(&self) -> u64 {
        self.end_ps.saturating_sub(self.start_ps)
    }
}

/// Span-tracing configuration: what gets sampled and which domains emit.
///
/// The zero value ([`SpanConfig::default`]) samples 1 % of requests and
/// keeps execution spans off — the always-safe setting the overhead gate
/// measures. Migration lifecycles are *always* traced when spans are
/// enabled: they are rare, and they are the events the provenance ledger
/// and `tracelens` exist for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanConfig {
    /// Requests sampled per million (0 disables request spans entirely;
    /// [`PPM_SCALE`] traces every request).
    pub request_sample_ppm: u32,
    /// Emit execution-domain spans (per-shard batch windows and barrier
    /// crossings). Off by default: they are shard-count-dependent.
    pub exec_spans: bool,
}

impl Default for SpanConfig {
    fn default() -> Self {
        SpanConfig {
            request_sample_ppm: 10_000, // 1 %
            exec_spans: false,
        }
    }
}

impl SpanConfig {
    /// Traces every request (differential tests; small runs).
    pub fn full() -> Self {
        SpanConfig {
            request_sample_ppm: PPM_SCALE,
            exec_spans: false,
        }
    }

    /// Whether the request owning `span_id` is sampled. Pure function of
    /// the id, so every shard (and the sequential reference) agrees
    /// without coordination.
    #[inline]
    pub fn sample_request(&self, span_id: u64) -> bool {
        match self.request_sample_ppm {
            0 => false,
            p if p >= PPM_SCALE => true,
            p => mix64(span_id) % u64::from(PPM_SCALE) < u64::from(p),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_ids_are_stable_and_nonzero() {
        let a = request_span_id(7, 3, 1_000);
        assert_eq!(a, request_span_id(7, 3, 1_000));
        assert_ne!(a, SPAN_NONE);
        assert_ne!(a, request_span_id(7, 3, 1_001));
        assert_ne!(a, migration_span_id(7, 3, 1_000));
        assert_ne!(exec_span_id(0, 0), SPAN_NONE);
        assert_ne!(child_span_id(a, 0), child_span_id(a, 1));
    }

    #[test]
    fn id_domains_do_not_alias_on_equal_coordinates() {
        for t in [0u64, 1, 4096, u64::MAX / 2] {
            assert_ne!(request_span_id(5, 0, t), migration_span_id(5, 0, t));
            assert_ne!(migration_span_id(5, 0, t), exec_span_id(5, t));
        }
    }

    #[test]
    fn sampling_is_a_pure_function_of_the_id() {
        let cfg = SpanConfig {
            request_sample_ppm: 250_000,
            exec_spans: false,
        };
        let ids: Vec<u64> = (0..10_000u64)
            .map(|i| request_span_id(i, i % 32, i * 17))
            .collect();
        let first: Vec<bool> = ids.iter().map(|&id| cfg.sample_request(id)).collect();
        let second: Vec<bool> = ids.iter().map(|&id| cfg.sample_request(id)).collect();
        assert_eq!(first, second);
        let hits = first.iter().filter(|&&s| s).count();
        // 25 % nominal; allow generous slack for the 10k sample.
        assert!((1_500..=3_500).contains(&hits), "{hits}");
    }

    #[test]
    fn sampling_extremes_are_exact() {
        let all = SpanConfig::full();
        let none = SpanConfig {
            request_sample_ppm: 0,
            exec_spans: false,
        };
        for i in 0..100u64 {
            let id = request_span_id(i, 0, i);
            assert!(all.sample_request(id));
            assert!(!none.sample_request(id));
        }
    }

    #[test]
    fn span_records_round_trip_through_the_value_model() {
        let rec = SpanRecord {
            id: request_span_id(1, 2, 3),
            parent: SPAN_NONE,
            name: SpanName::Request,
            start_ps: 100,
            end_ps: 250,
            pod: Some(4),
            frame: 99,
            shard: 0,
            aux: 0,
        };
        let back = SpanRecord::deserialize(&rec.to_value()).expect("round trip");
        assert_eq!(back, rec);
        assert_eq!(rec.dur_ps(), 150);
    }
}
