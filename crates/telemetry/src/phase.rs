//! Wall-clock phase accounting for the sharded event loop.
//!
//! The sharded simulator alternates a sequential *admission* phase (the
//! main thread walking the trace) with parallel *shard* phases separated
//! by barriers. On a machine with fewer cores than shards the wall clock
//! cannot show the available parallelism, so the clock also accumulates
//! the *critical path*: admission time plus, per barrier interval, the
//! busiest single shard. `critical path / wall` of a one-shard run gives
//! the speedup an adequately provisioned machine would observe.
//!
//! All counters are wall-clock nanoseconds and strictly observability:
//! nothing simulated ever reads them.

use mempod_sync::atomic::{AtomicU64, Ordering};

/// Shared accounting for one run's phases (attach via `Arc`).
///
/// Writers are the simulator main thread only — per-shard busy times are
/// measured inside the workers but *recorded* after the barrier join — so
/// relaxed ordering is sufficient everywhere.
#[derive(Debug)]
pub struct PhaseClock {
    /// Sequential admission + bookkeeping time on the main thread.
    admission_ns: AtomicU64,
    /// Sum over barrier intervals of the busiest shard's busy time.
    critical_ns: AtomicU64,
    /// Barrier intervals recorded.
    barriers: AtomicU64,
    /// Total busy time per shard.
    busy_ns: Vec<AtomicU64>,
}

impl PhaseClock {
    /// A zeroed clock for a run with `shards` shards.
    pub fn new(shards: usize) -> Self {
        PhaseClock {
            admission_ns: AtomicU64::new(0),
            critical_ns: AtomicU64::new(0),
            barriers: AtomicU64::new(0),
            busy_ns: (0..shards).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Adds sequential admission time.
    pub fn record_admission(&self, ns: u64) {
        self.admission_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Records one barrier interval: each shard's busy time for the
    /// interval, indexed by shard id. The busiest shard extends the
    /// critical path.
    pub fn record_interval(&self, shard_busy_ns: &[u64]) {
        for (slot, &ns) in self.busy_ns.iter().zip(shard_busy_ns) {
            slot.fetch_add(ns, Ordering::Relaxed);
        }
        let max = shard_busy_ns.iter().copied().max().unwrap_or(0);
        self.critical_ns.fetch_add(max, Ordering::Relaxed);
        self.barriers.fetch_add(1, Ordering::Relaxed);
    }

    /// Sequential admission nanoseconds so far.
    pub fn admission_ns(&self) -> u64 {
        self.admission_ns.load(Ordering::Relaxed)
    }

    /// Critical-path nanoseconds so far: admission plus the per-interval
    /// maxima of the shard busy times.
    pub fn critical_path_ns(&self) -> u64 {
        self.admission_ns() + self.critical_ns.load(Ordering::Relaxed)
    }

    /// Barrier intervals recorded.
    pub fn barriers(&self) -> u64 {
        self.barriers.load(Ordering::Relaxed)
    }

    /// Total busy nanoseconds per shard.
    pub fn shard_busy_ns(&self) -> Vec<u64> {
        self.busy_ns
            .iter()
            .map(|slot| slot.load(Ordering::Relaxed))
            .collect()
    }

    /// Shards this clock was sized for.
    pub fn shards(&self) -> usize {
        self.busy_ns.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn critical_path_takes_the_busiest_shard_per_interval() {
        let clock = PhaseClock::new(3);
        clock.record_admission(100);
        clock.record_interval(&[10, 40, 20]);
        clock.record_interval(&[30, 5, 25]);
        clock.record_admission(50);
        assert_eq!(clock.admission_ns(), 150);
        assert_eq!(clock.critical_path_ns(), 150 + 40 + 30);
        assert_eq!(clock.barriers(), 2);
        assert_eq!(clock.shard_busy_ns(), vec![40, 45, 45]);
        assert_eq!(clock.shards(), 3);
    }

    #[test]
    fn empty_interval_extends_nothing() {
        let clock = PhaseClock::new(2);
        clock.record_interval(&[]);
        assert_eq!(clock.critical_path_ns(), 0);
        assert_eq!(clock.barriers(), 1);
    }
}
