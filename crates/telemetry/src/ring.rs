//! Per-epoch snapshots and the bounded ring that retains the most recent
//! ones in memory (the full series streams to the event sink as JSONL).

use std::collections::{HashMap, VecDeque};

use serde::{Deserialize, Serialize};

/// One epoch's worth of derived metrics.
///
/// Cumulative fields carry their value *as of the epoch boundary*; `_delta`
/// fields cover the window since the previous snapshot (which spans several
/// epochs when the trace was idle — see [`EpochSnapshot::epochs_elapsed`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochSnapshot {
    /// Epoch index at this boundary (`floor(t / epoch_len)`).
    pub epoch: u64,
    /// Boundary simulated time, picoseconds.
    pub t_ps: u64,
    /// Epoch boundaries covered by this snapshot (1 in steady state; >1
    /// after an idle gap in the trace).
    pub epochs_elapsed: u64,
    /// Foreground requests admitted so far (cumulative).
    pub requests: u64,
    /// Foreground requests admitted in this window.
    pub requests_delta: u64,
    /// AMMAT over the run so far, picoseconds (`None` before any request
    /// has completed).
    pub ammat_ps_so_far: Option<f64>,
    /// Migrations triggered so far (cumulative).
    pub migrations: u64,
    /// Migrations triggered in this window.
    pub migrations_delta: u64,
    /// Bytes queued for movement in this window.
    pub bytes_moved_delta: u64,
    /// Per-pod bytes moved in this window (empty for non-clustered
    /// managers).
    pub per_pod_bytes_delta: Vec<u64>,
    /// Requests serviced by the fast tier in this window.
    pub fast_requests_delta: u64,
    /// Requests serviced by the slow tier in this window.
    pub slow_requests_delta: u64,
    /// Fast-tier share of serviced requests in this window.
    pub fast_service_fraction: Option<f64>,
    /// Row-buffer hit rate across all channels in this window.
    pub row_hit_rate: Option<f64>,
    /// Queue-depth p50 across scheduling decisions in this window.
    pub queue_depth_p50: Option<u64>,
    /// Queue-depth p99 across scheduling decisions in this window.
    pub queue_depth_p99: Option<u64>,
    /// Largest queue depth observed in this window.
    pub queue_depth_max: Option<u64>,
    /// All-bank refreshes booked in this window.
    pub refreshes_delta: u64,
    /// Metadata-cache misses (injected metadata fetches) in this window.
    pub meta_miss_delta: u64,
    /// Manager-specific per-window deltas (e.g. `mea.evictions`,
    /// `mempod.epochs`): the manager's cumulative
    /// `MemoryManager::telemetry_counters` diffed against the previous
    /// poll, matched by counter name.
    pub manager: HashMap<String, u64>,
}

impl EpochSnapshot {
    /// An all-zero snapshot for epoch `epoch` at time `t_ps`.
    pub fn empty(epoch: u64, t_ps: u64) -> Self {
        EpochSnapshot {
            epoch,
            t_ps,
            epochs_elapsed: 1,
            requests: 0,
            requests_delta: 0,
            ammat_ps_so_far: None,
            migrations: 0,
            migrations_delta: 0,
            bytes_moved_delta: 0,
            per_pod_bytes_delta: Vec::new(),
            fast_requests_delta: 0,
            slow_requests_delta: 0,
            fast_service_fraction: None,
            row_hit_rate: None,
            queue_depth_p50: None,
            queue_depth_p99: None,
            queue_depth_max: None,
            refreshes_delta: 0,
            meta_miss_delta: 0,
            manager: HashMap::new(),
        }
    }
}

/// A bounded ring of the most recent [`EpochSnapshot`]s.
///
/// # Examples
///
/// ```
/// use mempod_telemetry::{EpochSnapshot, SnapshotRing};
///
/// let mut ring = SnapshotRing::new(2);
/// for e in 0..5 {
///     ring.push(EpochSnapshot::empty(e, e * 100));
/// }
/// assert_eq!(ring.len(), 2);
/// assert_eq!(ring.total_pushed(), 5);
/// assert_eq!(ring.latest().unwrap().epoch, 4);
/// assert_eq!(ring.iter().next().unwrap().epoch, 3); // oldest retained
/// ```
#[derive(Debug, Clone, Default)]
pub struct SnapshotRing {
    cap: usize,
    buf: VecDeque<EpochSnapshot>,
    total: u64,
}

impl SnapshotRing {
    /// A ring retaining at most `cap` snapshots (`cap == 0` retains none,
    /// but still counts pushes).
    pub fn new(cap: usize) -> Self {
        SnapshotRing {
            cap,
            buf: VecDeque::with_capacity(cap.min(4096)),
            total: 0,
        }
    }

    /// Appends a snapshot, evicting the oldest when full.
    pub fn push(&mut self, snap: EpochSnapshot) {
        self.total += 1;
        if self.cap == 0 {
            return;
        }
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back(snap);
    }

    /// Retained snapshots, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &EpochSnapshot> {
        self.buf.iter()
    }

    /// Number of retained snapshots.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Retention capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Total snapshots ever pushed (including evicted ones).
    pub fn total_pushed(&self) -> u64 {
        self.total
    }

    /// The most recent snapshot, if any.
    pub fn latest(&self) -> Option<&EpochSnapshot> {
        self.buf.back()
    }

    /// Drains the retained snapshots, oldest first.
    pub fn drain(&mut self) -> Vec<EpochSnapshot> {
        self.buf.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraparound_keeps_newest() {
        let mut ring = SnapshotRing::new(3);
        for e in 0..10u64 {
            ring.push(EpochSnapshot::empty(e, e));
        }
        let kept: Vec<u64> = ring.iter().map(|s| s.epoch).collect();
        assert_eq!(kept, vec![7, 8, 9]);
        assert_eq!(ring.total_pushed(), 10);
        assert_eq!(ring.capacity(), 3);
    }

    #[test]
    fn zero_capacity_counts_without_retaining() {
        let mut ring = SnapshotRing::new(0);
        ring.push(EpochSnapshot::empty(0, 0));
        assert!(ring.is_empty());
        assert_eq!(ring.total_pushed(), 1);
        assert!(ring.latest().is_none());
    }

    #[test]
    fn drain_empties_in_order() {
        let mut ring = SnapshotRing::new(4);
        for e in 0..4u64 {
            ring.push(EpochSnapshot::empty(e, e));
        }
        let drained = ring.drain();
        assert_eq!(drained.len(), 4);
        assert!(ring.is_empty());
        assert_eq!(drained[0].epoch, 0);
        assert_eq!(drained[3].epoch, 3);
    }
}
