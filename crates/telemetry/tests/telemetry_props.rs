//! Property tests for the telemetry primitives: histogram percentile
//! bounds under arbitrary samples, snapshot-ring wraparound, and JSONL
//! round-trips through the vendored serde shims.
//!
//! The vendored proptest shim supports range strategies only, so
//! collection-shaped inputs are derived from a sampled seed with a
//! splitmix-style generator (the same idiom as `remap_props.rs` in
//! `mempod-core`).

use std::collections::HashMap;

use mempod_telemetry::{
    EpochSnapshot, Event, EventKind, Log2Histogram, MemorySink, SnapshotRing, Telemetry,
    DEFAULT_RING_CAPACITY,
};
use proptest::prelude::*;
use serde::Deserialize as _;

/// Xorshift step for deriving an unbounded value stream from one seed.
fn next(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    *x
}

/// `n` samples spanning the full u64 range (xorshift output is uniform
/// over non-zero u64), derived from `seed`.
fn samples_from(seed: u64, n: usize) -> Vec<u64> {
    let mut x = seed;
    (0..n).map(|_| next(&mut x)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// For any non-empty sample set, percentiles are ordered and bounded:
    /// min <= p50 <= p99 <= max, and every quantile answer is clamped into
    /// the observed [min, max] range.
    #[test]
    fn histogram_percentiles_are_ordered_and_bounded(
        seed in 1u64..u64::MAX,
        n in 1usize..2000,
        shift in 0u32..40,
    ) {
        // Shifting narrows the dynamic range so small-spread and
        // wide-spread sample sets are both exercised.
        let samples: Vec<u64> =
            samples_from(seed, n).into_iter().map(|v| v >> shift).collect();
        let mut h = Log2Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let lo = *samples.iter().min().expect("non-empty");
        let hi = *samples.iter().max().expect("non-empty");
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.min(), Some(lo));
        prop_assert_eq!(h.max(), Some(hi));
        let p50 = h.value_at_quantile(0.50).expect("non-empty");
        let p99 = h.value_at_quantile(0.99).expect("non-empty");
        prop_assert!(lo <= p50, "min {} > p50 {}", lo, p50);
        prop_assert!(p50 <= p99, "p50 {} > p99 {}", p50, p99);
        prop_assert!(p99 <= hi, "p99 {} > max {}", p99, hi);
        // Quantiles are monotone in q.
        let mut prev = h.value_at_quantile(0.0).expect("non-empty");
        for q in [0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = h.value_at_quantile(q).expect("non-empty");
            prop_assert!(v >= prev, "quantile {} went backwards", q);
            prev = v;
        }
    }

    /// Merging two histograms adds counts, sums, and widens min/max;
    /// `diff` then recovers the merged-in window at the bucket level.
    #[test]
    fn histogram_merge_is_additive_and_diff_undoes_it(
        seed_a in 1u64..u64::MAX,
        seed_b in 1u64..u64::MAX,
        na in 1usize..300,
        nb in 1usize..300,
    ) {
        let mut ha = Log2Histogram::new();
        let mut hb = Log2Histogram::new();
        for s in samples_from(seed_a, na) { ha.record(s >> 16); }
        for s in samples_from(seed_b, nb) { hb.record(s >> 16); }
        let mut merged = ha.clone();
        merged.merge(&hb);
        prop_assert_eq!(merged.count(), ha.count() + hb.count());
        prop_assert_eq!(merged.sum(), ha.sum() + hb.sum());
        prop_assert_eq!(merged.min(), ha.min().min(hb.min()));
        prop_assert_eq!(merged.max(), ha.max().max(hb.max()));
        let window = merged.diff(&ha);
        prop_assert_eq!(window.count(), hb.count());
        prop_assert_eq!(window.sum(), hb.sum());
    }

    /// Pushing more snapshots than the ring holds keeps exactly the last
    /// `cap` of them, in order, while `total_pushed` counts everything.
    #[test]
    fn ring_wraparound_keeps_the_newest(
        cap in 1usize..64,
        pushes in 0usize..300,
    ) {
        let mut ring = SnapshotRing::new(cap);
        for i in 0..pushes {
            ring.push(EpochSnapshot::empty(i as u64, i as u64 * 50));
        }
        prop_assert_eq!(ring.total_pushed(), pushes as u64);
        prop_assert_eq!(ring.len(), pushes.min(cap));
        let kept: Vec<u64> = ring.iter().map(|s| s.epoch).collect();
        let expect: Vec<u64> =
            (pushes.saturating_sub(cap)..pushes).map(|i| i as u64).collect();
        prop_assert_eq!(kept, expect);
        if pushes > 0 {
            prop_assert_eq!(
                ring.latest().map(|s| s.epoch),
                Some(pushes as u64 - 1)
            );
        }
    }

    /// An arbitrary epoch snapshot survives a JSONL round-trip through the
    /// vendored serde_json shim bit-for-bit.
    #[test]
    fn epoch_snapshot_jsonl_round_trips(
        seed in 1u64..u64::MAX,
        epoch in 0u64..1 << 32,
        requests in 0u64..1 << 40,
        migs in 0u64..1 << 20,
        pods in 0usize..16,
        with_p50 in 0u8..2,
        frac_millis in 0u32..=1000,
        counters in 0usize..8,
    ) {
        let mut x = seed;
        let mut snap = EpochSnapshot::empty(epoch, epoch * 50_000_000);
        snap.requests = requests;
        snap.requests_delta = requests.min(977);
        snap.migrations = migs;
        snap.migrations_delta = migs.min(7);
        snap.per_pod_bytes_delta = (0..pods).map(|_| next(&mut x) >> 34).collect();
        if with_p50 == 1 {
            let p50 = next(&mut x) >> 44;
            snap.queue_depth_p50 = Some(p50);
            snap.queue_depth_p99 = Some(p50 * 2);
            snap.queue_depth_max = Some(p50 * 3);
        }
        snap.fast_service_fraction = Some(f64::from(frac_millis) / 1000.0);
        snap.ammat_ps_so_far = (requests > 0).then_some(123.5);
        let names = ["mea.evictions", "mea.insertions", "mempod.epochs",
                     "hma.intervals", "thm.counter_groups",
                     "cameo.wasted_migrations", "a.b", "c.d"];
        snap.manager = (0..counters)
            .map(|i| (names[i].to_string(), next(&mut x) >> 20))
            .collect::<HashMap<String, u64>>();

        let event = Event::new(snap.t_ps, EventKind::Epoch(snap));
        let line = event.to_jsonl();
        prop_assert!(!line.is_empty());
        prop_assert!(!line.contains('\n'));
        let value = serde_json::from_str(&line).expect("valid JSON line");
        let back = Event::deserialize(&value).expect("round trip");
        prop_assert_eq!(back, event);
    }
}

proptest! {
    // Each case wraps the snapshot ring (1024+ pushes) four times over,
    // so run fewer cases than the cheap histogram properties above.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The barrier-time merge contract, end to end: one deterministic
    /// global event stream, partitioned round-robin over 1/2/4/8 shard
    /// buffers and drained through `emit_merged` in batches — with enough
    /// snapshots interleaved between batches to wrap the ring mid-stream —
    /// always (i) drains every buffer, (ii) emits each batch sorted by
    /// `(t_ps, shard)` with per-shard emission order preserved on ties,
    /// and (iii) emits the same event multiset whatever the shard count.
    #[test]
    fn merged_emission_orders_by_time_then_shard_across_ring_wrap(
        seed in 1u64..u64::MAX,
        n in 1usize..300,
        batches in 1usize..6,
        tie_shift in 50u32..62,
    ) {
        let mut per_shard_count: Vec<Vec<(u64, u64)>> = Vec::new();
        for shards in [1usize, 2, 4, 8] {
            let sink = MemorySink::new();
            let lines = sink.handle();
            let mut tel = Telemetry::with_sink(Box::new(sink));
            // `tie_shift` collapses timestamps into a small range, so
            // equal-time events across different shards are common and the
            // shard-id tie-break is exercised rather than dodged.
            let mut x = seed;
            let mut bufs: Vec<Vec<(u64, EventKind)>> = vec![Vec::new(); shards];
            let snaps_per_batch = DEFAULT_RING_CAPACITY / batches + 1;
            let mut epoch = 0u64;
            let mut merged: Vec<(u64, u64)> = Vec::new();
            for batch in 0..batches {
                for i in 0..n {
                    let g = (batch * n + i) as u64;
                    let t = next(&mut x) >> tie_shift;
                    bufs[g as usize % shards]
                        .push((t, EventKind::MetaMissBurst { len: g }));
                }
                let before = lines.lock().expect("sink lock").len();
                tel.emit_merged(&mut bufs);
                prop_assert!(
                    bufs.iter().all(Vec::is_empty),
                    "emit_merged left events buffered"
                );
                let seg: Vec<(u64, u64)> = lines.lock().expect("sink lock")
                    [before..]
                    .iter()
                    .map(|l| {
                        let v = serde_json::from_str(l).expect("valid line");
                        let e = Event::deserialize(&v).expect("event line");
                        match e.kind {
                            EventKind::MetaMissBurst { len } => (e.t_ps, len),
                            other => panic!("unexpected kind {:?}", other),
                        }
                    })
                    .collect();
                prop_assert_eq!(seg.len(), n);
                // Sorted by (t, shard); within one (t, shard) the global
                // index rises — the stable sort keeps emission order.
                for w in seg.windows(2) {
                    let (ta, ga) = w[0];
                    let (tb, gb) = w[1];
                    let (sa, sb) = (ga as usize % shards, gb as usize % shards);
                    prop_assert!(ta <= tb, "time went backwards: {} > {}", ta, tb);
                    if ta == tb {
                        prop_assert!(
                            sa <= sb,
                            "shard tie-break violated at t={}: {} > {}", ta, sa, sb
                        );
                        if sa == sb {
                            prop_assert!(
                                ga < gb,
                                "per-shard emission order lost at t={}", ta
                            );
                        }
                    }
                }
                merged.extend(seg);
                // Wrap the ring while the event stream is mid-flight.
                for _ in 0..snaps_per_batch {
                    tel.snapshot(EpochSnapshot::empty(epoch, epoch * 50));
                    epoch += 1;
                }
            }
            prop_assert!(tel.ring.total_pushed() > DEFAULT_RING_CAPACITY as u64);
            prop_assert_eq!(tel.ring.len(), DEFAULT_RING_CAPACITY);
            prop_assert_eq!(tel.ring.latest().map(|s| s.epoch), Some(epoch - 1));
            merged.sort_unstable();
            per_shard_count.push(merged);
        }
        // The same global stream partitioned differently emits the same
        // event multiset, whatever the shard count.
        for m in &per_shard_count[1..] {
            prop_assert_eq!(m, &per_shard_count[0]);
        }
    }
}

#[test]
fn ring_drain_empties_but_remembers_total() {
    let mut ring = SnapshotRing::new(4);
    for i in 0..9 {
        ring.push(EpochSnapshot::empty(i, i * 50));
    }
    let drained = ring.drain();
    assert_eq!(drained.len(), 4);
    assert_eq!(drained[0].epoch, 5);
    assert!(ring.is_empty());
    assert_eq!(ring.total_pushed(), 9);
}
