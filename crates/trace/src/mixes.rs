//! The paper's Table 3: composition of the 12 mixed workloads.
//!
//! The table is reproduced verbatim (✓ = one copy, ✓✓ = two copies). Some
//! rows of the published table do not sum to exactly 8 benchmarks; since the
//! simulated CPU has 8 cores, [`mix_composition`] normalizes each mix
//! deterministically — flatten in row order with multiplicity, truncate to
//! 8, and if fewer than 8 are listed, cycle from the beginning. The
//! normalization is part of the reproduction's documented methodology.

use crate::profile::BenchProfile;

/// Table 3 verbatim: `(mix name, [(benchmark, copies)])`.
pub static MIXES: &[(&str, &[(&str, u8)])] = &[
    (
        "mix1",
        &[
            ("astar", 1),
            ("gcc", 1),
            ("gems", 1),
            ("lbm", 1),
            ("leslie", 1),
            ("mcf", 1),
            ("milc", 1),
            ("omnetpp", 1),
            ("zeusmp", 1),
        ],
    ),
    (
        "mix2",
        &[
            ("gcc", 1),
            ("gems", 1),
            ("leslie", 1),
            ("mcf", 1),
            ("omnetpp", 1),
            ("sphinx", 1),
            ("zeusmp", 1),
        ],
    ),
    (
        "mix3",
        &[
            ("gcc", 1),
            ("lbm", 1),
            ("leslie", 1),
            ("libquantum", 1),
            ("mcf", 1),
            ("milc", 1),
            ("sphinx", 1),
        ],
    ),
    (
        "mix4",
        &[
            ("bzip", 1),
            ("dealii", 2),
            ("gcc", 1),
            ("mcf", 2),
            ("milc", 1),
            ("soplex", 1),
        ],
    ),
    (
        "mix5",
        &[
            ("bwaves", 1),
            ("bzip", 2),
            ("cactus", 1),
            ("dealii", 2),
            ("mcf", 1),
            ("xalanc", 1),
        ],
    ),
    (
        "mix6",
        &[
            ("astar", 1),
            ("bwaves", 1),
            ("bzip", 1),
            ("gcc", 2),
            ("lbm", 1),
            ("libquantum", 1),
            ("mcf", 1),
            ("soplex", 1),
            ("zeusmp", 1),
        ],
    ),
    (
        "mix7",
        &[
            ("astar", 1),
            ("bwaves", 2),
            ("bzip", 2),
            ("dealii", 1),
            ("gems", 1),
            ("leslie", 1),
            ("soplex", 1),
            ("xalanc", 1),
        ],
    ),
    (
        "mix8",
        &[
            ("astar", 2),
            ("bwaves", 1),
            ("bzip", 1),
            ("cactus", 1),
            ("dealii", 1),
            ("omnetpp", 1),
            ("xalanc", 1),
            ("zeusmp", 1),
        ],
    ),
    (
        "mix9",
        &[
            ("bwaves", 1),
            ("dealii", 1),
            ("gems", 1),
            ("leslie", 1),
            ("sphinx", 1),
        ],
    ),
    (
        "mix10",
        &[
            ("astar", 2),
            ("gcc", 2),
            ("lbm", 1),
            ("libquantum", 2),
            ("mcf", 1),
            ("milc", 1),
            ("soplex", 1),
            ("zeusmp", 1),
        ],
    ),
    (
        "mix11",
        &[
            ("bzip", 2),
            ("gems", 1),
            ("leslie", 2),
            ("omnetpp", 1),
            ("sphinx", 1),
        ],
    ),
    (
        "mix12",
        &[("bwaves", 1), ("cactus", 2), ("dealii", 2), ("xalanc", 1)],
    ),
];

/// Names of all mixes, in order.
pub fn mix_names() -> Vec<&'static str> {
    MIXES.iter().map(|(n, _)| *n).collect()
}

/// The normalized 8-core composition of a mix, or `None` if unknown.
pub fn mix_composition(name: &str) -> Option<Vec<&'static BenchProfile>> {
    let (_, rows) = MIXES.iter().find(|(n, _)| *n == name)?;
    let mut flat: Vec<&'static BenchProfile> = Vec::new();
    for (bench, copies) in rows.iter() {
        let p = BenchProfile::by_name(bench).expect("table references known benchmarks");
        for _ in 0..*copies {
            flat.push(p);
        }
    }
    assert!(!flat.is_empty(), "table rows are never empty");
    // Normalize to exactly 8 cores: truncate or cycle.
    let mut out = Vec::with_capacity(8);
    let mut i = 0;
    while out.len() < 8 {
        out.push(flat[i % flat.len()]);
        i += 1;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_mixes_each_eight_cores() {
        assert_eq!(mix_names().len(), 12);
        for name in mix_names() {
            let comp = mix_composition(name).expect("mix exists");
            assert_eq!(comp.len(), 8, "{name}");
        }
    }

    #[test]
    fn mix4_matches_table_exactly() {
        // The one row that already sums to 8: no normalization applied.
        let names: Vec<&str> = mix_composition("mix4")
            .unwrap()
            .iter()
            .map(|p| p.name)
            .collect();
        assert_eq!(
            names,
            vec!["bzip", "dealii", "dealii", "gcc", "mcf", "mcf", "milc", "soplex"]
        );
    }

    #[test]
    fn short_mixes_cycle() {
        // mix12 lists 6 slots -> the first two repeat.
        let names: Vec<&str> = mix_composition("mix12")
            .unwrap()
            .iter()
            .map(|p| p.name)
            .collect();
        assert_eq!(
            names,
            vec!["bwaves", "cactus", "cactus", "dealii", "dealii", "xalanc", "bwaves", "cactus"]
        );
    }

    #[test]
    fn long_mixes_truncate() {
        // mix10 lists 11 slots -> only the first 8 run.
        let names: Vec<&str> = mix_composition("mix10")
            .unwrap()
            .iter()
            .map(|p| p.name)
            .collect();
        assert_eq!(
            names,
            vec![
                "astar",
                "astar",
                "gcc",
                "gcc",
                "lbm",
                "libquantum",
                "libquantum",
                "mcf"
            ]
        );
    }

    #[test]
    fn unknown_mix_is_none() {
        assert!(mix_composition("mix13").is_none());
    }

    #[test]
    fn every_table_entry_is_a_known_benchmark() {
        for (_, rows) in MIXES {
            for (bench, copies) in rows.iter() {
                assert!(BenchProfile::by_name(bench).is_some(), "{bench}");
                assert!(*copies >= 1 && *copies <= 2);
            }
        }
    }

    #[test]
    fn mix9_contains_the_papers_interesting_benchmarks() {
        // Fig. 3 singles out mix9; its composition must include bwaves and
        // gems per Table 3.
        let names: Vec<&str> = mix_composition("mix9")
            .unwrap()
            .iter()
            .map(|p| p.name)
            .collect();
        assert!(names.contains(&"bwaves"));
        assert!(names.contains(&"gems"));
    }
}
