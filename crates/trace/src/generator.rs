//! Turning [`WorkloadSpec`]s into deterministic, time-ordered traces.
//!
//! Each of the 8 cores runs one [`BenchProfile`] as an independent request
//! stream (own RNG substream, own address-space partition); the generator
//! merges the streams by arrival time, mirroring how the paper records
//! multi-programmed traces with Sniper ("memory pages are not shared").
//!
//! **Address-space partitioning.** Core *c*'s local page *l* maps to global
//! page `l * cores + (c + l) % cores`. This is a bijection (no sharing),
//! spreads every core's pages across channels *and* pods, and gives each
//! core a proportional slice of the statically-fast region — while keeping
//! consecutive local pages non-adjacent physically, which reproduces the low
//! row-buffer hit rates the paper reports for unmanaged placements (the
//! libquantum 7 % baseline).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use mempod_types::{AccessKind, Addr, CoreId, Geometry, MemRequest, Picos, PAGE_SIZE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::mixes::mix_composition;
use crate::profile::{AccessStyle, BenchProfile, BENCHMARKS};
use crate::trace::Trace;

const LINES_PER_PAGE: u32 = 32;

/// A named 8-core workload: one benchmark profile per core.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    name: String,
    profiles: Vec<BenchProfile>,
}

impl WorkloadSpec {
    /// A homogeneous workload: 8 copies of the named benchmark (the paper's
    /// "we use a single benchmark's name as shorthand" convention).
    pub fn homogeneous(benchmark: &str) -> Option<Self> {
        let p = *BenchProfile::by_name(benchmark)?;
        Some(WorkloadSpec {
            name: benchmark.to_string(),
            profiles: vec![p; 8],
        })
    }

    /// A mixed workload from explicit profiles.
    ///
    /// # Panics
    ///
    /// Panics if `profiles` is empty.
    pub fn mixed(name: impl Into<String>, profiles: Vec<BenchProfile>) -> Self {
        assert!(!profiles.is_empty(), "a workload needs at least one core");
        WorkloadSpec {
            name: name.into(),
            profiles,
        }
    }

    /// One of the paper's Table 3 mixes ("mix1".."mix12").
    pub fn mix(name: &str) -> Option<Self> {
        let profiles = mix_composition(name)?;
        Some(WorkloadSpec {
            name: name.to_string(),
            profiles: profiles.into_iter().copied().collect(),
        })
    }

    /// The demo workload used in examples: 8 cores of a blatant hot/cold
    /// pattern.
    pub fn hotcold_demo() -> Self {
        WorkloadSpec {
            name: "hotcold-demo".to_string(),
            profiles: vec![BenchProfile::hotcold_demo(); 8],
        }
    }

    /// All 17 homogeneous workloads, in Table 3 row order.
    pub fn all_homogeneous() -> Vec<Self> {
        BENCHMARKS
            .iter()
            .map(|p| Self::homogeneous(p.name).expect("benchmark exists"))
            .collect()
    }

    /// All 12 mixed workloads from Table 3.
    pub fn all_mixes() -> Vec<Self> {
        (1..=12)
            .map(|i| Self::mix(&format!("mix{i}")).expect("mix exists"))
            .collect()
    }

    /// The complete evaluation suite: homogeneous then mixes.
    pub fn all_workloads() -> Vec<Self> {
        let mut v = Self::all_homogeneous();
        v.extend(Self::all_mixes());
        v
    }

    /// Workload name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Per-core profiles.
    pub fn profiles(&self) -> &[BenchProfile] {
        &self.profiles
    }

    /// Whether every core runs the same benchmark.
    pub fn is_homogeneous(&self) -> bool {
        self.profiles.windows(2).all(|w| w[0].name == w[1].name)
    }
}

/// Greatest common divisor (for choosing a coprime scatter stride).
fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// An odd multiplier coprime to `n`, near the golden-ratio point, used to
/// scatter a core's local pages across its whole partition (real OS
/// first-touch placement does not allocate a footprint at the bottom of
/// physical memory, where the statically-fast tier lives).
fn coprime_stride(n: u64) -> u64 {
    if n <= 2 {
        return 1;
    }
    let mut s = ((n as f64 * 0.618_033_988_75) as u64) | 1;
    while gcd(s, n) != 1 {
        s += 2;
    }
    s % n
}

/// Per-core request stream state.
#[derive(Debug, Clone)]
struct CoreStream {
    core: CoreId,
    profile: BenchProfile,
    rng: StdRng,
    cores: u64,
    per_core_pages: u64,
    scatter_stride: u64,
    footprint_pages: u64,
    superhot_n: u64,
    warm_n: u64,
    phase_offset: u64,
    accesses: u64,
    burst_active: u64,
    burst_next: u64,
    burst_left: u64,
    next_arrival: Picos,
    current_page: u64,
    line_cursor: u32,
    visits_left: u64,
    stream_cursor: u64,
}

impl CoreStream {
    fn new(core: u8, profile: BenchProfile, geo: &Geometry, cores: u64, seed: u64) -> Self {
        let per_core_pages = geo.total_pages() / cores;
        let footprint_pages = ((per_core_pages as f64 * profile.footprint_frac) as u64).max(4);
        let superhot_n = profile.superhot_pages.min(footprint_pages / 2);
        let warm_n = if profile.warm_prob > 0.0 {
            ((footprint_pages as f64 * profile.warm_frac) as u64).max(1)
        } else {
            0
        };
        // Derive a well-mixed per-core seed (SplitMix64 step).
        let mut z = seed.wrapping_add(0x9E3779B97F4A7C15u64.wrapping_mul(core as u64 + 1));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        let mut rng = StdRng::seed_from_u64(z);
        // Hot regions start at a random place in the footprint: real hot
        // pages are scattered through the address space, not parked at the
        // low addresses that the static mapping puts in fast memory.
        let phase_offset = rng.gen_range(0..footprint_pages);
        CoreStream {
            core: CoreId(core),
            profile,
            rng,
            cores,
            per_core_pages,
            scatter_stride: coprime_stride(per_core_pages),
            footprint_pages,
            superhot_n,
            warm_n,
            phase_offset,
            accesses: 0,
            burst_active: 0,
            burst_next: 0,
            burst_left: 0,
            next_arrival: Picos::ZERO,
            current_page: 0,
            line_cursor: 0,
            visits_left: 0,
            stream_cursor: 0,
        }
    }

    /// Global page for a local page index: scatter within the partition
    /// (coprime-stride permutation), then interleave partitions across the
    /// global space. Both steps are bijections, so pages are never shared.
    fn global_page(&self, local: u64) -> u64 {
        let slot = (local * self.scatter_stride) % self.per_core_pages;
        debug_assert!(slot < u64::MAX / self.cores);
        slot * self.cores + (self.core.0 as u64 + slot) % self.cores
    }

    fn pick_page(&mut self) -> u64 {
        let fp = self.footprint_pages;
        match self.profile.style {
            AccessStyle::Stream => {
                self.stream_cursor = (self.stream_cursor + 1) % fp;
                self.stream_cursor
            }
            AccessStyle::Window { window_frac } => {
                let w = ((fp as f64 * window_frac) as u64).max(1);
                // Constant work per page: the window slides one page every
                // `step` accesses, so each page receives ~`step` accesses
                // while inside the window.
                let step = (self.profile.lines_per_visit * 8.0).max(1.0) as u64;
                let start = (self.accesses / step) % fp;
                (start + self.rng.gen_range(0..w)) % fp
            }
            AccessStyle::Random | AccessStyle::PointerChase => {
                let r: f64 = self.rng.gen();
                let p = &self.profile;
                if r < p.superhot_prob && self.superhot_n > 0 {
                    let idx = self.pick_superhot_member();
                    (self.phase_offset + idx) % fp
                } else if r < p.superhot_prob + p.warm_prob && self.warm_n > 0 {
                    (self.phase_offset + self.superhot_n + self.rng.gen_range(0..self.warm_n)) % fp
                } else {
                    self.rng.gen_range(0..fp)
                }
            }
        }
    }

    /// Which member of the super-hot set to access. With `superhot_burst`
    /// disabled, uniform; otherwise one member "bursts" at a time, and near
    /// the end of a burst the next burster gets occasional ramp-up accesses
    /// (the temporal-locality signature MEA exploits, see the profile docs).
    fn pick_superhot_member(&mut self) -> u64 {
        let mean = self.profile.superhot_burst;
        if mean == 0 || self.superhot_n < 2 {
            return self.rng.gen_range(0..self.superhot_n);
        }
        if self.burst_left == 0 {
            self.burst_active = self.burst_next;
            self.burst_next = self.rng.gen_range(0..self.superhot_n);
            self.burst_left = self.rng.gen_range(mean / 2..=mean * 3 / 2).max(1);
        }
        self.burst_left -= 1;
        if self.burst_left < mean / 4 && self.rng.gen::<f64>() < 0.1 {
            self.burst_next
        } else {
            self.burst_active
        }
    }

    fn next_request(&mut self, geo: &Geometry) -> MemRequest {
        if self.visits_left == 0 {
            self.current_page = self.pick_page();
            let mean = self.profile.lines_per_visit;
            // Uniform around the mean, at least one access per visit.
            let hi = (2.0 * mean - 1.0).max(1.0) as u64;
            self.visits_left = self.rng.gen_range(1..=hi.max(1));
            self.line_cursor = self.rng.gen_range(0..LINES_PER_PAGE);
        }
        let global = self.global_page(self.current_page);
        debug_assert!(global < geo.total_pages());
        let addr = Addr(global * PAGE_SIZE as u64 + self.line_cursor as u64 * 64);
        self.line_cursor = (self.line_cursor + 1) % LINES_PER_PAGE;
        self.visits_left -= 1;

        let kind = if self.rng.gen::<f64>() < self.profile.write_ratio {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let req = MemRequest::new(addr, kind, self.next_arrival, self.core);

        // Advance time: jittered inter-arrival around the mean rate.
        let mean_gap_ps = 1.0e6 / self.profile.reqs_per_us;
        let jitter: f64 = self.rng.gen_range(0.5..1.5);
        self.next_arrival += Picos((mean_gap_ps * jitter) as u64);

        // Phase rotation.
        self.accesses += 1;
        if let Some(period) = self.profile.phase_period {
            if self.accesses.is_multiple_of(period) {
                self.phase_offset =
                    (self.phase_offset + self.superhot_n + self.warm_n) % self.footprint_pages;
            }
        }
        req
    }
}

/// Deterministic trace generator for a [`WorkloadSpec`].
///
/// # Examples
///
/// ```
/// use mempod_trace::{TraceGenerator, WorkloadSpec};
/// use mempod_types::Geometry;
///
/// let spec = WorkloadSpec::hotcold_demo();
/// let a = TraceGenerator::new(spec.clone(), 1).take_requests(1000, &Geometry::tiny());
/// let b = TraceGenerator::new(spec, 1).take_requests(1000, &Geometry::tiny());
/// assert_eq!(a.requests(), b.requests()); // same seed, same trace
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    spec: WorkloadSpec,
    seed: u64,
}

impl TraceGenerator {
    /// Creates a generator for `spec` with a reproducibility `seed`.
    pub fn new(spec: WorkloadSpec, seed: u64) -> Self {
        TraceGenerator { spec, seed }
    }

    /// The spec this generator runs.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Generates the first `n` requests (across all cores, merged by
    /// arrival time) of the workload on a machine of the given geometry.
    pub fn take_requests(&self, n: usize, geo: &Geometry) -> Trace {
        let cores = self.spec.profiles.len() as u64;
        let mut streams: Vec<CoreStream> = self
            .spec
            .profiles
            .iter()
            .enumerate()
            .map(|(c, p)| CoreStream::new(c as u8, *p, geo, cores, self.seed))
            .collect();

        // Merge per-core streams by next arrival time.
        let mut heap: BinaryHeap<Reverse<(Picos, usize)>> = streams
            .iter()
            .enumerate()
            .map(|(i, s)| Reverse((s.next_arrival, i)))
            .collect();
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let Reverse((_, i)) = heap.pop().expect("streams are endless");
            let req = streams[i].next_request(geo);
            out.push(req);
            heap.push(Reverse((streams[i].next_arrival, i)));
        }
        Trace::new(self.spec.name.clone(), out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn partition_bijection_no_page_sharing() {
        let geo = Geometry::tiny();
        let spec = WorkloadSpec::homogeneous("gcc").unwrap();
        let trace = TraceGenerator::new(spec, 3).take_requests(20_000, &geo);
        // No page may be touched by two different cores.
        let mut owner: std::collections::HashMap<u64, u8> = Default::default();
        for r in trace.requests() {
            let prev = owner.insert(r.addr.page().0, r.core.0);
            if let Some(p) = prev {
                assert_eq!(p, r.core.0, "page {} shared", r.addr.page());
            }
        }
    }

    #[test]
    fn addresses_stay_in_bounds() {
        let geo = Geometry::tiny();
        for spec in [
            WorkloadSpec::homogeneous("mcf").unwrap(),
            WorkloadSpec::homogeneous("bwaves").unwrap(),
            WorkloadSpec::mix("mix5").unwrap(),
        ] {
            let trace = TraceGenerator::new(spec, 9).take_requests(30_000, &geo);
            for r in trace.requests() {
                assert!(r.addr.page().0 < geo.total_pages());
            }
        }
    }

    #[test]
    fn deterministic_per_seed_distinct_across_seeds() {
        let geo = Geometry::tiny();
        let spec = WorkloadSpec::homogeneous("xalanc").unwrap();
        let a = TraceGenerator::new(spec.clone(), 1).take_requests(5000, &geo);
        let b = TraceGenerator::new(spec.clone(), 1).take_requests(5000, &geo);
        let c = TraceGenerator::new(spec, 2).take_requests(5000, &geo);
        assert_eq!(a.requests(), b.requests());
        assert_ne!(a.requests(), c.requests());
    }

    #[test]
    fn arrivals_are_merged_in_order() {
        let geo = Geometry::tiny();
        let spec = WorkloadSpec::mix("mix1").unwrap();
        let t = TraceGenerator::new(spec, 5).take_requests(10_000, &geo);
        assert!(t
            .requests()
            .windows(2)
            .all(|w| w[0].arrival <= w[1].arrival));
        // All 8 cores contribute.
        let cores: HashSet<u8> = t.requests().iter().map(|r| r.core.0).collect();
        assert_eq!(cores.len(), 8);
    }

    #[test]
    fn skewed_profile_produces_hot_pages() {
        let geo = Geometry::tiny();
        let spec = WorkloadSpec::homogeneous("cactus").unwrap();
        let t = TraceGenerator::new(spec, 11).take_requests(50_000, &geo);
        // The top-192 pages (24 superhot x 8 cores) should absorb roughly
        // superhot_prob of the traffic.
        let mut counts: std::collections::HashMap<u64, u64> = Default::default();
        for r in t.requests() {
            *counts.entry(r.addr.page().0).or_insert(0) += 1;
        }
        let mut v: Vec<u64> = counts.values().copied().collect();
        v.sort_unstable_by(|a, b| b.cmp(a));
        let top: u64 = v.iter().take(192).sum();
        let frac = top as f64 / t.len() as f64;
        assert!(frac > 0.45, "hot fraction too low: {frac}");
    }

    #[test]
    fn streaming_profile_touches_many_pages() {
        let geo = Geometry::tiny();
        let spec = WorkloadSpec::homogeneous("bwaves").unwrap();
        let t = TraceGenerator::new(spec, 11).take_requests(50_000, &geo);
        // ~16 lines/visit => ~3k distinct pages in 50k requests.
        assert!(t.distinct_pages() > 1000, "{}", t.distinct_pages());
    }

    #[test]
    fn request_rate_matches_profile() {
        let geo = Geometry::tiny();
        let spec = WorkloadSpec::homogeneous("gcc").unwrap(); // 11 req/us/core
        let t = TraceGenerator::new(spec, 4).take_requests(50_000, &geo);
        let rate = t.mean_rate_per_us();
        assert!(
            (rate - 88.0).abs() < 10.0,
            "aggregate rate {rate} far from 8 x 11"
        );
    }

    #[test]
    fn write_ratio_is_respected() {
        let geo = Geometry::tiny();
        let spec = WorkloadSpec::homogeneous("lbm").unwrap(); // 40% writes
        let t = TraceGenerator::new(spec, 4).take_requests(20_000, &geo);
        let writes = t.requests().iter().filter(|r| r.kind.is_write()).count();
        let ratio = writes as f64 / t.len() as f64;
        assert!((ratio - 0.4).abs() < 0.05, "write ratio {ratio}");
    }

    #[test]
    fn all_workloads_enumerates_29() {
        let all = WorkloadSpec::all_workloads();
        assert_eq!(all.len(), 17 + 12);
        assert!(all[0].is_homogeneous());
        assert!(!WorkloadSpec::mix("mix1").unwrap().is_homogeneous());
    }

    #[test]
    fn unknown_names_return_none() {
        assert!(WorkloadSpec::homogeneous("fortnite").is_none());
        assert!(WorkloadSpec::mix("mix99").is_none());
    }
}
