//! Per-benchmark workload models.
//!
//! Each SPEC CPU2006 benchmark the paper uses (Table 3) gets a
//! [`BenchProfile`] encoding its first-order memory behaviour. The
//! parameters are *relative to the machine* (footprints are fractions of a
//! core's share of total memory) so the same profile works at paper scale
//! (9 GB) and at test scale (36 MB).
//!
//! The profiles are calibrated to reproduce the paper's qualitative
//! per-workload findings (§3, §6.3.2):
//!
//! * `libquantum` — small looping footprint that *fits in HBM* (8 cores
//!   together stay under the fast tier), so migration eventually moves the
//!   whole working set up and co-locates hot pages in rows.
//! * `bwaves` — streams through structures far larger than an interval:
//!   the past interval barely overlaps the next, migration is wasted.
//! * `lbm` — huge working set, constant work per page: a sliding window.
//!   Full counters rank finished pages; recency (MEA) wins.
//! * `cactus` — stable, strongly skewed hot set: the one workload where
//!   exact counting (FC) beats MEA's recency bias.
//! * `xalanc` — skewed with *fast* phase rotation: adaptivity pays.
//! * `mcf` — enormous pointer-chasing footprint, flat-ish skew.

use serde::{Deserialize, Serialize};

/// How a benchmark walks its footprint.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AccessStyle {
    /// Sequential cursor over the whole footprint, wrapping around. Small
    /// footprints therefore *loop* (libquantum); large ones *stream*
    /// (bwaves).
    Stream,
    /// Uniform accesses inside a window of `window_frac` of the footprint
    /// that slides forward continuously (lbm's constant work per page).
    Window {
        /// Window width as a fraction of the footprint.
        window_frac: f64,
    },
    /// Skewed random: super-hot set, warm set, cold tail.
    Random,
    /// Like [`AccessStyle::Random`] but with single-line visits (no spatial
    /// locality): linked-list traversal (mcf, omnetpp, astar).
    PointerChase,
}

/// A parameterized synthetic benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BenchProfile {
    /// Benchmark name (matches the paper's Table 3 rows).
    pub name: &'static str,
    /// Footprint as a fraction of one core's share of total memory.
    pub footprint_frac: f64,
    /// Pages in the super-hot set (absolute; rotates with phases).
    pub superhot_pages: u64,
    /// Probability an access targets the super-hot set.
    pub superhot_prob: f64,
    /// Warm set size as a fraction of the footprint.
    pub warm_frac: f64,
    /// Probability an access targets the warm set.
    pub warm_prob: f64,
    /// Access style.
    pub style: AccessStyle,
    /// Accesses (per core) between hot-set rotations; `None` = no phases.
    pub phase_period: Option<u64>,
    /// Mean length (in super-hot accesses) of a hot-page *burst*. Zero means
    /// the super-hot set is accessed uniformly (stationary — Full Counters'
    /// best case, e.g. cactus). Nonzero models SPEC's sub-interval temporal
    /// locality: at any moment one set member is "bursting", with a short
    /// ramp-up preview of the next burster — the behaviour that makes
    /// recency (MEA) predict the future better than exact counts (paper §3).
    pub superhot_burst: u64,
    /// Fraction of accesses that are writes.
    pub write_ratio: f64,
    /// Mean consecutive accesses to the same page (spatial locality; >= 1).
    pub lines_per_visit: f64,
    /// Memory request intensity, requests per microsecond per core.
    pub reqs_per_us: f64,
}

impl BenchProfile {
    /// Looks a profile up by name.
    pub fn by_name(name: &str) -> Option<&'static BenchProfile> {
        BENCHMARKS.iter().find(|p| p.name == name)
    }

    /// A demo profile with a blatant hot/cold split, used in examples and
    /// quick tests (not part of the paper's suite).
    pub fn hotcold_demo() -> BenchProfile {
        BenchProfile {
            name: "hotcold-demo",
            footprint_frac: 0.5,
            superhot_pages: 32,
            superhot_prob: 0.6,
            warm_frac: 0.05,
            warm_prob: 0.25,
            style: AccessStyle::Random,
            superhot_burst: 0,
            phase_period: Some(150_000),
            write_ratio: 0.3,
            lines_per_visit: 4.0,
            reqs_per_us: 14.0,
        }
    }
}

/// All benchmark profiles, in the paper's Table 3 row order.
pub static BENCHMARKS: &[BenchProfile] = &[
    BenchProfile {
        name: "astar",
        footprint_frac: 0.30,
        superhot_pages: 48,
        superhot_prob: 0.45,
        warm_frac: 0.06,
        warm_prob: 0.30,
        style: AccessStyle::PointerChase,
        superhot_burst: 800,
        phase_period: Some(120_000),
        write_ratio: 0.20,
        lines_per_visit: 1.5,
        reqs_per_us: 9.0,
    },
    BenchProfile {
        name: "bwaves",
        footprint_frac: 0.85,
        superhot_pages: 0,
        superhot_prob: 0.0,
        warm_frac: 0.0,
        warm_prob: 0.0,
        style: AccessStyle::Stream,
        superhot_burst: 0,
        phase_period: None,
        write_ratio: 0.15,
        lines_per_visit: 16.0,
        reqs_per_us: 16.0,
    },
    BenchProfile {
        name: "bzip",
        footprint_frac: 0.25,
        superhot_pages: 32,
        superhot_prob: 0.50,
        warm_frac: 0.08,
        warm_prob: 0.30,
        style: AccessStyle::Random,
        superhot_burst: 0,
        phase_period: Some(105_000),
        write_ratio: 0.30,
        lines_per_visit: 6.0,
        reqs_per_us: 10.0,
    },
    BenchProfile {
        name: "cactus",
        footprint_frac: 0.40,
        superhot_pages: 24,
        superhot_prob: 0.60,
        warm_frac: 0.04,
        warm_prob: 0.25,
        style: AccessStyle::Random,
        superhot_burst: 0,
        phase_period: None, // stable hot set: the FC-friendly workload
        write_ratio: 0.25,
        lines_per_visit: 8.0,
        reqs_per_us: 9.0,
    },
    BenchProfile {
        name: "dealii",
        footprint_frac: 0.30,
        superhot_pages: 32,
        superhot_prob: 0.50,
        warm_frac: 0.06,
        warm_prob: 0.30,
        style: AccessStyle::Random,
        superhot_burst: 0,
        phase_period: Some(180_000),
        write_ratio: 0.25,
        lines_per_visit: 5.0,
        reqs_per_us: 9.0,
    },
    BenchProfile {
        name: "gcc",
        footprint_frac: 0.20,
        superhot_pages: 24,
        superhot_prob: 0.55,
        warm_frac: 0.05,
        warm_prob: 0.30,
        style: AccessStyle::Random,
        superhot_burst: 0,
        phase_period: Some(90_000),
        write_ratio: 0.30,
        lines_per_visit: 4.0,
        reqs_per_us: 11.0,
    },
    BenchProfile {
        name: "gems",
        footprint_frac: 0.70,
        superhot_pages: 64,
        superhot_prob: 0.40,
        warm_frac: 0.10,
        warm_prob: 0.30,
        style: AccessStyle::Random,
        superhot_burst: 1000,
        phase_period: Some(150_000),
        write_ratio: 0.30,
        lines_per_visit: 5.0,
        reqs_per_us: 14.0,
    },
    BenchProfile {
        name: "lbm",
        footprint_frac: 0.80,
        superhot_pages: 0,
        superhot_prob: 0.0,
        warm_frac: 0.0,
        warm_prob: 0.0,
        style: AccessStyle::Window { window_frac: 0.02 },
        superhot_burst: 0,
        phase_period: None,
        write_ratio: 0.40,
        lines_per_visit: 8.0,
        reqs_per_us: 18.0,
    },
    BenchProfile {
        name: "leslie",
        footprint_frac: 0.50,
        superhot_pages: 48,
        superhot_prob: 0.45,
        warm_frac: 0.08,
        warm_prob: 0.30,
        style: AccessStyle::Random,
        superhot_burst: 800,
        phase_period: Some(135_000),
        write_ratio: 0.30,
        lines_per_visit: 6.0,
        reqs_per_us: 12.0,
    },
    BenchProfile {
        name: "libquantum",
        footprint_frac: 0.08, // 8 cores x 0.08 x (1/8 of 9GB) < 1GB HBM
        superhot_pages: 0,
        superhot_prob: 0.0,
        warm_frac: 0.0,
        warm_prob: 0.0,
        style: AccessStyle::Stream, // small footprint => loops repeatedly
        superhot_burst: 0,
        phase_period: None,
        write_ratio: 0.05,
        lines_per_visit: 24.0,
        reqs_per_us: 15.0,
    },
    BenchProfile {
        name: "mcf",
        footprint_frac: 0.90,
        superhot_pages: 64,
        superhot_prob: 0.30,
        warm_frac: 0.10,
        warm_prob: 0.25,
        style: AccessStyle::PointerChase,
        superhot_burst: 1200,
        phase_period: Some(240_000),
        write_ratio: 0.25,
        lines_per_visit: 1.2,
        reqs_per_us: 16.0,
    },
    BenchProfile {
        name: "milc",
        footprint_frac: 0.60,
        superhot_pages: 48,
        superhot_prob: 0.35,
        warm_frac: 0.08,
        warm_prob: 0.30,
        style: AccessStyle::Random,
        superhot_burst: 1000,
        phase_period: Some(210_000),
        write_ratio: 0.30,
        lines_per_visit: 4.0,
        reqs_per_us: 12.0,
    },
    BenchProfile {
        name: "omnetpp",
        footprint_frac: 0.35,
        superhot_pages: 40,
        superhot_prob: 0.45,
        warm_frac: 0.06,
        warm_prob: 0.30,
        style: AccessStyle::PointerChase,
        superhot_burst: 800,
        phase_period: Some(150_000),
        write_ratio: 0.30,
        lines_per_visit: 1.5,
        reqs_per_us: 10.0,
    },
    BenchProfile {
        name: "soplex",
        footprint_frac: 0.45,
        superhot_pages: 40,
        superhot_prob: 0.50,
        warm_frac: 0.07,
        warm_prob: 0.28,
        style: AccessStyle::Random,
        superhot_burst: 0,
        phase_period: Some(120_000),
        write_ratio: 0.30,
        lines_per_visit: 5.0,
        reqs_per_us: 11.0,
    },
    BenchProfile {
        name: "sphinx",
        footprint_frac: 0.30,
        superhot_pages: 32,
        superhot_prob: 0.50,
        warm_frac: 0.05,
        warm_prob: 0.30,
        style: AccessStyle::Random,
        superhot_burst: 600,
        phase_period: Some(90_000),
        write_ratio: 0.20,
        lines_per_visit: 5.0,
        reqs_per_us: 10.0,
    },
    BenchProfile {
        name: "xalanc",
        footprint_frac: 0.25,
        superhot_pages: 24,
        superhot_prob: 0.60,
        warm_frac: 0.05,
        warm_prob: 0.25,
        style: AccessStyle::Random,
        superhot_burst: 600,
        phase_period: Some(45_000), // fast phases: adaptivity pays
        write_ratio: 0.25,
        lines_per_visit: 4.0,
        reqs_per_us: 12.0,
    },
    BenchProfile {
        name: "zeusmp",
        footprint_frac: 0.55,
        superhot_pages: 48,
        superhot_prob: 0.45,
        warm_frac: 0.10,
        warm_prob: 0.30,
        style: AccessStyle::Random,
        superhot_burst: 800,
        phase_period: Some(165_000),
        write_ratio: 0.35,
        lines_per_visit: 6.0,
        reqs_per_us: 11.0,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_seventeen_table3_benchmarks_present() {
        assert_eq!(BENCHMARKS.len(), 17);
        for name in [
            "astar",
            "bwaves",
            "bzip",
            "cactus",
            "dealii",
            "gcc",
            "gems",
            "lbm",
            "leslie",
            "libquantum",
            "mcf",
            "milc",
            "omnetpp",
            "soplex",
            "sphinx",
            "xalanc",
            "zeusmp",
        ] {
            assert!(BenchProfile::by_name(name).is_some(), "{name} missing");
        }
        assert!(BenchProfile::by_name("nonexistent").is_none());
    }

    #[test]
    fn probabilities_are_sane() {
        for p in BENCHMARKS {
            assert!(p.superhot_prob >= 0.0 && p.warm_prob >= 0.0, "{}", p.name);
            assert!(
                p.superhot_prob + p.warm_prob <= 1.0,
                "{}: probs exceed 1",
                p.name
            );
            assert!(
                p.footprint_frac > 0.0 && p.footprint_frac <= 1.0,
                "{}",
                p.name
            );
            assert!((0.0..=1.0).contains(&p.write_ratio), "{}", p.name);
            assert!(p.lines_per_visit >= 1.0, "{}", p.name);
            assert!(p.reqs_per_us > 0.0, "{}", p.name);
            if let AccessStyle::Window { window_frac } = p.style {
                assert!(window_frac > 0.0 && window_frac < 1.0, "{}", p.name);
            }
        }
    }

    #[test]
    fn libquantum_fits_in_fast_memory() {
        // 8 cores x footprint_frac x (total/8) must stay below the fast
        // tier: footprint_frac < fast/total = 1/9.
        let lq = BenchProfile::by_name("libquantum").unwrap();
        assert!(lq.footprint_frac < 1.0 / 9.0);
    }

    #[test]
    fn streaming_benchmarks_exceed_fast_memory() {
        for name in ["bwaves", "lbm", "mcf"] {
            let p = BenchProfile::by_name(name).unwrap();
            assert!(p.footprint_frac > 1.0 / 9.0, "{name} should not fit in HBM");
        }
    }

    #[test]
    fn cactus_is_stable_and_xalanc_is_phasey() {
        assert!(BenchProfile::by_name("cactus")
            .unwrap()
            .phase_period
            .is_none());
        let x = BenchProfile::by_name("xalanc")
            .unwrap()
            .phase_period
            .unwrap();
        for p in BENCHMARKS {
            if let Some(period) = p.phase_period {
                assert!(x <= period, "xalanc must rotate fastest");
            }
        }
    }
}
