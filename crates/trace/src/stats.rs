//! Trace characterization: the knobs migration mechanisms react to.
//!
//! Used by the `workload_atlas` experiment binary to validate that the
//! synthetic workloads (DESIGN.md §4 substitution) exhibit the properties
//! their SPEC counterparts are known for: footprint relative to the fast
//! tier, access skew, write ratio, spatial locality, and request intensity.

use std::collections::HashMap;

use mempod_types::{Geometry, PAGE_SIZE};
use serde::{Deserialize, Serialize};

use crate::trace::Trace;

/// Aggregate characterization of one trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Requests analyzed.
    pub requests: u64,
    /// Distinct 2 KB pages touched.
    pub distinct_pages: u64,
    /// Touched footprint in megabytes.
    pub footprint_mb: f64,
    /// Footprint as a fraction of the fast tier (`> 1` = does not fit).
    pub footprint_vs_fast: f64,
    /// Fraction of writes.
    pub write_fraction: f64,
    /// Aggregate request rate (requests per microsecond).
    pub rate_per_us: f64,
    /// Fraction of accesses landing on the hottest 1 % of touched pages.
    pub top1pct_share: f64,
    /// Fraction of accesses landing on the hottest 64 pages.
    pub top64_share: f64,
    /// Fraction of accesses to the same page as the previous access of the
    /// same core (spatial locality proxy).
    pub same_page_run_fraction: f64,
    /// Per-core request share imbalance: max core share / mean share.
    pub core_imbalance: f64,
}

impl TraceStats {
    /// Analyzes a trace against a geometry.
    pub fn analyze(trace: &Trace, geo: &Geometry) -> TraceStats {
        let n = trace.len() as u64;
        let mut counts: HashMap<u64, u64> = HashMap::new();
        let mut writes = 0u64;
        let mut same_page_runs = 0u64;
        let mut last_page_per_core: HashMap<u8, u64> = HashMap::new();
        let mut per_core: HashMap<u8, u64> = HashMap::new();
        for r in trace.requests() {
            let page = r.addr.page().0;
            *counts.entry(page).or_insert(0) += 1;
            if r.kind.is_write() {
                writes += 1;
            }
            if last_page_per_core.insert(r.core.0, page) == Some(page) {
                same_page_runs += 1;
            }
            *per_core.entry(r.core.0).or_insert(0) += 1;
        }
        let mut by_count: Vec<u64> = counts.values().copied().collect();
        by_count.sort_unstable_by(|a, b| b.cmp(a));
        let share_of = |k: usize| -> f64 {
            if n == 0 {
                0.0
            } else {
                by_count.iter().take(k).sum::<u64>() as f64 / n as f64
            }
        };
        let distinct = counts.len() as u64;
        let top1pct = ((distinct as usize) / 100).max(1);
        let footprint_bytes = distinct * PAGE_SIZE as u64;
        let max_core = per_core.values().copied().max().unwrap_or(0) as f64;
        let mean_core = if per_core.is_empty() {
            0.0
        } else {
            n as f64 / per_core.len() as f64
        };
        TraceStats {
            requests: n,
            distinct_pages: distinct,
            footprint_mb: footprint_bytes as f64 / (1 << 20) as f64,
            footprint_vs_fast: footprint_bytes as f64 / geo.fast_bytes() as f64,
            write_fraction: if n == 0 {
                0.0
            } else {
                writes as f64 / n as f64
            },
            rate_per_us: trace.mean_rate_per_us(),
            top1pct_share: share_of(top1pct),
            top64_share: share_of(64),
            same_page_run_fraction: if n == 0 {
                0.0
            } else {
                same_page_runs as f64 / n as f64
            },
            core_imbalance: if mean_core == 0.0 {
                0.0
            } else {
                max_core / mean_core
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{TraceGenerator, WorkloadSpec};

    fn stats_for(workload: &str, n: usize) -> TraceStats {
        let geo = Geometry::tiny();
        let spec = WorkloadSpec::homogeneous(workload).expect("known");
        let t = TraceGenerator::new(spec, 5).take_requests(n, &geo);
        TraceStats::analyze(&t, &geo)
    }

    #[test]
    fn libquantum_fits_in_fast_memory() {
        let s = stats_for("libquantum", 200_000);
        assert!(s.footprint_vs_fast < 1.0, "{}", s.footprint_vs_fast);
    }

    #[test]
    fn mcf_exceeds_fast_memory() {
        let s = stats_for("mcf", 300_000);
        assert!(s.footprint_vs_fast > 1.0, "{}", s.footprint_vs_fast);
    }

    #[test]
    fn cactus_is_skewed_bwaves_is_flat() {
        let cactus = stats_for("cactus", 100_000);
        let bwaves = stats_for("bwaves", 100_000);
        assert!(
            cactus.top64_share > 3.0 * bwaves.top64_share,
            "cactus {} vs bwaves {}",
            cactus.top64_share,
            bwaves.top64_share
        );
    }

    #[test]
    fn spatial_locality_orders_streaming_above_pointer_chase() {
        let bwaves = stats_for("bwaves", 60_000); // 16 lines/visit
        let mcf = stats_for("mcf", 60_000); // 1.2 lines/visit
        assert!(bwaves.same_page_run_fraction > mcf.same_page_run_fraction);
    }

    #[test]
    fn write_fractions_track_profiles() {
        let lbm = stats_for("lbm", 60_000); // 40% writes
        assert!(
            (lbm.write_fraction - 0.4).abs() < 0.05,
            "{}",
            lbm.write_fraction
        );
        let libq = stats_for("libquantum", 60_000); // 5% writes
        assert!(libq.write_fraction < 0.1);
    }

    #[test]
    fn cores_are_balanced_in_homogeneous_workloads() {
        let s = stats_for("gcc", 80_000);
        assert!(s.core_imbalance < 1.2, "{}", s.core_imbalance);
    }

    #[test]
    fn empty_trace_is_all_zeroes() {
        let s = TraceStats::analyze(&Trace::new("empty", vec![]), &Geometry::tiny());
        assert_eq!(s.requests, 0);
        assert_eq!(s.distinct_pages, 0);
        assert_eq!(s.top64_share, 0.0);
    }
}
