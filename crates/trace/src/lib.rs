//! Synthetic SPEC2006-like multi-programmed memory traces.
//!
//! The paper feeds Ramulator with memory-request traces captured by running
//! 8 SPEC CPU2006 benchmarks on a simulated 8-core CPU (Sniper). Those
//! traces are not redistributable, so this crate provides the substitution
//! documented in `DESIGN.md` §4: parameterized workload models that
//! reproduce the *page-level* properties migration mechanisms react to —
//!
//! * **footprint** relative to the machine (does it fit in HBM? exceed it?),
//! * **skew**: a small super-hot page set, a warm set, and a cold tail,
//! * **access style**: streaming, looping, uniform random, pointer-chasing,
//!   or a sliding window (lbm's "constant work per page"),
//! * **phase changes**: periodic rotation of the hot sets,
//! * write ratio, spatial locality within a page, and request intensity.
//!
//! One named [`BenchProfile`] exists per benchmark in the paper's Table 3;
//! [`WorkloadSpec`] assembles them into the 17 homogeneous workloads and the
//! 12 mixes, and [`TraceGenerator`] turns a spec into a deterministic,
//! seeded, time-ordered [`Trace`].
//!
//! # Examples
//!
//! ```
//! use mempod_trace::{TraceGenerator, WorkloadSpec};
//! use mempod_types::Geometry;
//!
//! let spec = WorkloadSpec::homogeneous("libquantum").expect("known benchmark");
//! let trace = TraceGenerator::new(spec, 7).take_requests(10_000, &Geometry::tiny());
//! assert_eq!(trace.len(), 10_000);
//! // Arrivals are non-decreasing: ready to feed the simulator.
//! assert!(trace.requests().windows(2).all(|w| w[0].arrival <= w[1].arrival));
//! ```

pub mod generator;
pub mod io;
pub mod mixes;
pub mod profile;
pub mod stats;
pub mod trace;

pub use generator::{TraceGenerator, WorkloadSpec};
pub use mixes::{mix_composition, mix_names, MIXES};
pub use profile::{AccessStyle, BenchProfile, BENCHMARKS};
pub use stats::TraceStats;
pub use trace::Trace;
