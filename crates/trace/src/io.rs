//! Compact binary trace (de)serialization.
//!
//! Format (all little-endian):
//!
//! ```text
//! magic   4 bytes  "MPT1"
//! nlen    2 bytes  workload-name length
//! name    nlen bytes (UTF-8)
//! count   8 bytes  number of records
//! record  18 bytes x count:
//!     arrival_ps  u64
//!     addr        u64
//!     flags       u8   (bit 0: write)
//!     core        u8
//! ```
//!
//! Generated traces are deterministic from `(spec, seed)`, so persisting
//! them is optional — but it lets the experiment harness reuse one trace
//! across the Fig. 6/7/8/9/10 sweeps without regeneration.

use std::io::{self, Read, Write};

use bytes::{Buf, BufMut, Bytes, BytesMut};
use mempod_types::{AccessKind, Addr, CoreId, MemRequest, Picos};

use crate::trace::Trace;

const MAGIC: &[u8; 4] = b"MPT1";
const RECORD_BYTES: usize = 18;

/// Serializes a trace to a writer.
///
/// # Errors
///
/// Returns any I/O error from the writer.
pub fn write_trace<W: Write>(trace: &Trace, mut w: W) -> io::Result<()> {
    let name = trace.name().as_bytes();
    let mut buf = BytesMut::with_capacity(14 + name.len() + trace.len() * RECORD_BYTES);
    buf.put_slice(MAGIC);
    buf.put_u16_le(u16::try_from(name.len()).map_err(|_| {
        io::Error::new(io::ErrorKind::InvalidInput, "workload name too long")
    })?);
    buf.put_slice(name);
    buf.put_u64_le(trace.len() as u64);
    for r in trace.requests() {
        buf.put_u64_le(r.arrival.as_ps());
        buf.put_u64_le(r.addr.0);
        buf.put_u8(u8::from(r.kind.is_write()));
        buf.put_u8(r.core.0);
    }
    w.write_all(&buf)
}

/// Deserializes a trace from a reader.
///
/// # Errors
///
/// Returns an error on I/O failure, bad magic, or a truncated stream.
pub fn read_trace<R: Read>(mut r: R) -> io::Result<Trace> {
    let mut raw = Vec::new();
    r.read_to_end(&mut raw)?;
    let mut buf = Bytes::from(raw);
    let fail = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());

    if buf.remaining() < 4 || &buf.copy_to_bytes(4)[..] != MAGIC {
        return Err(fail("bad magic"));
    }
    if buf.remaining() < 2 {
        return Err(fail("truncated header"));
    }
    let nlen = buf.get_u16_le() as usize;
    if buf.remaining() < nlen + 8 {
        return Err(fail("truncated name"));
    }
    let name = String::from_utf8(buf.copy_to_bytes(nlen).to_vec())
        .map_err(|_| fail("name is not utf-8"))?;
    let count = buf.get_u64_le() as usize;
    if buf.remaining() < count * RECORD_BYTES {
        return Err(fail("truncated records"));
    }
    let mut requests = Vec::with_capacity(count);
    for _ in 0..count {
        let arrival = Picos(buf.get_u64_le());
        let addr = Addr(buf.get_u64_le());
        let flags = buf.get_u8();
        let core = CoreId(buf.get_u8());
        let kind = if flags & 1 == 1 {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        requests.push(MemRequest::new(addr, kind, arrival, core));
    }
    Ok(Trace::new(name, requests))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{TraceGenerator, WorkloadSpec};
    use mempod_types::Geometry;

    #[test]
    fn roundtrip_preserves_everything() {
        let spec = WorkloadSpec::hotcold_demo();
        let t = TraceGenerator::new(spec, 3).take_requests(2000, &Geometry::tiny());
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).expect("write");
        let back = read_trace(buf.as_slice()).expect("read");
        assert_eq!(back.name(), t.name());
        assert_eq!(back.requests(), t.requests());
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = Trace::new("empty", vec![]);
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).expect("write");
        let back = read_trace(buf.as_slice()).expect("read");
        assert!(back.is_empty());
        assert_eq!(back.name(), "empty");
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_trace(&b"NOPE1234"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_stream_rejected() {
        let spec = WorkloadSpec::hotcold_demo();
        let t = TraceGenerator::new(spec, 3).take_requests(100, &Geometry::tiny());
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).expect("write");
        buf.truncate(buf.len() - 5);
        assert!(read_trace(buf.as_slice()).is_err());
    }

    #[test]
    fn record_size_is_compact() {
        let spec = WorkloadSpec::hotcold_demo();
        let t = TraceGenerator::new(spec, 3).take_requests(1000, &Geometry::tiny());
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).expect("write");
        assert!(buf.len() <= 32 + 1000 * RECORD_BYTES);
    }
}
