//! Compact binary trace (de)serialization.
//!
//! Format (all little-endian):
//!
//! ```text
//! magic   4 bytes  "MPT1"
//! nlen    2 bytes  workload-name length
//! name    nlen bytes (UTF-8)
//! count   8 bytes  number of records
//! record  18 bytes x count:
//!     arrival_ps  u64
//!     addr        u64
//!     flags       u8   (bit 0: write)
//!     core        u8
//! ```
//!
//! Generated traces are deterministic from `(spec, seed)`, so persisting
//! them is optional — but it lets the experiment harness reuse one trace
//! across the Fig. 6/7/8/9/10 sweeps without regeneration.

use std::io::{self, Read, Write};

use mempod_types::{AccessKind, Addr, CoreId, MemRequest, Picos};

use crate::trace::Trace;

const MAGIC: &[u8; 4] = b"MPT1";
const RECORD_BYTES: usize = 18;

/// A read cursor over a byte slice: the little-endian decoding helpers the
/// `bytes` crate used to provide, on plain std types.
struct Cursor<'a> {
    buf: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Takes the next `n` bytes, or `None` if fewer remain.
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.buf.len() < n {
            return None;
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Some(head)
    }

    fn get_u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn get_u16_le(&mut self) -> Option<u16> {
        self.take(2)
            .and_then(|b| b.try_into().ok())
            .map(u16::from_le_bytes)
    }

    fn get_u64_le(&mut self) -> Option<u64> {
        self.take(8)
            .and_then(|b| b.try_into().ok())
            .map(u64::from_le_bytes)
    }
}

/// Serializes a trace to a writer.
///
/// # Errors
///
/// Returns any I/O error from the writer.
pub fn write_trace<W: Write>(trace: &Trace, mut w: W) -> io::Result<()> {
    let name = trace.name().as_bytes();
    let mut buf = Vec::with_capacity(14 + name.len() + trace.len() * RECORD_BYTES);
    buf.extend_from_slice(MAGIC);
    let nlen = u16::try_from(name.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "workload name too long"))?;
    buf.extend_from_slice(&nlen.to_le_bytes());
    buf.extend_from_slice(name);
    buf.extend_from_slice(&(trace.len() as u64).to_le_bytes());
    for r in trace.requests() {
        buf.extend_from_slice(&r.arrival.as_ps().to_le_bytes());
        buf.extend_from_slice(&r.addr.0.to_le_bytes());
        buf.push(u8::from(r.kind.is_write()));
        buf.push(r.core.0);
    }
    w.write_all(&buf)
}

/// Deserializes a trace from a reader.
///
/// # Errors
///
/// Returns an error on I/O failure, bad magic, or a truncated stream.
pub fn read_trace<R: Read>(mut r: R) -> io::Result<Trace> {
    let mut raw = Vec::new();
    r.read_to_end(&mut raw)?;
    let mut buf = Cursor { buf: &raw };
    let fail = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());

    if buf.take(4) != Some(&MAGIC[..]) {
        return Err(fail("bad magic"));
    }
    let nlen = buf.get_u16_le().ok_or_else(|| fail("truncated header"))? as usize;
    let name_bytes = buf.take(nlen).ok_or_else(|| fail("truncated name"))?;
    let name = std::str::from_utf8(name_bytes)
        .map_err(|_| fail("name is not utf-8"))?
        .to_string();
    let count_u64 = buf.get_u64_le().ok_or_else(|| fail("truncated name"))?;
    let count = usize::try_from(count_u64).map_err(|_| fail("record count overflow"))?;
    if buf.remaining() < count.saturating_mul(RECORD_BYTES) {
        return Err(fail("truncated records"));
    }
    let mut requests = Vec::with_capacity(count);
    for _ in 0..count {
        let arrival = Picos(buf.get_u64_le().ok_or_else(|| fail("truncated record"))?);
        let addr = Addr(buf.get_u64_le().ok_or_else(|| fail("truncated record"))?);
        let flags = buf.get_u8().ok_or_else(|| fail("truncated record"))?;
        let core = CoreId(buf.get_u8().ok_or_else(|| fail("truncated record"))?);
        let kind = if flags & 1 == 1 {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        requests.push(MemRequest::new(addr, kind, arrival, core));
    }
    Ok(Trace::new(name, requests))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{TraceGenerator, WorkloadSpec};
    use mempod_types::Geometry;

    #[test]
    fn roundtrip_preserves_everything() {
        let spec = WorkloadSpec::hotcold_demo();
        let t = TraceGenerator::new(spec, 3).take_requests(2000, &Geometry::tiny());
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).expect("write");
        let back = read_trace(buf.as_slice()).expect("read");
        assert_eq!(back.name(), t.name());
        assert_eq!(back.requests(), t.requests());
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = Trace::new("empty", vec![]);
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).expect("write");
        let back = read_trace(buf.as_slice()).expect("read");
        assert!(back.is_empty());
        assert_eq!(back.name(), "empty");
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_trace(&b"NOPE1234"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_stream_rejected() {
        let spec = WorkloadSpec::hotcold_demo();
        let t = TraceGenerator::new(spec, 3).take_requests(100, &Geometry::tiny());
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).expect("write");
        buf.truncate(buf.len() - 5);
        assert!(read_trace(buf.as_slice()).is_err());
    }

    #[test]
    fn record_size_is_compact() {
        let spec = WorkloadSpec::hotcold_demo();
        let t = TraceGenerator::new(spec, 3).take_requests(1000, &Geometry::tiny());
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).expect("write");
        assert!(buf.len() <= 32 + 1000 * RECORD_BYTES);
    }
}
