//! The [`Trace`] container: a named, time-ordered request sequence.

use mempod_types::{MemRequest, PageId, Picos};

/// A multi-programmed memory trace: requests sorted by arrival time.
///
/// # Examples
///
/// ```
/// use mempod_trace::Trace;
/// use mempod_types::{AccessKind, Addr, CoreId, MemRequest, Picos};
///
/// let reqs = vec![MemRequest::new(Addr(0), AccessKind::Read, Picos(5), CoreId(0))];
/// let t = Trace::new("demo", reqs);
/// assert_eq!(t.len(), 1);
/// assert_eq!(t.page_stream()[0].0, 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    name: String,
    requests: Vec<MemRequest>,
}

impl Trace {
    /// Wraps a request vector, sorting it by arrival time if needed.
    pub fn new(name: impl Into<String>, mut requests: Vec<MemRequest>) -> Self {
        if !requests.windows(2).all(|w| w[0].arrival <= w[1].arrival) {
            requests.sort_by_key(|r| r.arrival);
        }
        Trace {
            name: name.into(),
            requests,
        }
    }

    /// The workload name ("gcc", "mix9", ...).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The requests, in arrival order.
    pub fn requests(&self) -> &[MemRequest] {
        &self.requests
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Arrival time of the last request (trace duration).
    pub fn duration(&self) -> Picos {
        self.requests.last().map_or(Picos::ZERO, |r| r.arrival)
    }

    /// The page-id sequence, for the offline tracker studies (§3).
    pub fn page_stream(&self) -> Vec<PageId> {
        self.requests.iter().map(|r| r.addr.page()).collect()
    }

    /// Mean aggregate request rate in requests per microsecond.
    pub fn mean_rate_per_us(&self) -> f64 {
        let d = self.duration().as_us_f64();
        if d == 0.0 {
            0.0
        } else {
            self.len() as f64 / d
        }
    }

    /// Number of distinct pages touched.
    pub fn distinct_pages(&self) -> usize {
        let mut pages: Vec<u64> = self.requests.iter().map(|r| r.addr.page().0).collect();
        pages.sort_unstable();
        pages.dedup();
        pages.len()
    }

    /// Consumes the trace, returning its requests.
    pub fn into_requests(self) -> Vec<MemRequest> {
        self.requests
    }
}

impl Extend<MemRequest> for Trace {
    fn extend<T: IntoIterator<Item = MemRequest>>(&mut self, iter: T) {
        self.requests.extend(iter);
        self.requests.sort_by_key(|r| r.arrival);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempod_types::{AccessKind, Addr, CoreId};

    fn req(t: u64, addr: u64) -> MemRequest {
        MemRequest::new(Addr(addr), AccessKind::Read, Picos(t), CoreId(0))
    }

    #[test]
    fn new_sorts_when_needed() {
        let t = Trace::new("x", vec![req(5, 0), req(1, 64), req(3, 128)]);
        let times: Vec<u64> = t.requests().iter().map(|r| r.arrival.0).collect();
        assert_eq!(times, vec![1, 3, 5]);
    }

    #[test]
    fn stats_helpers() {
        let t = Trace::new(
            "x",
            vec![req(0, 0), req(1_000_000, 2048), req(2_000_000, 2048)],
        );
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.duration(), Picos::from_us(2));
        assert_eq!(t.distinct_pages(), 2);
        assert!((t.mean_rate_per_us() - 1.5).abs() < 1e-9);
        assert_eq!(t.page_stream(), vec![PageId(0), PageId(1), PageId(1)]);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new("empty", vec![]);
        assert!(t.is_empty());
        assert_eq!(t.duration(), Picos::ZERO);
        assert_eq!(t.mean_rate_per_us(), 0.0);
    }

    #[test]
    fn extend_resorts() {
        let mut t = Trace::new("x", vec![req(10, 0)]);
        t.extend(vec![req(5, 64)]);
        assert_eq!(t.requests()[0].arrival, Picos(5));
    }

    #[test]
    fn into_requests_roundtrip() {
        let reqs = vec![req(1, 0), req(2, 64)];
        let t = Trace::new("x", reqs.clone());
        assert_eq!(t.into_requests(), reqs);
    }
}
