//! Regression tests for the lint engine against fixture trees: a clean
//! tree passes, a planted violation is found (and fails the CLI with a
//! JSON report naming file, line, and rule), and the allowlist
//! grandfathers exactly what it names.

use std::path::{Path, PathBuf};
use std::process::Command;

use mempod_audit::{run_lint, Allowlist};

/// Every file the rule set names, with clean placeholder content.
const FIXTURE_FILES: &[&str] = &[
    "crates/dram/src/channel.rs",
    "crates/dram/src/mapper.rs",
    "crates/dram/src/system.rs",
    "crates/sim/src/runner.rs",
    "crates/sim/src/simulator.rs",
    "crates/core/src/manager.rs",
    "crates/core/src/mempod.rs",
    "crates/core/src/hma.rs",
    "crates/core/src/thm.rs",
    "crates/core/src/cameo.rs",
    "crates/telemetry/src/metrics.rs",
    "crates/telemetry/src/ring.rs",
    "crates/telemetry/src/event.rs",
    "crates/telemetry/src/sink.rs",
    "crates/telemetry/src/lib.rs",
    "crates/types/src/addr.rs",
    "crates/types/src/geometry.rs",
];

const CLEAN_STUB: &str = "//! Fixture module.\n\nfn helper() -> u64 {\n    41 + 1\n}\n";

/// Builds a workspace-shaped fixture tree under a unique temp directory.
fn fixture_tree(tag: &str) -> PathBuf {
    let root =
        std::env::temp_dir().join(format!("mempod-audit-fixture-{tag}-{}", std::process::id()));
    if root.exists() {
        std::fs::remove_dir_all(&root).expect("stale fixture removed");
    }
    for rel in FIXTURE_FILES {
        let path = root.join(rel);
        std::fs::create_dir_all(path.parent().expect("has parent")).expect("mkdir");
        std::fs::write(&path, CLEAN_STUB).expect("write stub");
    }
    root
}

fn plant(root: &Path, rel: &str, content: &str) {
    std::fs::write(root.join(rel), content).expect("write fixture");
}

#[test]
fn clean_tree_passes() {
    let root = fixture_tree("clean");
    let report = run_lint(&root, &Allowlist::default());
    assert!(
        report.ok(),
        "clean fixture flagged: {:?}",
        report.violations
    );
    assert!(report.files_scanned >= FIXTURE_FILES.len());
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn planted_unwrap_is_found_with_file_line_and_rule() {
    let root = fixture_tree("unwrap");
    plant(
        &root,
        "crates/dram/src/channel.rs",
        "//! Fixture.\n\nfn bad(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
    );
    let report = run_lint(&root, &Allowlist::default());
    assert!(!report.ok());
    let v = report.blocking().next().expect("one finding");
    assert_eq!(v.file, "crates/dram/src/channel.rs");
    assert_eq!(v.line, 4);
    assert_eq!(v.rule, "hot-path-panic");
    assert!(v.snippet.contains(".unwrap()"));
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn planted_cast_is_found_but_checked_conversion_is_not() {
    let root = fixture_tree("cast");
    plant(
        &root,
        "crates/types/src/addr.rs",
        "//! Fixture.\n\nfn narrow(x: u64) -> u32 {\n    x as u32\n}\n",
    );
    plant(
        &root,
        "crates/types/src/geometry.rs",
        "//! Fixture.\n\nfn widen(x: u32) -> u64 {\n    u64::from(x)\n}\n",
    );
    let report = run_lint(&root, &Allowlist::default());
    let rules: Vec<(&str, &str)> = report
        .blocking()
        .map(|v| (v.file.as_str(), v.rule.as_str()))
        .collect();
    assert_eq!(rules, [("crates/types/src/addr.rs", "lossy-cast")]);
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn planted_println_is_found_in_pipeline_modules() {
    let root = fixture_tree("print");
    plant(
        &root,
        "crates/sim/src/simulator.rs",
        "//! Fixture.\n\nfn chatty() {\n    println!(\"migrated!\");\n}\n",
    );
    plant(
        &root,
        "crates/core/src/hma.rs",
        "//! Fixture.\n\nfn also_chatty() {\n    eprintln!(\"interval done\");\n}\n",
    );
    let report = run_lint(&root, &Allowlist::default());
    assert!(!report.ok());
    let found: Vec<(&str, usize, &str)> = report
        .blocking()
        .map(|v| (v.file.as_str(), v.line, v.rule.as_str()))
        .collect();
    assert_eq!(
        found,
        [
            ("crates/core/src/hma.rs", 4, "hot-path-print"),
            ("crates/sim/src/simulator.rs", 4, "hot-path-print"),
        ],
        "{found:?}"
    );
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn println_in_test_module_is_exempt() {
    let root = fixture_tree("print-test");
    plant(
        &root,
        "crates/telemetry/src/metrics.rs",
        "//! Fixture.\n\nfn fine() {}\n\n#[cfg(test)]\nmod tests {\n    \
         #[test]\n    fn t() {\n        println!(\"debugging a test is fine\");\n    }\n}\n",
    );
    let report = run_lint(&root, &Allowlist::default());
    assert!(
        report.ok(),
        "test-only println flagged: {:?}",
        report.violations
    );
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn cfg_test_regions_are_exempt() {
    let root = fixture_tree("cfgtest");
    plant(
        &root,
        "crates/core/src/mempod.rs",
        "//! Fixture.\n\nfn fine() {}\n\n#[cfg(test)]\nmod tests {\n    \
         #[test]\n    fn t() {\n        Some(1).unwrap();\n    }\n}\n",
    );
    let report = run_lint(&root, &Allowlist::default());
    assert!(
        report.ok(),
        "test-only unwrap flagged: {:?}",
        report.violations
    );
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn undocumented_pub_api_is_flagged() {
    let root = fixture_tree("docs");
    plant(
        &root,
        "crates/core/src/manager.rs",
        "//! Fixture.\n\npub struct Undocumented(u8);\n",
    );
    let report = run_lint(&root, &Allowlist::default());
    let rules: Vec<&str> = report.blocking().map(|v| v.rule.as_str()).collect();
    assert!(rules.contains(&"missing-docs"), "{rules:?}");
    assert!(rules.contains(&"missing-debug"), "{rules:?}");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn allowlist_grandfathers_named_findings_only() {
    let root = fixture_tree("allow");
    plant(
        &root,
        "crates/dram/src/channel.rs",
        "//! Fixture.\n\nfn bad(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
    );
    let allow = Allowlist::from_json(
        r#"[{"file": "crates/dram/src/channel.rs",
             "rule": "hot-path-panic",
             "line_contains": "x.unwrap()"}]"#,
    )
    .expect("valid allowlist");
    let report = run_lint(&root, &allow);
    assert!(report.ok(), "allowlisted finding still blocks");
    assert_eq!(report.violations.len(), 1);
    assert!(report.violations[0].allowed);
    // The same allowlist does not cover a different rule or file.
    assert!(!allow.permits("crates/dram/src/mapper.rs", "hot-path-panic", "x.unwrap()"));
    assert!(!allow.permits("crates/dram/src/channel.rs", "lossy-cast", "x.unwrap()"));
    std::fs::remove_dir_all(&root).ok();
}

/// End-to-end CLI contract: exit 0 + `"ok": true` JSON on a clean tree,
/// exit 1 + a JSON report naming file/line/rule on a violation.
#[test]
fn cli_exit_codes_and_json_report() {
    let bin = env!("CARGO_BIN_EXE_mempod-audit");

    let clean = fixture_tree("cli-clean");
    let out = Command::new(bin)
        .args(["lint", "--root"])
        .arg(&clean)
        .output()
        .expect("run CLI");
    assert!(out.status.success(), "clean tree must exit 0");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"ok\": true"), "{stdout}");
    std::fs::remove_dir_all(&clean).ok();

    let dirty = fixture_tree("cli-dirty");
    plant(
        &dirty,
        "crates/sim/src/runner.rs",
        "//! Fixture.\n\nfn boom() {\n    panic!(\"no\");\n}\n",
    );
    let out = Command::new(bin)
        .args(["lint", "--root"])
        .arg(&dirty)
        .output()
        .expect("run CLI");
    assert_eq!(out.status.code(), Some(1), "violation must exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("crates/sim/src/runner.rs"), "{stdout}");
    assert!(stdout.contains("\"line\": 4"), "{stdout}");
    assert!(stdout.contains("hot-path-panic"), "{stdout}");
    std::fs::remove_dir_all(&dirty).ok();
}
