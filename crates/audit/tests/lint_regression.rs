//! Regression tests for the lint engine against workspace-shaped fixture
//! trees (each crate with a `Cargo.toml`, a `lib.rs`, and modules wired to
//! the simulation entry points, so the derived coverage behaves as it does
//! on the real tree): a clean tree passes, planted violations are found
//! with file/line/rule, lexer edge cases don't confuse the rules, the
//! meta-lint catches a deliberately omitted pipeline module, the derived
//! coverage is a strict superset of the PR 1 hardcoded file lists, and the
//! CLI honors the exit-code contract (0 clean / 1 blocking / 3 stale
//! allowlist) plus the `--write-baseline` → `--deny-new` flow.

use std::path::{Path, PathBuf};
use std::process::Command;

use mempod_audit::callgraph::derive_coverage;
use mempod_audit::lint::{LEGACY_CAST_FILES, LEGACY_HOT_PATH_FILES, LEGACY_PRINT_FILES};
use mempod_audit::{run_lint, Allowlist, Model};

/// Clean module bodies, each exposing a `hook_*` function that
/// `sim_step` (below) calls so every pipeline file is reachable.
const FIXTURE_FILES: &[(&str, &str)] = &[
    (
        "crates/dram/Cargo.toml",
        "[package]\nname = \"mempod-dram\"\n",
    ),
    (
        "crates/dram/src/lib.rs",
        "//! Fixture crate.\npub mod channel;\npub mod mapper;\npub mod system;\n",
    ),
    (
        "crates/dram/src/channel.rs",
        "//! Fixture module.\nfn hook_channel() -> u64 { 41 + 1 }\n",
    ),
    (
        "crates/dram/src/mapper.rs",
        "//! Fixture module.\nfn hook_mapper() -> u64 { 41 + 1 }\n",
    ),
    (
        "crates/dram/src/system.rs",
        "//! Fixture module.\nfn hook_system() -> u64 { 41 + 1 }\n",
    ),
    (
        "crates/sim/Cargo.toml",
        "[package]\nname = \"mempod-sim\"\n",
    ),
    (
        "crates/sim/src/lib.rs",
        "//! Fixture crate.\npub mod runner;\npub mod simulator;\n",
    ),
    (
        "crates/sim/src/runner.rs",
        "//! Fixture module.\npub fn try_run_jobs() { sim_step(); }\n",
    ),
    (
        "crates/sim/src/simulator.rs",
        "//! Fixture module.\npub struct Simulator;\nimpl Simulator {\n    \
         pub fn run(self) { sim_step(); }\n}\nfn sim_step() {\n    \
         hook_channel();\n    hook_mapper();\n    hook_system();\n    \
         hook_manager();\n    hook_mempod();\n    hook_hma();\n    \
         hook_thm();\n    hook_cameo();\n}\n",
    ),
    (
        "crates/core/Cargo.toml",
        "[package]\nname = \"mempod-core\"\n",
    ),
    (
        "crates/core/src/lib.rs",
        "//! Fixture crate.\npub mod cameo;\npub mod hma;\npub mod manager;\n\
         pub mod mempod;\npub mod thm;\n",
    ),
    (
        "crates/core/src/manager.rs",
        "//! Fixture module.\nfn hook_manager() -> u64 { 41 + 1 }\n",
    ),
    (
        "crates/core/src/mempod.rs",
        "//! Fixture module.\nfn hook_mempod() -> u64 { 41 + 1 }\n",
    ),
    (
        "crates/core/src/hma.rs",
        "//! Fixture module.\nfn hook_hma() -> u64 { 41 + 1 }\n",
    ),
    (
        "crates/core/src/thm.rs",
        "//! Fixture module.\nfn hook_thm() -> u64 { 41 + 1 }\n",
    ),
    (
        "crates/core/src/cameo.rs",
        "//! Fixture module.\nfn hook_cameo() -> u64 { 41 + 1 }\n",
    ),
    (
        "crates/telemetry/Cargo.toml",
        "[package]\nname = \"mempod-telemetry\"\n",
    ),
    (
        "crates/telemetry/src/lib.rs",
        "//! Fixture crate.\npub mod metrics;\n",
    ),
    (
        "crates/telemetry/src/metrics.rs",
        "//! Fixture module.\nfn telemetry_note() -> u64 { 41 + 1 }\n",
    ),
    (
        "crates/types/Cargo.toml",
        "[package]\nname = \"mempod-types\"\n",
    ),
    (
        "crates/types/src/lib.rs",
        "//! Fixture crate.\npub mod addr;\npub mod geometry;\n",
    ),
    (
        "crates/types/src/addr.rs",
        "//! Fixture module.\nfn addr_helper() -> u64 { 41 + 1 }\n",
    ),
    (
        "crates/types/src/geometry.rs",
        "//! Fixture module.\nfn geometry_helper() -> u64 { 41 + 1 }\n",
    ),
];

/// Builds a workspace-shaped fixture tree under a unique temp directory.
fn fixture_tree(tag: &str) -> PathBuf {
    let root =
        std::env::temp_dir().join(format!("mempod-audit-fixture-{tag}-{}", std::process::id()));
    if root.exists() {
        std::fs::remove_dir_all(&root).expect("stale fixture removed");
    }
    for (rel, content) in FIXTURE_FILES {
        let path = root.join(rel);
        std::fs::create_dir_all(path.parent().expect("has parent")).expect("mkdir");
        std::fs::write(&path, content).expect("write stub");
    }
    root
}

fn plant(root: &Path, rel: &str, content: &str) {
    std::fs::write(root.join(rel), content).expect("write fixture");
}

#[test]
fn clean_tree_passes() {
    let root = fixture_tree("clean");
    let report = run_lint(&root, &Allowlist::default());
    assert!(
        report.ok(),
        "clean fixture flagged: {:?}",
        report.violations
    );
    assert!(report.files_scanned >= 15);
    assert!(report.roots.contains(&"Simulator::run".to_string()));
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn planted_unwrap_is_found_with_file_line_and_rule() {
    let root = fixture_tree("unwrap");
    plant(
        &root,
        "crates/dram/src/channel.rs",
        "//! Fixture.\n\nfn hook_channel(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
    );
    let report = run_lint(&root, &Allowlist::default());
    assert!(!report.ok());
    let v = report.blocking().next().expect("one finding");
    assert_eq!(v.file, "crates/dram/src/channel.rs");
    assert_eq!(v.line, 4);
    assert_eq!(v.rule, "hot-path-panic");
    assert!(v.snippet.contains(".unwrap()"));
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn planted_cast_is_found_but_checked_conversion_is_not() {
    let root = fixture_tree("cast");
    plant(
        &root,
        "crates/types/src/addr.rs",
        "//! Fixture.\n\nfn narrow(x: u64) -> u32 {\n    x as u32\n}\n",
    );
    plant(
        &root,
        "crates/types/src/geometry.rs",
        "//! Fixture.\n\nfn widen(x: u32) -> u64 {\n    u64::from(x)\n}\n",
    );
    let report = run_lint(&root, &Allowlist::default());
    let rules: Vec<(&str, &str)> = report
        .blocking()
        .map(|v| (v.file.as_str(), v.rule.as_str()))
        .collect();
    assert_eq!(rules, [("crates/types/src/addr.rs", "lossy-cast")]);
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn planted_println_is_found_in_pipeline_and_telemetry_modules() {
    let root = fixture_tree("print");
    plant(
        &root,
        "crates/core/src/hma.rs",
        "//! Fixture.\n\nfn hook_hma() {\n    eprintln!(\"interval done\");\n}\n",
    );
    // Telemetry is print-covered in full by policy, reachable or not.
    plant(
        &root,
        "crates/telemetry/src/metrics.rs",
        "//! Fixture.\n\nfn chatty() {\n    println!(\"migrated!\");\n}\n",
    );
    let report = run_lint(&root, &Allowlist::default());
    let found: Vec<(&str, usize, &str)> = report
        .blocking()
        .map(|v| (v.file.as_str(), v.line, v.rule.as_str()))
        .collect();
    assert_eq!(
        found,
        [
            ("crates/core/src/hma.rs", 4, "hot-path-print"),
            ("crates/telemetry/src/metrics.rs", 4, "hot-path-print"),
        ],
        "{found:?}"
    );
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn cfg_test_regions_are_exempt() {
    let root = fixture_tree("cfgtest");
    plant(
        &root,
        "crates/core/src/mempod.rs",
        "//! Fixture.\n\nfn hook_mempod() {}\n\n#[cfg(test)]\nmod tests {\n    \
         #[test]\n    fn t() {\n        println!(\"{}\", Some(1).unwrap());\n    }\n}\n",
    );
    let report = run_lint(&root, &Allowlist::default());
    assert!(
        report.ok(),
        "test-only unwrap/println flagged: {:?}",
        report.violations
    );
    std::fs::remove_dir_all(&root).ok();
}

/// Satellite: `#[cfg(test)]` attribution on *nested* modules and on impl
/// blocks — exercised through a full fixture tree, not just the parser.
#[test]
fn cfg_test_on_nested_modules_and_impl_blocks_is_exempt() {
    let root = fixture_tree("cfgtest-nested");
    plant(
        &root,
        "crates/core/src/thm.rs",
        "//! Fixture.\n\nfn hook_thm() {}\n\nmod outer {\n    \
         #[cfg(test)]\n    mod inner {\n        fn t(x: Option<u8>) -> u8 { x.unwrap() }\n    }\n}\n\
         \nstruct Probe;\n\n#[cfg(test)]\nimpl Probe {\n    \
         fn check(x: Option<u8>) -> u8 {\n        x.expect(\"test-only\")\n    }\n}\n",
    );
    let report = run_lint(&root, &Allowlist::default());
    assert!(
        report.ok(),
        "cfg(test) nested mod / impl flagged: {:?}",
        report.violations
    );
    std::fs::remove_dir_all(&root).ok();
}

/// Satellite: raw strings and nested block comments must be opaque to the
/// rules — panicking constructs *inside literals or comments* are text.
#[test]
fn raw_strings_and_nested_comments_hide_rule_patterns() {
    let root = fixture_tree("lexer-edges");
    plant(
        &root,
        "crates/dram/src/mapper.rs",
        "//! Fixture.\n\nfn hook_mapper() -> &'static str {\n    \
         r#\"docs say: never x.unwrap() or panic!(\"boom\") here\"#\n}\n\n\
         /* outer /* println!(\"nested comment\") */ still a comment */\n\
         fn quiet() {}\n",
    );
    let report = run_lint(&root, &Allowlist::default());
    assert!(
        report.ok(),
        "literal/comment content flagged: {:?}",
        report.violations
    );
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn undocumented_pub_api_is_flagged() {
    let root = fixture_tree("docs");
    plant(
        &root,
        "crates/core/src/manager.rs",
        "//! Fixture.\n\nfn hook_manager() {}\n\npub struct Undocumented(u8);\n",
    );
    let report = run_lint(&root, &Allowlist::default());
    let rules: Vec<&str> = report.blocking().map(|v| v.rule.as_str()).collect();
    assert!(rules.contains(&"missing-docs"), "{rules:?}");
    assert!(rules.contains(&"missing-debug"), "{rules:?}");
    std::fs::remove_dir_all(&root).ok();
}

/// Satellite: the `coverage-gap` meta-lint catches a pipeline module that
/// is wired into the module tree but deliberately omitted from the call
/// graph — the failure mode that silently rotted PR 1's hardcoded lists.
#[test]
fn deliberately_omitted_pipeline_module_fails_the_meta_lint() {
    let root = fixture_tree("omitted");
    plant(
        &root,
        "crates/core/src/lib.rs",
        "//! Fixture crate.\npub mod cameo;\npub mod hma;\npub mod manager;\n\
         pub mod mempod;\npub mod orphaned;\npub mod thm;\n",
    );
    plant(
        &root,
        "crates/core/src/orphaned.rs",
        "//! A migration helper nobody calls.\nfn plan_migration() -> u64 { 7 }\n",
    );
    let report = run_lint(&root, &Allowlist::default());
    let gaps: Vec<&str> = report
        .blocking()
        .filter(|v| v.rule == "coverage-gap")
        .map(|v| v.file.as_str())
        .collect();
    assert_eq!(
        gaps,
        ["crates/core/src/orphaned.rs"],
        "{:?}",
        report.violations
    );
    // The orphan is also excluded from the derived hot set.
    assert!(!report.coverage.hot.contains("crates/core/src/orphaned.rs"));
    std::fs::remove_dir_all(&root).ok();
}

/// Acceptance: on the real workspace, the derived coverage is a strict
/// superset of every file PR 1 hardcoded — the derivation may only ever
/// widen coverage.
#[test]
fn derived_coverage_supersets_legacy_hardcoded_lists() {
    let real_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf();
    let model = Model::build(&real_root).expect("real workspace model");
    let cov = derive_coverage(&model);
    for f in LEGACY_HOT_PATH_FILES {
        assert!(cov.hot.contains(*f), "hot set lost legacy file {f}");
    }
    for f in LEGACY_PRINT_FILES {
        assert!(cov.print.contains(*f), "print set lost legacy file {f}");
    }
    for f in LEGACY_CAST_FILES {
        assert!(cov.cast.contains(*f), "cast set lost legacy file {f}");
    }
    // Strictness: the derivation reaches files the hardcoded lists missed.
    for f in [
        "crates/core/src/migration.rs",
        "crates/core/src/remap.rs",
        "crates/core/src/segment.rs",
    ] {
        assert!(cov.hot.contains(f), "derived hot set must include {f}");
    }
    assert!(cov.hot.len() > LEGACY_HOT_PATH_FILES.len());
    assert!(cov.print.len() > LEGACY_PRINT_FILES.len());
    assert!(cov.cast.len() > LEGACY_CAST_FILES.len());
}

#[test]
fn allowlist_grandfathers_named_findings_only() {
    let root = fixture_tree("allow");
    plant(
        &root,
        "crates/dram/src/channel.rs",
        "//! Fixture.\n\nfn hook_channel(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
    );
    let allow = Allowlist::from_json(
        r#"[{"file": "crates/dram/src/channel.rs",
             "rule": "hot-path-panic",
             "line_contains": "x.unwrap()"}]"#,
    )
    .expect("valid allowlist");
    let report = run_lint(&root, &allow);
    assert!(report.ok(), "allowlisted finding still blocks");
    assert_eq!(report.violations.len(), 1);
    assert!(report.violations[0].allowed);
    // The same allowlist does not cover a different rule or file.
    assert!(!allow.permits("crates/dram/src/mapper.rs", "hot-path-panic", "x.unwrap()"));
    assert!(!allow.permits("crates/dram/src/channel.rs", "lossy-cast", "x.unwrap()"));
    std::fs::remove_dir_all(&root).ok();
}

/// Satellite: an allowlist entry matching nothing is itself an error —
/// exemptions must not outlive their violations.
#[test]
fn unused_allowlist_entry_blocks_an_otherwise_clean_tree() {
    let root = fixture_tree("stale-allow");
    let allow = Allowlist::from_json(
        r#"[{"file": "crates/dram/src/channel.rs",
             "rule": "hot-path-panic",
             "line_contains": "long_since_fixed()"}]"#,
    )
    .expect("valid allowlist");
    let report = run_lint(&root, &allow);
    assert_eq!(report.blocking().count(), 0);
    assert_eq!(report.stale_allowlist.len(), 1);
    assert!(report.stale_allowlist[0].contains("long_since_fixed"));
    assert!(!report.ok(), "stale allowlist must fail the run");
    std::fs::remove_dir_all(&root).ok();
}

/// End-to-end CLI contract: exit 0 + `"ok": true` JSON on a clean tree,
/// exit 1 + a JSON report naming file/line/rule on a violation, exit 3
/// when the only problem is a stale allowlist entry.
#[test]
fn cli_exit_codes_and_json_report() {
    let bin = env!("CARGO_BIN_EXE_mempod-audit");

    let clean = fixture_tree("cli-clean");
    let out = Command::new(bin)
        .args(["lint", "--root"])
        .arg(&clean)
        .output()
        .expect("run CLI");
    assert!(out.status.success(), "clean tree must exit 0");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"ok\": true"), "{stdout}");
    std::fs::remove_dir_all(&clean).ok();

    let dirty = fixture_tree("cli-dirty");
    plant(
        &dirty,
        "crates/sim/src/runner.rs",
        "//! Fixture.\n\npub fn try_run_jobs() {\n    panic!(\"no\");\n}\n",
    );
    let out = Command::new(bin)
        .args(["lint", "--root"])
        .arg(&dirty)
        .output()
        .expect("run CLI");
    assert_eq!(out.status.code(), Some(1), "violation must exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("crates/sim/src/runner.rs"), "{stdout}");
    assert!(stdout.contains("\"line\": 4"), "{stdout}");
    assert!(stdout.contains("hot-path-panic"), "{stdout}");
    std::fs::remove_dir_all(&dirty).ok();

    let stale = fixture_tree("cli-stale");
    std::fs::write(
        stale.join("audit.allowlist.json"),
        r#"[{"file": "crates/dram/src/channel.rs",
             "rule": "hot-path-panic",
             "line_contains": "long_since_fixed()"}]"#,
    )
    .expect("write allowlist");
    let out = Command::new(bin)
        .args(["lint", "--root"])
        .arg(&stale)
        .output()
        .expect("run CLI");
    assert_eq!(
        out.status.code(),
        Some(3),
        "stale allowlist alone must exit 3: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_dir_all(&stale).ok();
}

/// End-to-end `--deny-new` flow: freeze existing debt with
/// `--write-baseline`, pass under `--deny-new`, then fail once a *new*
/// finding appears.
#[test]
fn cli_baseline_freezes_debt_and_denies_new_findings() {
    let bin = env!("CARGO_BIN_EXE_mempod-audit");
    let root = fixture_tree("cli-baseline");
    plant(
        &root,
        "crates/dram/src/channel.rs",
        "//! Fixture.\n\nfn hook_channel(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
    );

    // Without a baseline: blocking.
    let out = Command::new(bin)
        .args(["lint", "--root"])
        .arg(&root)
        .output()
        .expect("run CLI");
    assert_eq!(out.status.code(), Some(1));

    // Freeze the debt.
    let out = Command::new(bin)
        .args(["lint", "--write-baseline", "--root"])
        .arg(&root)
        .output()
        .expect("run CLI");
    assert!(out.status.success(), "--write-baseline must exit 0");
    assert!(root.join("audit.baseline.json").is_file());

    // Frozen debt passes under --deny-new.
    let out = Command::new(bin)
        .args(["lint", "--deny-new", "--root"])
        .arg(&root)
        .output()
        .expect("run CLI");
    assert!(
        out.status.success(),
        "baselined debt must pass --deny-new: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // A new finding still fails.
    plant(
        &root,
        "crates/dram/src/system.rs",
        "//! Fixture.\n\nfn hook_system(y: Option<u32>) -> u32 {\n    y.expect(\"fresh debt\")\n}\n",
    );
    let out = Command::new(bin)
        .args(["lint", "--deny-new", "--root"])
        .arg(&root)
        .output()
        .expect("run CLI");
    assert_eq!(
        out.status.code(),
        Some(1),
        "new finding must fail --deny-new"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("crates/dram/src/system.rs"), "{stderr}");
    std::fs::remove_dir_all(&root).ok();
}
