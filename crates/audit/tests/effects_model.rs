//! Integration tests for the field-level effect analysis: fixture trees
//! with known read/write sets classify as expected, the committed
//! `shard_safety.json` snapshot matches what the analysis computes for
//! the real workspace (so class regressions are caught at test time, not
//! just in CI), and a property test pins the transitive-summary
//! invariant: every function's summary is a superset of its direct
//! effects, and calling a writer inherits the write.

use std::path::{Path, PathBuf};

use mempod_audit::effects::{analyze, ShardClass};
use mempod_audit::Model;
use proptest::prelude::*;

/// Builds a workspace-shaped fixture tree under a unique temp dir.
fn fixture_tree(tag: &str, files: &[(&str, String)]) -> PathBuf {
    let root = std::env::temp_dir().join(format!("mempod-effects-it-{tag}-{}", std::process::id()));
    if root.exists() {
        std::fs::remove_dir_all(&root).expect("stale fixture removed");
    }
    for (rel, content) in files {
        let path = root.join(rel);
        std::fs::create_dir_all(path.parent().expect("has parent")).expect("mkdir");
        std::fs::write(&path, content).expect("write fixture");
    }
    root
}

/// A one-crate sim workspace whose `simulator.rs` is the given source.
fn sim_workspace(simulator: &str) -> Vec<(&'static str, String)> {
    vec![
        (
            "crates/sim/Cargo.toml",
            "[package]\nname = \"mempod-sim\"\n".to_string(),
        ),
        (
            "crates/sim/src/lib.rs",
            "//! Fixture crate.\npub mod simulator;\n".to_string(),
        ),
        ("crates/sim/src/simulator.rs", simulator.to_string()),
    ]
}

/// Known read/write sets over a miniature simulator: tick-written
/// singleton state is cross-shard, per-channel state behind `Vec<Channel>`
/// is shard-local, epoch-only state is epoch-barrier-only, and a shared
/// handle is cross-shard no matter who writes it.
#[test]
fn fixture_classifications_match_known_effects() {
    let src = "\
//! Fixture module.
pub struct Channel { queue: Vec<u64>, now: u64 }
impl Channel {
    pub fn enqueue(&mut self) { self.queue.push(1); }
    pub fn tick(&mut self) { self.now += 1; }
}
pub struct Mem { channels: Vec<Channel> }
pub struct Simulator {
    mem: Mem,
    total_stall: u64,
    epoch_len: u64,
    prev_requests: u64,
    progress: Option<Arc<AtomicU64>>,
}
impl Simulator {
    pub fn run(&mut self) {
        self.total_stall += 1;
        let _ = self.epoch_len;
        self.observe();
    }
    fn observe(&mut self) { self.prev_requests += 1; }
}
";
    let root = fixture_tree("classes", &sim_workspace(src));
    let model = Model::build(&root).expect("model");
    let report = analyze(&model);
    std::fs::remove_dir_all(&root).ok();

    let classes = report.classes();
    let get = |t: &str, f: &str| classes[&(t.to_string(), f.to_string())];
    // Tick-written singleton state couples shards.
    assert_eq!(get("Simulator", "total_stall"), ShardClass::CrossShard);
    // Read-only config never couples anything.
    assert_eq!(get("Simulator", "epoch_len"), ShardClass::ShardLocal);
    // Written only behind the epoch barrier (`observe`).
    assert_eq!(
        get("Simulator", "prev_requests"),
        ShardClass::EpochBarrierOnly
    );
    // Shared handles are cross-shard by construction.
    assert_eq!(get("Simulator", "progress"), ShardClass::CrossShard);
    // Channel lives in Vec<Channel>: replicated, so tick writes stay local.
    assert!(report.replicated.contains("Channel"));
    assert_eq!(get("Channel", "queue"), ShardClass::ShardLocal);
    assert_eq!(get("Channel", "now"), ShardClass::ShardLocal);
}

/// Acceptance: the committed `shard_safety.json` matches what the
/// analysis computes for the real workspace, field for field. If this
/// fails, regenerate the snapshot with
/// `cargo run -p mempod-audit -- effects` and review the class diffs —
/// a field moving towards `cross-shard` is new shard coupling.
#[test]
fn committed_snapshot_matches_real_workspace() {
    let real_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf();
    let snapshot_path = real_root.join("shard_safety.json");
    let text = std::fs::read_to_string(&snapshot_path)
        .expect("shard_safety.json is committed at the workspace root");
    let snapshot: serde_json::Value = serde_json::from_str(&text).expect("snapshot parses");

    let model = Model::build(&real_root).expect("real workspace model");
    let report = analyze(&model);
    let computed = report.classes();

    // Every snapshot field matches the computed class, and vice versa.
    let mut snap_fields = std::collections::BTreeMap::new();
    for t in snapshot["types"].as_array().expect("types array") {
        let tname = t["name"].as_str().expect("type name").to_string();
        for f in t["fields"].as_array().expect("fields array") {
            let fname = f["name"].as_str().expect("field name").to_string();
            let class = f["class"].as_str().expect("field class").to_string();
            snap_fields.insert((tname.clone(), fname), class);
        }
    }
    let computed: std::collections::BTreeMap<_, _> = computed
        .into_iter()
        .map(|(k, v)| (k, v.as_str().to_string()))
        .collect();
    assert_eq!(
        computed, snap_fields,
        "shard_safety.json is stale; regenerate with \
         `cargo run -p mempod-audit -- effects` and review the diff"
    );
}

/// Generates a call chain `f0 -> f1 -> … -> f{n-1}` where `salt` decides
/// which links exist; every `fi` writes its own field `wi`.
fn chain_source(n: usize, salt: u64) -> String {
    let mut fields = String::new();
    for i in 0..n {
        fields.push_str(&format!("w{i}: u64, "));
    }
    let mut fns = String::new();
    for i in 0..n {
        let call = if i + 1 < n && (salt >> i) & 1 == 1 {
            format!("self.f{}();", i + 1)
        } else {
            String::new()
        };
        fns.push_str(&format!(
            "    pub fn f{i}(&mut self) {{ self.w{i} += 1; {call} }}\n"
        ));
    }
    format!(
        "//! Fixture module.\npub struct Simulator {{ {fields} }}\n\
         impl Simulator {{\n    pub fn run(&mut self) {{ self.f0(); }}\n{fns}}}\n"
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For any chain shape, every function's transitive summary is a
    /// superset of its direct effects, and each link in the chain
    /// propagates the callee's write into the caller's summary.
    #[test]
    fn transitive_summaries_are_supersets_of_direct_effects(
        n in 2usize..6,
        salt in 0u64..32,
    ) {
        let src = chain_source(n, salt);
        let root = fixture_tree(&format!("prop-{n}-{salt}"), &sim_workspace(&src));
        let model = Model::build(&root).expect("model");
        let report = analyze(&model);
        std::fs::remove_dir_all(&root).ok();

        for (id, direct) in &report.direct {
            let sum = report.summary.get(id).expect("summary for every fn");
            prop_assert!(
                direct.writes.is_subset(&sum.writes),
                "summary lost a direct write: {direct:?} vs {sum:?}"
            );
            prop_assert!(
                direct.reads.is_subset(&sum.reads),
                "summary lost a direct read: {direct:?} vs {sum:?}"
            );
        }
        // Each chain link salt enables must carry the callee's write into
        // the caller's summary: find fi's summary through its unique
        // direct write wi.
        let key = |i: usize| ("Simulator".to_string(), format!("w{i}"));
        for i in 0..n - 1 {
            if (salt >> i) & 1 == 0 {
                continue;
            }
            let caller = report
                .direct
                .iter()
                .find(|(_, e)| e.writes.contains(&key(i)))
                .map(|(id, _)| id)
                .expect("fi writes wi directly");
            prop_assert!(
                report.summary[caller].writes.contains(&key(i + 1)),
                "f{i} calls f{} but its summary lacks w{}",
                i + 1,
                i + 1
            );
        }
    }
}
