//! Item-level parser: extracts `fn`/`impl`/`mod`/`use`/type items from the
//! token stream produced by [`crate::lexer`].
//!
//! This is not a full Rust parser — it recognizes item *heads* and brace
//! structure, which is all the lint rules, the module graph, and the
//! approximate call graph need. Items carry their byte spans, containing
//! module path, `#[cfg(test)]` attribution (direct or inherited from an
//! enclosing `mod`/`impl`), doc-comment presence, attributes, and — for
//! functions — the return-type text and body span.

use crate::lexer::{tokenize, Token, TokenKind};

/// What kind of item a parsed declaration is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// A function (free, method, or trait default/required method).
    Fn,
    /// An inline module (`mod m { … }`).
    ModInline,
    /// A file-backed module declaration (`mod m;`).
    ModDecl,
    /// An `impl` block (inherent or trait).
    Impl,
    /// A `use` declaration.
    Use,
    /// `struct`/`union` declaration.
    Struct,
    /// `enum` declaration.
    Enum,
    /// `trait` declaration.
    Trait,
    /// `const` or `static` item.
    Const,
    /// `type` alias.
    TypeAlias,
    /// A `macro_rules!` definition (exempt region for pattern rules).
    MacroRules,
}

/// One parsed item.
#[derive(Debug, Clone)]
pub struct Item {
    /// The item kind.
    pub kind: ItemKind,
    /// Bare name (`run`, `Simulator`, …); for `use`, the full path text.
    pub name: String,
    /// Qualified name: `Type::method` for impl/trait members, otherwise
    /// the bare name.
    pub qual: String,
    /// `::`-joined inline-module path within the file (empty at top level).
    pub module_path: String,
    /// For `impl` blocks, the trait being implemented (`Debug` in
    /// `impl fmt::Debug for X`), if any.
    pub trait_name: Option<String>,
    /// Whether the item is `pub` (any visibility qualifier counts).
    pub vis_pub: bool,
    /// Whether the item is under `#[cfg(test)]`, directly or inherited.
    pub cfg_test: bool,
    /// Whether a doc comment (or `#[doc…]`) immediately precedes it.
    pub has_doc: bool,
    /// Raw text of each attribute on the item (inherited ones excluded).
    pub attrs: Vec<String>,
    /// Whether the item carries `#[must_use]`.
    pub must_use: bool,
    /// For functions: the return-type text after `->` (None for `()`).
    pub ret: Option<String>,
    /// Byte span of the whole item, attributes included.
    pub span: (usize, usize),
    /// Byte span of the `{…}` body contents, braces excluded.
    pub body: Option<(usize, usize)>,
    /// Token-index range of the body contents in [`ParsedFile::tokens`].
    pub body_tokens: Option<(usize, usize)>,
    /// 1-based line of the item head.
    pub line: u32,
}

/// One parsed source file.
#[derive(Debug, Clone)]
pub struct ParsedFile {
    /// The raw source.
    pub src: String,
    /// Its token stream.
    pub tokens: Vec<Token>,
    /// Every item, in source order, flattened across modules/impls.
    pub items: Vec<Item>,
}

impl ParsedFile {
    /// Parses `src`.
    pub fn parse(src: &str) -> ParsedFile {
        let tokens = tokenize(src);
        let mut items = Vec::new();
        let mut p = Parser {
            src,
            tokens: &tokens,
            i: 0,
            out: &mut items,
        };
        p.items(&Ctx::default(), usize::MAX);
        ParsedFile {
            src: src.to_string(),
            tokens,
            items,
        }
    }

    /// File-backed module declarations (`mod m;`), with their test flag.
    pub fn mod_decls(&self) -> impl Iterator<Item = &Item> {
        self.items.iter().filter(|it| it.kind == ItemKind::ModDecl)
    }

    /// Byte ranges every pattern rule exempts: `#[cfg(test)]` items and
    /// `macro_rules!` bodies.
    pub fn exempt_ranges(&self) -> Vec<(usize, usize)> {
        self.items
            .iter()
            .filter(|it| it.cfg_test || it.kind == ItemKind::MacroRules)
            .map(|it| it.span)
            .collect()
    }

    /// Whether byte offset `pos` falls in an exempt range.
    pub fn is_exempt(&self, ranges: &[(usize, usize)], pos: usize) -> bool {
        ranges.iter().any(|&(s, e)| pos >= s && pos < e)
    }

    /// The trimmed source line containing byte offset `pos`.
    pub fn snippet_at(&self, pos: usize) -> String {
        let start = self.src[..pos].rfind('\n').map_or(0, |p| p + 1);
        let end = self.src[pos..]
            .find('\n')
            .map_or(self.src.len(), |p| pos + p);
        self.src[start..end].trim().to_string()
    }
}

/// Inherited context while descending into `mod`/`impl`/`trait` bodies.
#[derive(Debug, Clone, Default)]
struct Ctx {
    module_path: String,
    self_type: Option<String>,
    cfg_test: bool,
}

struct Parser<'a> {
    src: &'a str,
    tokens: &'a [Token],
    i: usize,
    out: &'a mut Vec<Item>,
}

/// Keywords that can prefix an item head before the defining keyword.
const MODIFIERS: &[&str] = &["unsafe", "async", "extern", "default"];

impl Parser<'_> {
    fn peek(&self, ahead: usize) -> Option<&Token> {
        self.tokens.get(self.i + ahead)
    }

    fn text(&self, t: &Token) -> &str {
        t.text(self.src)
    }

    /// Parses items until token index `stop` (exclusive) or a closing `}`.
    fn items(&mut self, ctx: &Ctx, stop: usize) {
        while self.i < self.tokens.len().min(stop) {
            let before = self.i;
            self.item(ctx, stop);
            if self.i == before {
                self.i += 1; // never wedge on unrecognized input
            }
        }
    }

    /// Attempts to parse one item at the cursor.
    fn item(&mut self, ctx: &Ctx, stop: usize) {
        let start_tok = self.i;
        let mut has_doc = false;
        let mut attrs: Vec<String> = Vec::new();

        // Doc comments and attributes, in any interleaving.
        loop {
            match self.peek(0) {
                Some(t) if matches!(t.kind, TokenKind::DocOuter | TokenKind::DocInner) => {
                    has_doc = true;
                    self.i += 1;
                }
                Some(t) if t.is_punct(self.src, "#") => {
                    let attr_start = self.i;
                    self.i += 1;
                    if self.peek(0).is_some_and(|t| t.is_punct(self.src, "!")) {
                        self.i += 1; // inner attribute `#![…]`
                    }
                    if self.peek(0).is_some_and(|t| t.is_punct(self.src, "[")) {
                        let close = self.matching(self.i, "[", "]");
                        let text = self.span_text(attr_start, close + 1);
                        if text.starts_with("#[doc") {
                            has_doc = true;
                        }
                        attrs.push(text);
                        self.i = close + 1;
                    }
                }
                _ => break,
            }
        }

        // Visibility and modifiers.
        let mut vis_pub = false;
        if self.peek(0).is_some_and(|t| t.is_ident(self.src, "pub")) {
            vis_pub = true;
            self.i += 1;
            if self.peek(0).is_some_and(|t| t.is_punct(self.src, "(")) {
                self.i = self.matching(self.i, "(", ")") + 1; // pub(crate) etc.
            }
        }
        while let Some(t) = self.peek(0) {
            let txt = self.text(t).to_string();
            if MODIFIERS.contains(&txt.as_str()) {
                self.i += 1;
                if txt == "extern" && self.peek(0).is_some_and(|t| t.kind == TokenKind::Str) {
                    self.i += 1; // extern "C"
                }
            } else {
                break;
            }
        }

        let cfg_test = ctx.cfg_test || attrs.iter().any(|a| is_cfg_test(a));
        let must_use = attrs.iter().any(|a| a.starts_with("#[must_use"));
        let Some(kw_tok) = self.peek(0) else { return };
        let line = kw_tok.line;
        let kw = self.text(kw_tok).to_string();

        let common =
            |kind: ItemKind, name: String, qual: String, ret, span, body, body_tokens| Item {
                kind,
                name,
                qual,
                module_path: ctx.module_path.clone(),
                trait_name: None,
                vis_pub,
                cfg_test,
                has_doc,
                attrs: attrs.clone(),
                must_use,
                ret,
                span,
                body,
                body_tokens,
                line,
            };
        let span_from = self.tokens.get(start_tok).map_or(0, |t| t.start);

        match kw.as_str() {
            "fn" => {
                self.i += 1;
                let Some(name) = self.ident_at(0) else { return };
                self.i += 1;
                // Signature: scan to the body `{`, a `;` (trait method), or
                // `where`; capture the return type after `->`.
                let mut ret: Option<String> = None;
                let mut ret_from: Option<usize> = None;
                let mut depth = 0i32;
                while let Some(t) = self.peek(0) {
                    let txt = self.text(t);
                    match txt {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "->" if depth == 0 => ret_from = Some(self.i + 1),
                        "{" | ";" if depth == 0 => break,
                        "where" if depth == 0 && t.kind == TokenKind::Ident => {
                            if let (Some(from), None) = (ret_from, ret.as_ref()) {
                                ret = Some(self.span_text(from, self.i));
                            }
                        }
                        _ => {}
                    }
                    self.i += 1;
                }
                if let (Some(from), None) = (ret_from, ret.as_ref()) {
                    ret = Some(self.span_text(from, self.i));
                }
                let ret = ret.map(|r| r.trim().to_string()).filter(|r| !r.is_empty());
                let qual = match &ctx.self_type {
                    Some(ty) => format!("{ty}::{name}"),
                    None => name.clone(),
                };
                let (span_end, body, body_tokens) =
                    if self.peek(0).is_some_and(|t| t.is_punct(self.src, "{")) {
                        let open = self.i;
                        let close = self.matching(open, "{", "}");
                        self.i = close + 1;
                        (
                            self.tok_end(close),
                            Some((self.tok_end(open), self.tok_start(close))),
                            Some((open + 1, close)),
                        )
                    } else {
                        self.i += 1; // the `;`
                        (self.tok_end(self.i.saturating_sub(1)), None, None)
                    };
                self.out.push(common(
                    ItemKind::Fn,
                    name,
                    qual,
                    ret,
                    (span_from, span_end),
                    body,
                    body_tokens,
                ));
            }
            "mod" => {
                self.i += 1;
                let Some(name) = self.ident_at(0) else { return };
                self.i += 1;
                if self.peek(0).is_some_and(|t| t.is_punct(self.src, "{")) {
                    let open = self.i;
                    let close = self.matching(open, "{", "}");
                    self.out.push(common(
                        ItemKind::ModInline,
                        name.clone(),
                        name.clone(),
                        None,
                        (span_from, self.tok_end(close)),
                        Some((self.tok_end(open), self.tok_start(close))),
                        Some((open + 1, close)),
                    ));
                    let sub = Ctx {
                        module_path: join_path(&ctx.module_path, &name),
                        self_type: None,
                        cfg_test,
                    };
                    self.i = open + 1;
                    self.items(&sub, close);
                    self.i = close + 1;
                } else {
                    self.i += 1; // the `;`
                    self.out.push(common(
                        ItemKind::ModDecl,
                        name.clone(),
                        name,
                        None,
                        (span_from, self.tok_end(self.i.saturating_sub(1))),
                        None,
                        None,
                    ));
                }
            }
            "impl" => {
                self.i += 1;
                // Skip generics on `impl<…>`.
                if self.peek(0).is_some_and(|t| t.is_punct(self.src, "<")) {
                    self.skip_angles();
                }
                // Collect path segments until `{`; a `for` splits trait
                // from self type.
                let mut before_for: Vec<String> = Vec::new();
                let mut after_for: Vec<String> = Vec::new();
                let mut seen_for = false;
                while let Some(t) = self.peek(0) {
                    if t.is_punct(self.src, "{") {
                        break;
                    }
                    if t.is_ident(self.src, "for") {
                        seen_for = true;
                    } else if t.is_ident(self.src, "where") {
                        // Skip the where clause (runs to the `{`).
                    } else if t.kind == TokenKind::Ident {
                        let txt = self.text(t).to_string();
                        if seen_for {
                            after_for.push(txt);
                        } else {
                            before_for.push(txt);
                        }
                    } else if t.is_punct(self.src, "<") {
                        self.skip_angles();
                        continue;
                    }
                    self.i += 1;
                }
                let self_type = if seen_for { &after_for } else { &before_for };
                let name = self_type.last().cloned().unwrap_or_default();
                let trait_name = seen_for.then(|| before_for.last().cloned()).flatten();
                if !self.peek(0).is_some_and(|t| t.is_punct(self.src, "{")) {
                    return;
                }
                let open = self.i;
                let close = self.matching(open, "{", "}");
                let mut item = common(
                    ItemKind::Impl,
                    name.clone(),
                    name.clone(),
                    None,
                    (span_from, self.tok_end(close)),
                    Some((self.tok_end(open), self.tok_start(close))),
                    Some((open + 1, close)),
                );
                item.trait_name = trait_name;
                self.out.push(item);
                let sub = Ctx {
                    module_path: ctx.module_path.clone(),
                    self_type: Some(name),
                    cfg_test,
                };
                self.i = open + 1;
                self.items(&sub, close);
                self.i = close + 1;
            }
            "trait" => {
                self.i += 1;
                let Some(name) = self.ident_at(0) else { return };
                self.i += 1;
                while let Some(t) = self.peek(0) {
                    if t.is_punct(self.src, "{") {
                        break;
                    }
                    if t.is_punct(self.src, "<") {
                        self.skip_angles();
                    } else {
                        self.i += 1;
                    }
                }
                if !self.peek(0).is_some_and(|t| t.is_punct(self.src, "{")) {
                    return;
                }
                let open = self.i;
                let close = self.matching(open, "{", "}");
                self.out.push(common(
                    ItemKind::Trait,
                    name.clone(),
                    name.clone(),
                    None,
                    (span_from, self.tok_end(close)),
                    Some((self.tok_end(open), self.tok_start(close))),
                    Some((open + 1, close)),
                ));
                let sub = Ctx {
                    module_path: ctx.module_path.clone(),
                    self_type: Some(name),
                    cfg_test,
                };
                self.i = open + 1;
                self.items(&sub, close);
                self.i = close + 1;
            }
            "struct" | "union" | "enum" => {
                let kind = if kw == "enum" {
                    ItemKind::Enum
                } else {
                    ItemKind::Struct
                };
                self.i += 1;
                let Some(name) = self.ident_at(0) else { return };
                self.i += 1;
                // Runs to `;` (unit/tuple struct) or a `{…}` body. The body
                // span is recorded so the effect analysis can read the field
                // declarations back out of the token stream.
                let mut end = self.i;
                let mut body: Option<(usize, usize)> = None;
                let mut body_tokens: Option<(usize, usize)> = None;
                while let Some(t) = self.peek(0) {
                    if t.is_punct(self.src, "{") {
                        let open = self.i;
                        let close = self.matching(open, "{", "}");
                        self.i = close + 1;
                        end = close;
                        body = Some((self.tok_end(open), self.tok_start(close)));
                        body_tokens = Some((open + 1, close));
                        break;
                    }
                    if t.is_punct(self.src, "(") {
                        self.i = self.matching(self.i, "(", ")") + 1;
                        continue;
                    }
                    if t.is_punct(self.src, ";") {
                        end = self.i;
                        self.i += 1;
                        break;
                    }
                    if t.is_punct(self.src, "<") {
                        self.skip_angles();
                        continue;
                    }
                    self.i += 1;
                    end = self.i;
                }
                self.out.push(common(
                    kind,
                    name.clone(),
                    name,
                    None,
                    (span_from, self.tok_end(end.min(self.tokens.len() - 1))),
                    body,
                    body_tokens,
                ));
            }
            "use" => {
                self.i += 1;
                let from = self.i;
                while let Some(t) = self.peek(0) {
                    if t.is_punct(self.src, ";") {
                        break;
                    }
                    if t.is_punct(self.src, "{") {
                        self.i = self.matching(self.i, "{", "}") + 1;
                        continue;
                    }
                    self.i += 1;
                }
                let path = self.span_text(from, self.i);
                let end = self.tok_end(self.i.min(self.tokens.len().saturating_sub(1)));
                self.i += 1;
                self.out.push(common(
                    ItemKind::Use,
                    path.clone(),
                    path,
                    None,
                    (span_from, end),
                    None,
                    None,
                ));
            }
            "const" | "static" => {
                // `const fn` is a function; re-dispatch.
                if self.peek(1).is_some_and(|t| t.is_ident(self.src, "fn"))
                    || self.peek(1).is_some_and(|t| t.is_ident(self.src, "unsafe"))
                {
                    self.i += 1;
                    self.dispatch_fn_like(ctx, start_tok, has_doc, attrs, vis_pub, cfg_test);
                    return;
                }
                self.i += 1;
                if self.peek(0).is_some_and(|t| t.is_ident(self.src, "mut")) {
                    self.i += 1;
                }
                let Some(name) = self.ident_at(0) else { return };
                self.i += 1;
                self.skip_to_semicolon();
                self.out.push(common(
                    ItemKind::Const,
                    name.clone(),
                    name,
                    None,
                    (span_from, self.tok_end(self.i.saturating_sub(1))),
                    None,
                    None,
                ));
            }
            "type" => {
                self.i += 1;
                let Some(name) = self.ident_at(0) else { return };
                self.i += 1;
                self.skip_to_semicolon();
                self.out.push(common(
                    ItemKind::TypeAlias,
                    name.clone(),
                    name,
                    None,
                    (span_from, self.tok_end(self.i.saturating_sub(1))),
                    None,
                    None,
                ));
            }
            "macro_rules" => {
                self.i += 1; // macro_rules
                if self.peek(0).is_some_and(|t| t.is_punct(self.src, "!")) {
                    self.i += 1;
                }
                let name = self.ident_at(0).unwrap_or_default();
                if !name.is_empty() {
                    self.i += 1;
                }
                let mut end = self.i;
                if self.peek(0).is_some_and(|t| t.is_punct(self.src, "{")) {
                    end = self.matching(self.i, "{", "}");
                    self.i = end + 1;
                }
                self.out.push(common(
                    ItemKind::MacroRules,
                    name.clone(),
                    name,
                    None,
                    (span_from, self.tok_end(end)),
                    None,
                    None,
                ));
            }
            _ => {
                // Not an item head: skip one balanced chunk so we resync at
                // the next `;` or brace sibling (covers stray exprs,
                // `extern crate`, etc.). `stop` bounds the scan.
                while self.i < self.tokens.len().min(stop) {
                    let t = self.tokens[self.i];
                    if t.is_punct(self.src, ";") {
                        self.i += 1;
                        return;
                    }
                    if t.is_punct(self.src, "{") {
                        self.i = self.matching(self.i, "{", "}") + 1;
                        return;
                    }
                    self.i += 1;
                }
            }
        }
    }

    /// Handles `const fn` after the `const` has been consumed.
    fn dispatch_fn_like(
        &mut self,
        ctx: &Ctx,
        _start_tok: usize,
        has_doc: bool,
        attrs: Vec<String>,
        vis_pub: bool,
        cfg_test: bool,
    ) {
        // Reuse the main path by synthesizing the same pre-state: rewind is
        // not possible, so parse the fn head inline via a nested call.
        while let Some(t) = self.peek(0) {
            if t.is_ident(self.src, "fn") {
                break;
            }
            self.i += 1;
        }
        let before = self.out.len();
        let save_ctx = Ctx {
            module_path: ctx.module_path.clone(),
            self_type: ctx.self_type.clone(),
            cfg_test,
        };
        // Delegate by re-entering `item` at the `fn` keyword.
        self.item_at_fn(&save_ctx, has_doc, attrs, vis_pub);
        debug_assert!(self.out.len() >= before);
    }

    /// Parses a `fn` item whose cursor sits exactly at the `fn` keyword.
    fn item_at_fn(&mut self, ctx: &Ctx, has_doc: bool, attrs: Vec<String>, vis_pub: bool) {
        let Some(t) = self.peek(0) else { return };
        if !t.is_ident(self.src, "fn") {
            return;
        }
        let line = t.line;
        let span_from = t.start;
        self.i += 1;
        let Some(name) = self.ident_at(0) else { return };
        self.i += 1;
        let mut ret: Option<String> = None;
        let mut ret_from: Option<usize> = None;
        let mut depth = 0i32;
        while let Some(t) = self.peek(0) {
            let txt = self.text(t);
            match txt {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "->" if depth == 0 => ret_from = Some(self.i + 1),
                "{" | ";" if depth == 0 => break,
                _ => {}
            }
            self.i += 1;
        }
        if let Some(from) = ret_from {
            ret = Some(self.span_text(from, self.i).trim().to_string()).filter(|r| !r.is_empty());
        }
        let qual = match &ctx.self_type {
            Some(ty) => format!("{ty}::{name}"),
            None => name.clone(),
        };
        let (span_end, body, body_tokens) =
            if self.peek(0).is_some_and(|t| t.is_punct(self.src, "{")) {
                let open = self.i;
                let close = self.matching(open, "{", "}");
                self.i = close + 1;
                (
                    self.tok_end(close),
                    Some((self.tok_end(open), self.tok_start(close))),
                    Some((open + 1, close)),
                )
            } else {
                self.i += 1;
                (self.tok_end(self.i.saturating_sub(1)), None, None)
            };
        let must_use = attrs.iter().any(|a| a.starts_with("#[must_use"));
        self.out.push(Item {
            kind: ItemKind::Fn,
            name,
            qual,
            module_path: ctx.module_path.clone(),
            trait_name: None,
            vis_pub,
            cfg_test: ctx.cfg_test,
            has_doc,
            attrs,
            must_use,
            ret,
            span: (span_from, span_end),
            body,
            body_tokens,
            line,
        });
    }

    fn ident_at(&self, ahead: usize) -> Option<String> {
        self.peek(ahead)
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| self.text(t).to_string())
    }

    /// Token index of the closer matching the opener at `open`.
    fn matching(&self, open: usize, op: &str, cl: &str) -> usize {
        let mut depth = 0usize;
        let mut j = open;
        while j < self.tokens.len() {
            let t = &self.tokens[j];
            if t.is_punct(self.src, op) {
                depth += 1;
            } else if t.is_punct(self.src, cl) {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            j += 1;
        }
        self.tokens.len().saturating_sub(1)
    }

    /// Skips a balanced `<…>` group starting at the cursor.
    fn skip_angles(&mut self) {
        let mut depth = 0i32;
        while let Some(t) = self.peek(0) {
            if t.is_punct(self.src, "<") || t.is_punct(self.src, "<<") {
                depth += if self.text(t) == "<<" { 2 } else { 1 };
            } else if t.is_punct(self.src, ">") || t.is_punct(self.src, ">=") {
                depth -= 1;
            }
            self.i += 1;
            if depth <= 0 {
                return;
            }
        }
    }

    fn skip_to_semicolon(&mut self) {
        while let Some(t) = self.peek(0) {
            if t.is_punct(self.src, ";") {
                self.i += 1;
                return;
            }
            if t.is_punct(self.src, "{") {
                self.i = self.matching(self.i, "{", "}") + 1;
                continue;
            }
            self.i += 1;
        }
    }

    /// Source text spanned by tokens `[from, to)`.
    fn span_text(&self, from: usize, to: usize) -> String {
        if from >= self.tokens.len() || from >= to {
            return String::new();
        }
        let a = self.tokens[from].start;
        let b = self.tokens[(to - 1).min(self.tokens.len() - 1)].end;
        self.src[a..b].to_string()
    }

    fn tok_start(&self, idx: usize) -> usize {
        self.tokens.get(idx).map_or(self.src.len(), |t| t.start)
    }

    fn tok_end(&self, idx: usize) -> usize {
        self.tokens.get(idx).map_or(self.src.len(), |t| t.end)
    }
}

fn join_path(base: &str, name: &str) -> String {
    if base.is_empty() {
        name.to_string()
    } else {
        format!("{base}::{name}")
    }
}

/// Whether an attribute gates its item to test builds: `#[cfg(test)]`,
/// `#[cfg(all(test, …))]`, `#[cfg(any(test, …))]`.
fn is_cfg_test(attr: &str) -> bool {
    attr.starts_with("#[cfg")
        && attr
            .split(|c: char| !c.is_alphanumeric() && c != '_')
            .any(|w| w == "test")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        ParsedFile::parse(src)
    }

    fn find<'a>(f: &'a ParsedFile, name: &str) -> &'a Item {
        f.items
            .iter()
            .find(|it| it.name == name)
            .unwrap_or_else(|| panic!("no item `{name}` in {:?}", f.items))
    }

    #[test]
    fn free_fn_with_return_type() {
        let f = parse("pub fn go(x: u8) -> Result<u32, String> { Ok(x as u32) }");
        let it = find(&f, "go");
        assert_eq!(it.kind, ItemKind::Fn);
        assert!(it.vis_pub);
        assert_eq!(it.ret.as_deref(), Some("Result<u32, String>"));
        assert!(it.body.is_some());
    }

    #[test]
    fn impl_methods_get_qualified_names() {
        let f = parse(
            "struct S;\nimpl S {\n  pub fn new() -> S { S }\n  fn helper(&self) {}\n}\n\
             impl std::fmt::Debug for S {\n  fn fmt(&self) {}\n}",
        );
        assert!(f.items.iter().any(|i| i.qual == "S::new" && i.vis_pub));
        assert!(f.items.iter().any(|i| i.qual == "S::helper" && !i.vis_pub));
        let dbg = f
            .items
            .iter()
            .find(|i| i.kind == ItemKind::Impl && i.trait_name.is_some())
            .expect("trait impl");
        assert_eq!(dbg.trait_name.as_deref(), Some("Debug"));
        assert_eq!(dbg.name, "S");
        assert!(f.items.iter().any(|i| i.qual == "S::fmt"));
    }

    #[test]
    fn impl_with_generics() {
        let f = parse("impl<T: Clone> Wrapper<T> {\n  fn get(&self) -> T { todo() }\n}");
        assert!(f.items.iter().any(|i| i.qual == "Wrapper::get"));
    }

    #[test]
    fn mod_decl_vs_inline_mod() {
        let f = parse("pub mod on_disk;\nmod inline_mod {\n  fn inner() {}\n}");
        assert_eq!(find(&f, "on_disk").kind, ItemKind::ModDecl);
        assert_eq!(find(&f, "inline_mod").kind, ItemKind::ModInline);
        assert_eq!(find(&f, "inner").module_path, "inline_mod");
    }

    #[test]
    fn cfg_test_inherits_into_nested_modules_and_impls() {
        let f = parse(
            "#[cfg(test)]\nmod tests {\n  mod deeper {\n    fn leaf() {}\n  }\n  \
             struct T;\n  impl T {\n    fn m(&self) {}\n  }\n}\nfn live() {}",
        );
        assert!(find(&f, "leaf").cfg_test);
        assert!(
            f.items
                .iter()
                .find(|i| i.qual == "T::m")
                .expect("m")
                .cfg_test
        );
        assert!(!find(&f, "live").cfg_test);
    }

    #[test]
    fn cfg_test_on_impl_block_directly() {
        let f = parse("struct S;\n#[cfg(test)]\nimpl S {\n  fn only_in_tests(&self) {}\n}");
        assert!(
            f.items
                .iter()
                .find(|i| i.qual == "S::only_in_tests")
                .expect("method")
                .cfg_test
        );
    }

    #[test]
    fn docs_and_derives_are_attributed() {
        let f = parse(
            "/// Documented.\n#[derive(Debug, Clone)]\npub struct Doc(u8);\n\
             pub struct Bare(u8);",
        );
        let doc = find(&f, "Doc");
        assert!(doc.has_doc);
        assert!(doc.attrs.iter().any(|a| a.contains("derive")));
        let bare = find(&f, "Bare");
        assert!(!bare.has_doc);
        assert!(bare.attrs.is_empty());
    }

    #[test]
    fn const_fn_is_a_fn_and_const_item_is_not() {
        let f = parse("pub const fn pow2(x: u32) -> u64 { 1 << x }\npub const LIMIT: usize = 4;");
        assert_eq!(find(&f, "pow2").kind, ItemKind::Fn);
        assert_eq!(find(&f, "LIMIT").kind, ItemKind::Const);
    }

    #[test]
    fn must_use_and_use_paths() {
        let f = parse("#[must_use]\npub fn important() -> u8 { 1 }\nuse crate::other::Thing;");
        assert!(find(&f, "important").must_use);
        assert!(f
            .items
            .iter()
            .any(|i| i.kind == ItemKind::Use && i.name.contains("crate::other::Thing")));
    }

    #[test]
    fn macro_rules_is_an_exempt_region() {
        let f = parse("macro_rules! chk {\n  ($x:expr) => { $x.unwrap() };\n}\nfn after() {}");
        let mr = find(&f, "chk");
        assert_eq!(mr.kind, ItemKind::MacroRules);
        let ranges = f.exempt_ranges();
        let unwrap_pos = f.src.find("unwrap").expect("present");
        assert!(f.is_exempt(&ranges, unwrap_pos));
        assert!(!find(&f, "after").cfg_test);
    }

    #[test]
    fn trait_methods_are_parsed_with_and_without_bodies() {
        let f = parse(
            "pub trait Manager {\n  fn on_access(&mut self, a: u64) -> Result<(), ()>;\n  \
             fn name(&self) -> &str { \"m\" }\n}",
        );
        let req = f
            .items
            .iter()
            .find(|i| i.qual == "Manager::on_access")
            .expect("req");
        assert!(req.body.is_none());
        assert_eq!(req.ret.as_deref(), Some("Result<(), ()>"));
        let def = f
            .items
            .iter()
            .find(|i| i.qual == "Manager::name")
            .expect("def");
        assert!(def.body.is_some());
    }

    #[test]
    fn struct_bodies_are_recorded_for_field_extraction() {
        let f = parse(
            "pub struct Engine {\n  owners: HashMap<u64, u8>,\n  total: u64,\n}\n\
             pub struct Unit;\npub struct Tuple(u8, u16);",
        );
        let engine = find(&f, "Engine");
        let (from, to) = engine.body.expect("brace-bodied struct has a body span");
        assert!(f.src[from..to].contains("owners"));
        assert!(f.src[from..to].contains("total"));
        assert!(engine.body_tokens.is_some());
        assert!(find(&f, "Unit").body.is_none());
        assert!(find(&f, "Tuple").body.is_none());
    }

    #[test]
    fn where_clause_does_not_leak_into_return_type() {
        let f = parse("fn f<T>(x: T) -> Option<T> where T: Clone { Some(x) }");
        assert_eq!(find(&f, "f").ret.as_deref(), Some("Option<T>"));
    }
}
