//! `interior-mut`: interior mutability and global state in
//! simulation-visible code.
//!
//! `static mut`, `thread_local!`, and the cell/lock types let state
//! change through shared references — the channel the field-level effect
//! analysis cannot see through, and exactly how hidden cross-shard
//! coupling would sneak past the shard-safety report. Hot-path state must
//! be owned and passed by `&mut`; intentional shared handles (the
//! parallel runner's result collection) are frozen in the baseline with a
//! note. Plain atomics are deliberately not flagged: the progress board
//! is lock-free by design and atomics cannot deadlock a shard.

use crate::lexer::TokenKind;
use crate::lint::Violation;
use crate::parser::ParsedFile;

/// Interior-mutability cells and locks.
const CELL_TYPES: &[&str] = &[
    "RefCell",
    "Cell",
    "UnsafeCell",
    "OnceCell",
    "LazyCell",
    "OnceLock",
    "LazyLock",
    "Mutex",
    "RwLock",
];

/// Runs the rule over one file.
pub fn check(rel: &str, pf: &ParsedFile, out: &mut Vec<Violation>) {
    let mut exempt = pf.exempt_ranges();
    // `use` declarations are imports, not uses: the construction/typing
    // site is what gets flagged (one finding per site, not two).
    exempt.extend(
        pf.items
            .iter()
            .filter(|it| it.kind == crate::parser::ItemKind::Use)
            .map(|it| it.span),
    );
    let src = &pf.src;
    let toks = &pf.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokenKind::Ident || pf.is_exempt(&exempt, t.start) {
            continue;
        }
        let text = t.text(src);
        let found = if text == "static" && toks.get(i + 1).is_some_and(|n| n.is_ident(src, "mut")) {
            Some("`static mut` global state")
        } else if text == "thread_local" && toks.get(i + 1).is_some_and(|n| n.is_punct(src, "!")) {
            Some("`thread_local!` state")
        } else if CELL_TYPES.contains(&text) {
            // Flag type uses, not coincidental identifiers: the next token
            // is `::` (constructor), `<` (type position), or `(`/`{` never
            // follows a bare type name here.
            let next_ok = toks.get(i + 1).is_some_and(|n| {
                n.is_punct(src, "::") || n.is_punct(src, "<") || n.is_punct(src, ">")
            }) || (i > 0 && toks[i - 1].is_punct(src, "<"))
                || (i > 0 && toks[i - 1].is_punct(src, "::"));
            next_ok.then_some("interior mutability")
        } else {
            None
        };
        if let Some(what) = found {
            out.push(super::violation(
                rel,
                pf,
                t.line,
                t.start,
                "interior-mut",
                format!(
                    "{what} (`{text}`) on the hot path hides writes from the \
                     effect analysis and couples shards; own the state and pass \
                     it by `&mut`, or freeze an intentional shared handle in the \
                     baseline with a note"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Violation> {
        let pf = ParsedFile::parse(src);
        let mut v = Vec::new();
        check("f.rs", &pf, &mut v);
        v
    }

    #[test]
    fn flags_static_mut_thread_local_and_cells() {
        let v = run("static mut COUNTER: u64 = 0;\n\
             thread_local! { static TL: u8 = 0; }\n\
             fn f() { let c = RefCell::new(1u8); let _ = c; }\n\
             struct S { m: Mutex<Vec<u8>> }\n");
        let rules: Vec<usize> = v.iter().map(|v| v.line).collect();
        assert_eq!(rules, [1, 2, 3, 4], "{v:?}");
        assert!(v.iter().all(|v| v.rule == "interior-mut"));
    }

    #[test]
    fn plain_statics_atomics_and_unrelated_idents_pass() {
        let v = run("static LIMIT: u64 = 4;\n\
             fn f(p: &AtomicU64) -> u64 { p.load(Ordering::Relaxed) }\n\
             fn g() { let cell_count = 3; let _ = cell_count; }\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn tests_are_exempt() {
        let v = run("#[cfg(test)]\nmod tests {\n  use std::sync::Mutex;\n  \
             fn t() { let _ = Mutex::new(0u8); }\n}\n");
        assert!(v.is_empty(), "{v:?}");
    }
}
