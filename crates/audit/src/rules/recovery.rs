//! `recovery-path-panic`: panicking conveniences are forbidden inside
//! recovery code — functions whose names mark them as rollback / recover /
//! degrade / abort paths, plus the whole `mempod-faults` crate. These
//! paths run precisely when something has already gone wrong; an
//! `.unwrap()` there turns a survivable injected fault into a dead
//! simulation, defeating the recovery machinery it lives in.

use crate::lexer::TokenKind;
use crate::lint::Violation;
use crate::parser::{ItemKind, ParsedFile};

/// Macros that panic when reached.
const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented"];

/// Name fragments that mark a function as a recovery path.
const RECOVERY_MARKERS: &[&str] = &["rollback", "recover", "degrade", "abort"];

/// Whether a function name marks a recovery/rollback code path.
fn is_recovery_fn(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    RECOVERY_MARKERS.iter().any(|m| lower.contains(m))
}

/// Runs the rule over one file. `whole_crate` widens the scope from
/// recovery-named functions to every non-test function (used for
/// `crates/faults`, whose entire surface is fault-plan machinery).
pub fn check(rel: &str, pf: &ParsedFile, whole_crate: bool, out: &mut Vec<Violation>) {
    // Body token ranges under scrutiny, with the owning function's name.
    let ranges: Vec<(usize, usize, &str)> = pf
        .items
        .iter()
        .filter(|it| {
            it.kind == ItemKind::Fn && !it.cfg_test && (whole_crate || is_recovery_fn(&it.name))
        })
        .filter_map(|it| it.body_tokens.map(|(a, b)| (a, b, it.qual.as_str())))
        .collect();
    if ranges.is_empty() {
        return;
    }
    let exempt = pf.exempt_ranges();
    let src = &pf.src;
    let toks = &pf.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokenKind::Ident || pf.is_exempt(&exempt, t.start) {
            continue;
        }
        // Innermost enclosing scrutinized function (nested fns shadow
        // their parent, and pick-one keeps each token reported once).
        let Some((_, _, qual)) = ranges
            .iter()
            .filter(|(a, b, _)| (*a..*b).contains(&i))
            .max_by_key(|(a, _, _)| *a)
        else {
            continue;
        };
        let text = t.text(src);
        let next_is = |p: &str| toks.get(i + 1).is_some_and(|n| n.is_punct(src, p));
        let prev_is_dot = i > 0 && toks[i - 1].is_punct(src, ".");
        let construct = if prev_is_dot && text == "unwrap" && next_is("(") {
            Some(".unwrap()")
        } else if prev_is_dot && text == "expect" && next_is("(") {
            Some(".expect(…)")
        } else if PANIC_MACROS.contains(&text) && next_is("!") {
            Some(text)
        } else {
            None
        };
        if let Some(c) = construct {
            out.push(super::violation(
                rel,
                pf,
                t.line,
                t.start,
                "recovery-path-panic",
                format!(
                    "`{c}` inside recovery path `{qual}`: this code runs after \
                     a fault, so panicking here turns a survivable abort into \
                     a dead run — handle the case or propagate an error"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str, whole: bool) -> Vec<Violation> {
        let pf = ParsedFile::parse(src);
        let mut v = Vec::new();
        check("f.rs", &pf, whole, &mut v);
        v
    }

    #[test]
    fn flags_panics_in_recovery_named_fns_only() {
        let v = run(
            "fn rollback_migration(x: Option<u8>) -> u8 { x.unwrap() }\n\
             fn degrade() { panic!(\"boom\") }\n\
             fn abort_attempt(r: Result<u8, u8>) { r.expect(\"r\"); }\n\
             fn unrelated(x: Option<u8>) -> u8 { x.unwrap() }",
            false,
        );
        let lines: Vec<usize> = v.iter().map(|v| v.line).collect();
        assert_eq!(lines, [1, 2, 3], "{v:?}");
        assert!(v[0].message.contains("rollback_migration"));
    }

    #[test]
    fn whole_crate_mode_covers_every_fn() {
        let v = run("fn plain(x: Option<u8>) -> u8 { x.unwrap() }", true);
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn recovery_markers_match_within_longer_names_and_methods() {
        let v = run(
            "struct S;\nimpl S {\n  fn try_recover_state(&self) { self.x.unwrap(); }\n}",
            false,
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("S::try_recover_state"));
    }

    #[test]
    fn tests_strings_and_clean_recovery_fns_pass() {
        let v = run(
            "fn rollback() -> Result<u8, u8> { Err(3) } // .unwrap()\n\
             fn recover_label() -> &'static str { \"panic!(\" }\n\
             #[cfg(test)]\nmod tests {\n  fn abort_case() { Some(1).unwrap(); }\n}",
            false,
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn non_panicking_cousins_do_not_match() {
        assert!(run(
            "fn degrade(o: Option<u8>, r: Result<u8, u8>) { o.unwrap_or(3); r.expect_err(\"e\"); }",
            false
        )
        .is_empty());
    }
}
