//! `ignored-result`: a statement that calls a workspace function returning
//! `Result` (or marked `#[must_use]`) and discards the value. The
//! compiler's `unused_must_use` lint already covers direct calls the
//! compiler *sees* — but this workspace routes builds through feature
//! combinations where whole modules are compiled out, and a discarded
//! migration error is a silently wrong simulation.
//!
//! Resolution is name-based over the workspace function index, so the rule
//! only fires when **every** workspace function with the called name
//! returns `Result`/`#[must_use]` — an ambiguous name never flags. Names
//! that collide with common std methods (`insert`, `send`, `write`, …)
//! are skipped entirely: `map.insert(k, v);` must not be blamed for a
//! workspace `fn insert` it never calls.

use std::collections::HashMap;

use crate::callgraph::{Coverage, Model};
use crate::lexer::TokenKind;
use crate::lint::Violation;

/// Method names too overloaded across std to resolve by name.
const STD_COLLISIONS: &[&str] = &[
    "insert", "remove", "get", "push", "pop", "write", "read", "send", "recv", "flush", "take",
    "replace", "set", "next", "clear", "drain", "extend", "wait", "join", "lock", "min", "max",
    "cmp", "new", "from", "try_from", "parse", "clone", "iter", "len",
];

/// Statement-context tokens that mean the call's value is consumed.
const CONSUMING_CONTEXT: &[&str] = &["=", "+=", "-=", "let", "return", "break", "match", "else"];

/// Runs the rule over every pipeline file of the model.
pub fn check(model: &Model, cov: &Coverage, out: &mut Vec<Violation>) {
    // Index: fn name -> does EVERY non-test workspace fn with that name
    // return Result / carry #[must_use]?
    let mut index: HashMap<&str, bool> = HashMap::new();
    for (_, _, it) in model.fns() {
        let strict = it.must_use || it.ret.as_deref().is_some_and(returns_result);
        index
            .entry(it.name.as_str())
            .and_modify(|all| *all &= strict)
            .or_insert(strict);
    }

    for (fi, file) in model.files.iter().enumerate() {
        if !cov.pipeline.contains(&file.rel) {
            continue;
        }
        let pf = &file.parsed;
        let exempt = pf.exempt_ranges();
        let src = &pf.src;
        let toks = &pf.tokens;
        let _ = fi;
        for i in 0..toks.len() {
            let t = &toks[i];
            if t.kind != TokenKind::Ident || pf.is_exempt(&exempt, t.start) {
                continue;
            }
            let name = t.text(src);
            if STD_COLLISIONS.contains(&name) || index.get(name) != Some(&true) {
                continue;
            }
            if !toks.get(i + 1).is_some_and(|n| n.is_punct(src, "(")) {
                continue;
            }
            // The value is discarded iff the matching `)` is immediately
            // followed by `;` and nothing upstream in the statement
            // consumes it.
            let Some(close) = matching_paren(pf, i + 1) else {
                continue;
            };
            if !toks.get(close + 1).is_some_and(|n| n.is_punct(src, ";")) {
                continue;
            }
            if statement_consumes(pf, i) {
                continue;
            }
            out.push(super::violation(
                &file.rel,
                pf,
                t.line,
                t.start,
                "ignored-result",
                format!(
                    "Result returned by `{name}` is discarded; propagate it \
                     with `?`, handle it, or bind it explicitly"
                ),
            ));
        }
    }
}

fn returns_result(ret: &str) -> bool {
    ret.starts_with("Result") || ret.starts_with("std::result::Result")
}

/// Token index of the `)` matching the `(` at `open`.
fn matching_paren(pf: &crate::parser::ParsedFile, open: usize) -> Option<usize> {
    let src = &pf.src;
    let mut depth = 0i32;
    for (j, t) in pf.tokens.iter().enumerate().skip(open) {
        if t.is_punct(src, "(") {
            depth += 1;
        } else if t.is_punct(src, ")") {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Walks back from the call head to the start of the statement; if an
/// assignment/binding/return consumes the value, the call is not a
/// discard. The receiver chain (`self.engine.plan(…)`) is part of the
/// call and never disqualifies.
fn statement_consumes(pf: &crate::parser::ParsedFile, call_ident: usize) -> bool {
    let src = &pf.src;
    let toks = &pf.tokens;
    let mut j = call_ident;
    while j > 0 {
        let prev = &toks[j - 1];
        let txt = prev.text(src);
        if matches!(txt, ";" | "{" | "}") {
            return false;
        }
        if prev.kind == TokenKind::Punct && matches!(txt, "?") {
            return true;
        }
        if CONSUMING_CONTEXT.contains(&txt) {
            return true;
        }
        j -= 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::derive_coverage;
    use std::path::PathBuf;

    /// A two-crate fixture whose sim crate calls into core.
    fn fixture(tag: &str, core_extra: &str) -> PathBuf {
        let root = std::env::temp_dir().join(format!(
            "mempod-ignored-result-{tag}-{}",
            std::process::id()
        ));
        if root.exists() {
            std::fs::remove_dir_all(&root).expect("stale fixture removed");
        }
        let write = |rel: &str, content: &str| {
            let p = root.join(rel);
            std::fs::create_dir_all(p.parent().expect("parent")).expect("mkdir");
            std::fs::write(p, content).expect("write");
        };
        write(
            "crates/sim/Cargo.toml",
            "[package]\nname = \"mempod-sim\"\n",
        );
        write("crates/sim/src/lib.rs", "pub mod simulator;\n");
        write(
            "crates/sim/src/simulator.rs",
            "pub struct Simulator;\nimpl Simulator {\n  pub fn run(self) { \
             let _ = mempod_core::engine::migrate_page(1); }\n}\n",
        );
        write(
            "crates/core/Cargo.toml",
            "[package]\nname = \"mempod-core\"\n",
        );
        write("crates/core/src/lib.rs", "pub mod engine;\n");
        write(
            "crates/core/src/engine.rs",
            &format!(
                "pub fn migrate_page(p: u64) -> Result<u64, String> {{ Ok(p) }}\n{core_extra}"
            ),
        );
        root
    }

    fn findings(root: &PathBuf) -> Vec<Violation> {
        let model = Model::build(root).expect("model");
        let cov = derive_coverage(&model);
        let mut out = Vec::new();
        check(&model, &cov, &mut out);
        std::fs::remove_dir_all(root).ok();
        out
    }

    #[test]
    fn discarded_result_call_flags() {
        let root = fixture(
            "discard",
            "pub fn tick(&mut ()) {}\npub fn driver(p: u64) {\n  migrate_page(p);\n}\n",
        );
        let v = findings(&root);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "ignored-result");
        assert!(v[0].message.contains("migrate_page"));
    }

    #[test]
    fn bound_propagated_and_tail_uses_do_not_flag() {
        let root = fixture(
            "consumed",
            "pub fn driver(p: u64) -> Result<u64, String> {\n  \
             let a = migrate_page(p);\n  drop(a);\n  migrate_page(p)?;\n  \
             let _ = migrate_page(p);\n  migrate_page(p)\n}\n",
        );
        let v = findings(&root);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn method_receiver_chain_still_flags() {
        let root = fixture(
            "chain",
            "pub struct Engine;\nimpl Engine {\n  pub fn plan(&self) -> Result<(), String> { \
             Ok(()) }\n}\npub struct Outer { pub engine: Engine }\nimpl Outer {\n  \
             pub fn step(&self) {\n    self.engine.plan();\n  }\n}\n",
        );
        let v = findings(&root);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("plan"));
    }

    #[test]
    fn std_collision_names_never_flag() {
        let root = fixture(
            "std",
            "pub fn insert(k: u64) -> Result<(), String> { let _ = k; Ok(()) }\n\
             pub fn driver(m: &mut std::collections::HashMap<u64, u64>) {\n  \
             m.insert(1, 2);\n}\n",
        );
        let v = findings(&root);
        assert!(v.is_empty(), "{v:?}");
    }
}
