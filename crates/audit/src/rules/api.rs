//! `missing-docs` / `missing-debug`: every `pub` item in the API crates
//! (`mempod-types`, `mempod-core`) needs a doc comment, and every `pub`
//! struct/enum there needs `Debug` (derived or hand-written). Now driven
//! by the item parser instead of line heuristics, so multi-line derives,
//! nested modules, and `#[cfg(test)]` impl blocks are attributed
//! correctly.

use crate::lint::Violation;
use crate::parser::{Item, ItemKind, ParsedFile};

/// Crates whose public API must be documented and `Debug`.
pub const API_CRATES: &[&str] = &["mempod-types", "mempod-core"];

/// Runs the rules over one file.
pub fn check(rel: &str, pf: &ParsedFile, out: &mut Vec<Violation>) {
    // Types with a hand-written `impl … Debug for T` in this file.
    let manual_debug: Vec<&str> = pf
        .items
        .iter()
        .filter(|it| it.kind == ItemKind::Impl && it.trait_name.as_deref() == Some("Debug"))
        .map(|it| it.name.as_str())
        .collect();

    for it in &pf.items {
        if !it.vis_pub || it.cfg_test {
            continue;
        }
        let kind = match it.kind {
            ItemKind::Struct => "struct",
            ItemKind::Enum => "enum",
            ItemKind::Trait => "trait",
            ItemKind::Fn => "fn",
            ItemKind::Const => "const",
            ItemKind::TypeAlias => "type",
            // Re-exports and module declarations carry their docs at the
            // definition site.
            _ => continue,
        };
        if !it.has_doc {
            out.push(super::violation(
                rel,
                pf,
                it.line,
                it.span.0,
                "missing-docs",
                format!("public {kind} `{}` has no doc comment", it.name),
            ));
        }
        if matches!(it.kind, ItemKind::Struct | ItemKind::Enum)
            && !derives_debug(it)
            && !manual_debug.contains(&it.name.as_str())
        {
            out.push(super::violation(
                rel,
                pf,
                it.line,
                it.span.0,
                "missing-debug",
                format!(
                    "public {kind} `{}` neither derives nor implements Debug",
                    it.name
                ),
            ));
        }
    }
}

fn derives_debug(it: &Item) -> bool {
    it.attrs.iter().any(|a| {
        a.split("derive(").skip(1).any(|rest| match rest.find(')') {
            Some(end) => rest[..end].split(',').any(|x| x.trim() == "Debug"),
            None => false,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<(String, usize)> {
        let pf = ParsedFile::parse(src);
        let mut v = Vec::new();
        check("h.rs", &pf, &mut v);
        v.into_iter().map(|v| (v.rule, v.line)).collect()
    }

    #[test]
    fn docs_and_debug_are_demanded() {
        let rules = run("/// Documented.\n#[derive(Debug)]\npub struct Good(u8);\n\
             pub struct Bad(u8);\n\
             /// Doc but no Debug.\npub enum NoDebug { A }\n\
             impl std::fmt::Debug for Manual {\n}\n\
             /// ok\npub struct Manual;\n");
        assert!(rules.contains(&("missing-docs".into(), 4)), "{rules:?}");
        assert!(rules.contains(&("missing-debug".into(), 4)), "{rules:?}");
        assert!(rules.contains(&("missing-debug".into(), 6)), "{rules:?}");
        assert_eq!(rules.len(), 3, "{rules:?}");
    }

    #[test]
    fn multi_line_derives_and_doc_attr_count() {
        let rules = run("/// Documented.\n#[derive(\n    Debug, Clone, Copy,\n)]\n\
             #[serde(transparent)]\npub struct Spanning(u8);\n\
             #[doc = \"attr doc\"]\n#[derive(Debug)]\npub struct AttrDoc(u8);\n");
        assert!(rules.is_empty(), "{rules:?}");
    }

    #[test]
    fn private_and_test_items_are_skipped() {
        let rules = run(
            "struct Private(u8);\n#[cfg(test)]\nmod t {\n    pub struct TestOnly(u8);\n}\n\
             pub use std::fmt::Debug;\npub mod sub;\n",
        );
        assert!(rules.is_empty(), "{rules:?}");
    }

    #[test]
    fn pub_methods_need_docs_too() {
        let rules = run("pub struct S;\nimpl S {\n    pub fn naked(&self) {}\n}\n\
                         impl std::fmt::Debug for S {\n}\n");
        assert!(rules.contains(&("missing-docs".into(), 1)), "{rules:?}");
        assert!(rules.contains(&("missing-docs".into(), 3)), "{rules:?}");
    }
}
