//! `nondet-iter` / `nondet-float-reduce`: iteration over `HashMap` /
//! `HashSet` state in simulation-visible code.
//!
//! Hash iteration order is unspecified and varies run-to-run (and
//! build-to-build), so any hot-path loop over an unordered collection can
//! leak nondeterminism into simulation results — the exact property the
//! sharded `Simulator::run` of ROADMAP item 1 must exclude. Reductions
//! into floats are the worst case (float addition is not associative), so
//! they get their own rule id. Genuinely order-insensitive sites (pure
//! counting, full-sort-after-collect) are frozen in the baseline with a
//! note, not exempted here.
//!
//! Receivers are resolved within the file: fields of structs declared in
//! it (via the effect analysis' field extraction) plus `let` bindings
//! whose statement mentions `HashMap`/`HashSet`.

use std::collections::HashSet;

use crate::effects::parse_fields;
use crate::lexer::TokenKind;
use crate::lint::Violation;
use crate::parser::{ItemKind, ParsedFile};

/// Methods that iterate their receiver in hash order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
];

/// Reduction adapters that make iteration order observable in a float.
const REDUCERS: &[&str] = &["sum", "product", "fold"];

/// Runs the rule over one file.
pub fn check(rel: &str, pf: &ParsedFile, out: &mut Vec<Violation>) {
    let exempt = pf.exempt_ranges();
    let src = &pf.src;
    let toks = &pf.tokens;

    // Unordered-typed fields declared in this file.
    let mut unordered_fields: HashSet<String> = HashSet::new();
    for item in &pf.items {
        if item.kind != ItemKind::Struct || item.cfg_test {
            continue;
        }
        let Some((from, to)) = item.body_tokens else {
            continue;
        };
        for f in parse_fields(pf, from, to) {
            if f.unordered() {
                unordered_fields.insert(f.name);
            }
        }
    }

    // Unordered-typed locals: a `let` statement whose tokens (up to the
    // terminating `;` at depth 0) mention HashMap/HashSet.
    let mut unordered_locals: HashSet<String> = HashSet::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident(src, "let") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.is_ident(src, "mut")) {
            j += 1;
        }
        let Some(name_tok) = toks.get(j).filter(|t| t.kind == TokenKind::Ident) else {
            i += 1;
            continue;
        };
        let name = name_tok.text(src).to_string();
        let mut depth = 0i32;
        let mut mentions = false;
        let mut k = j + 1;
        while k < toks.len() {
            let t = &toks[k];
            match t.text(src) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                ";" if depth <= 0 => break,
                "HashMap" | "HashSet" if t.kind == TokenKind::Ident => mentions = true,
                _ => {}
            }
            k += 1;
        }
        if mentions {
            unordered_locals.insert(name);
        }
        i = j + 1;
    }

    let is_unordered_receiver = |idx: usize| -> bool {
        // `idx` is the token index of the candidate receiver identifier.
        let t = &toks[idx];
        if t.kind != TokenKind::Ident {
            return false;
        }
        let name = t.text(src);
        if idx > 0 && toks[idx - 1].is_punct(src, ".") {
            // `x.field` — a field access: unordered if the field is one of
            // this file's unordered-typed fields.
            return unordered_fields.contains(name);
        }
        unordered_locals.contains(name) || (name != "self" && unordered_fields.contains(name))
    };

    let mut sites: Vec<(usize, String)> = Vec::new(); // (token index, receiver text)

    // `recv.iter()` / `self.field.keys()` / `map.drain()` …
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokenKind::Ident || pf.is_exempt(&exempt, t.start) {
            continue;
        }
        let text = t.text(src);
        if !ITER_METHODS.contains(&text) {
            continue;
        }
        if !(i >= 2 && toks[i - 1].is_punct(src, ".")) {
            continue;
        }
        if !toks.get(i + 1).is_some_and(|n| n.is_punct(src, "(")) {
            continue;
        }
        if is_unordered_receiver(i - 2) {
            sites.push((i, format!("{}.{text}()", toks[i - 2].text(src))));
        }
    }

    // `for pat in &map` / `for pat in map` / `for pat in &mut map`.
    for i in 0..toks.len() {
        if !toks[i].is_ident(src, "in") || pf.is_exempt(&exempt, toks[i].start) {
            continue;
        }
        // Confirm a `for` opens this clause (scan back a short window).
        let back = i.saturating_sub(12);
        if !(back..i).rev().any(|k| toks[k].is_ident(src, "for")) {
            continue;
        }
        let mut j = i + 1;
        while toks
            .get(j)
            .is_some_and(|t| t.is_punct(src, "&") || t.is_ident(src, "mut"))
        {
            j += 1;
        }
        // Receiver may be `name` or `self . field` (flag only when the
        // collection itself is the loop subject, not an `.iter()` chain —
        // those were caught above).
        let Some(rt) = toks.get(j) else { continue };
        if rt.kind != TokenKind::Ident {
            continue;
        }
        let mut recv_idx = j;
        if rt.is_ident(src, "self")
            && toks.get(j + 1).is_some_and(|t| t.is_punct(src, "."))
            && toks.get(j + 2).is_some_and(|t| t.kind == TokenKind::Ident)
        {
            recv_idx = j + 2;
        }
        // Only a bare receiver (next token opens the loop body or closes
        // the expression) counts; method chains were handled above.
        let after = toks.get(recv_idx + 1);
        if !after.is_some_and(|t| t.is_punct(src, "{")) {
            continue;
        }
        if is_unordered_receiver(recv_idx) {
            sites.push((recv_idx, format!("for … in {}", toks[recv_idx].text(src))));
        }
    }

    sites.sort_by_key(|&(i, _)| i);
    sites.dedup_by_key(|&mut (i, _)| i);

    for (i, what) in sites {
        let t = &toks[i];
        // Float-reduction scan: from the site to the end of the statement
        // (or a short window), look for a reducer plus float evidence.
        let mut reducer = false;
        let mut float = false;
        let mut depth = 0i32;
        for tk in toks.iter().skip(i).take(80) {
            match tk.text(src) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                }
                ";" if depth <= 0 => break,
                "f32" | "f64" if tk.kind == TokenKind::Ident => float = true,
                txt if tk.kind == TokenKind::Ident && REDUCERS.contains(&txt) => reducer = true,
                _ => {}
            }
            if tk.kind == TokenKind::Number && tk.text(src).contains('.') {
                float = true;
            }
        }
        if reducer && float {
            out.push(super::violation(
                rel,
                pf,
                t.line,
                t.start,
                "nondet-float-reduce",
                format!(
                    "`{what}` feeds a float reduction in hash order; float addition \
                     is not associative, so the result depends on iteration order — \
                     sort the elements (or use a BTreeMap/BTreeSet) first"
                ),
            ));
        } else {
            out.push(super::violation(
                rel,
                pf,
                t.line,
                t.start,
                "nondet-iter",
                format!(
                    "`{what}` iterates a HashMap/HashSet in nondeterministic order on \
                     simulation-visible state; use BTreeMap/BTreeSet or sort before \
                     iterating (order-insensitive uses may be frozen in the baseline \
                     with a note)"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Violation> {
        let pf = ParsedFile::parse(src);
        let mut v = Vec::new();
        check("f.rs", &pf, &mut v);
        v
    }

    #[test]
    fn flags_field_iteration_through_self() {
        let v = run(
            "struct T { entries: HashMap<u64, u64>, k: usize }\n\
             impl T {\n  fn hot(&self) -> Vec<u64> { self.entries.iter().map(|(&p, _)| p).collect() }\n\
             fn count(&self) -> usize { self.k }\n}\n",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "nondet-iter");
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn flags_local_map_iteration_and_for_loops() {
        let v = run(
            "fn f() {\n  let mut m = HashMap::new();\n  m.insert(1, 2);\n  \
             for (k, _) in &m { let _ = k; }\n  let tot: u64 = m.values().copied().collect();\n  let _ = tot;\n}\n",
        );
        let rules: Vec<&str> = v.iter().map(|v| v.rule.as_str()).collect();
        assert_eq!(rules, ["nondet-iter", "nondet-iter"], "{v:?}");
    }

    #[test]
    fn float_reduction_is_its_own_rule() {
        let v = run("struct T { w: HashMap<u64, f64> }\n\
             impl T {\n  fn total(&self) -> f64 { self.w.values().sum::<f64>() }\n}\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "nondet-float-reduce");
    }

    #[test]
    fn ordered_collections_and_unrelated_receivers_pass() {
        let v = run(
            "struct T { entries: BTreeMap<u64, u64>, names: Vec<String> }\n\
             impl T {\n  fn a(&self) { for n in &self.names { let _ = n; } }\n  \
             fn b(&self) -> usize { self.entries.iter().count() }\n}\n\
             fn c() { let v = vec![1]; let s: u64 = v.iter().sum(); let _ = s; }\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn tests_and_macro_rules_are_exempt() {
        let v = run(
            "#[cfg(test)]\nmod tests {\n  fn t() { let m: HashMap<u8, u8> = HashMap::new(); \
             for x in &m { let _ = x; } }\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn contains_and_get_do_not_count_as_iteration() {
        let v = run("struct T { hot: HashSet<u64> }\n\
             impl T {\n  fn f(&self) -> bool { self.hot.contains(&3) }\n}\n");
        assert!(v.is_empty(), "{v:?}");
    }
}
