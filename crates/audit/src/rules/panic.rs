//! `hot-path-panic`: panicking conveniences are forbidden in the derived
//! hot-path files. Hot paths return `Result`s; `.unwrap()` on the
//! migration pipeline turns a recoverable condition into a dead simulation
//! (and a wrong figure) at production scale.

use crate::lexer::TokenKind;
use crate::lint::Violation;
use crate::parser::ParsedFile;

/// Macros that panic when reached.
const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented"];

/// Runs the rule over one file.
pub fn check(rel: &str, pf: &ParsedFile, out: &mut Vec<Violation>) {
    let exempt = pf.exempt_ranges();
    let src = &pf.src;
    let toks = &pf.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokenKind::Ident || pf.is_exempt(&exempt, t.start) {
            continue;
        }
        let text = t.text(src);
        let next_is = |p: &str| toks.get(i + 1).is_some_and(|n| n.is_punct(src, p));
        let prev_is_dot = i > 0 && toks[i - 1].is_punct(src, ".");
        let construct = if prev_is_dot && text == "unwrap" && next_is("(") {
            Some(".unwrap()")
        } else if prev_is_dot && text == "expect" && next_is("(") {
            Some(".expect(…)")
        } else if PANIC_MACROS.contains(&text) && next_is("!") {
            Some(text)
        } else {
            None
        };
        if let Some(c) = construct {
            out.push(super::violation(
                rel,
                pf,
                t.line,
                t.start,
                "hot-path-panic",
                format!(
                    "`{c}` is forbidden on the hot path; return a Result or \
                     handle the case explicitly"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Violation> {
        let pf = ParsedFile::parse(src);
        let mut v = Vec::new();
        check("f.rs", &pf, &mut v);
        v
    }

    #[test]
    fn flags_unwrap_expect_and_panic_macros() {
        let v = run(
            "fn f(x: Option<u8>) -> u8 {\n  if x.is_none() { panic!(\"no\") }\n  \
                     x.expect(\"x\").min(x.unwrap())\n}\nfn g() { todo!() }",
        );
        let rules: Vec<usize> = v.iter().map(|v| v.line).collect();
        assert_eq!(rules, [2, 3, 3, 5], "{v:?}");
    }

    #[test]
    fn unwrap_or_and_expect_err_do_not_match() {
        assert!(run("fn f() { o.unwrap_or(3); r.expect_err(\"e\"); }").is_empty());
    }

    #[test]
    fn strings_comments_and_tests_are_exempt() {
        let v = run("fn f() { let s = \"panic!(\"; } // .unwrap()\n\
             #[cfg(test)]\nmod tests {\n  fn t() { Some(1).unwrap(); }\n}\n\
             macro_rules! m { () => { x.unwrap() }; }");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn free_unwrap_fn_is_not_flagged_without_receiver() {
        // A local helper *named* unwrap, called without `.`, is not the
        // Option/Result method.
        assert!(run("fn f() { unwrap(); }").is_empty());
    }
}
