//! `unchecked-addr-arith`: raw arithmetic (`+`, `+=`, `<<`,
//! `wrapping_*`) on address-named integers outside the designated helper
//! modules (`mempod_types::convert`, `mempod_types::addr`,
//! `mempod_types::geometry`, `mempod_dram::mapper`).
//!
//! Address decomposition belongs in the helpers, where the bit layout is
//! defined once, invariants are asserted, and overflow is checked. An
//! inline `addr << 6` or `base_addr + offset` scattered through the
//! pipeline is exactly the kind of silently-truncating expression that
//! inverts tiering conclusions (see Nomad / the IIT-Ropar hybrid-memory
//! study). The rule matches identifiers that *advertise* addressness
//! (`addr`, `address`, `*_addr`, `addr_*`) on either side of the
//! operator, or as the receiver of a `wrapping_*` call — including
//! through a `.0` newtype projection.

use crate::lexer::{Token, TokenKind};
use crate::lint::Violation;
use crate::parser::ParsedFile;

/// Operators that rearrange address bits.
const ADDR_OPS: &[&str] = &["+", "+=", "<<"];

/// Whether an identifier advertises that it holds a raw address.
fn is_addr_ident(name: &str) -> bool {
    name == "addr"
        || name == "address"
        || name.ends_with("_addr")
        || name.starts_with("addr_")
        || name.contains("_addr_")
}

/// Runs the rule over one file.
pub fn check(rel: &str, pf: &ParsedFile, out: &mut Vec<Violation>) {
    let exempt = pf.exempt_ranges();
    let src = &pf.src;
    let toks = &pf.tokens;

    // Resolves the value-ish token at `idx` to an address identifier,
    // looking through a `.0` newtype projection (`addr.0`).
    let addr_operand = |idx: usize| -> Option<&Token> {
        let t = toks.get(idx)?;
        if t.kind == TokenKind::Ident && is_addr_ident(t.text(src)) {
            return Some(t);
        }
        if t.kind == TokenKind::Number && idx >= 2 && toks[idx - 1].is_punct(src, ".") {
            let base = &toks[idx - 2];
            if base.kind == TokenKind::Ident && is_addr_ident(base.text(src)) {
                return Some(base);
            }
        }
        None
    };

    for i in 0..toks.len() {
        let t = &toks[i];
        if pf.is_exempt(&exempt, t.start) {
            continue;
        }
        // `addr.wrapping_add(…)` / `line_addr.0.wrapping_shl(…)`.
        if t.kind == TokenKind::Ident
            && t.text(src).starts_with("wrapping_")
            && i >= 2
            && toks[i - 1].is_punct(src, ".")
            && toks.get(i + 1).is_some_and(|n| n.is_punct(src, "("))
        {
            if let Some(base) = addr_operand(i - 2) {
                out.push(super::violation(
                    rel,
                    pf,
                    t.line,
                    t.start,
                    "unchecked-addr-arith",
                    format!(
                        "`{}` on address `{}` bypasses the checked helpers; \
                         decompose through mempod_types::addr / convert instead",
                        t.text(src),
                        base.text(src),
                    ),
                ));
            }
            continue;
        }
        // `addr + x`, `x + addr`, `addr << k`, `addr.0 + x`, …
        if t.kind == TokenKind::Punct && ADDR_OPS.contains(&t.text(src)) && i >= 1 {
            let operand = addr_operand(i - 1).or_else(|| addr_operand(i + 1));
            if let Some(base) = operand {
                out.push(super::violation(
                    rel,
                    pf,
                    t.line,
                    t.start,
                    "unchecked-addr-arith",
                    format!(
                        "raw `{}` arithmetic on address `{}`; route it through \
                         the mempod_types::addr / geometry helpers so the bit \
                         layout stays in one place",
                        t.text(src),
                        base.text(src),
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Violation> {
        let pf = ParsedFile::parse(src);
        let mut v = Vec::new();
        check("a.rs", &pf, &mut v);
        v
    }

    #[test]
    fn addition_and_shift_on_addr_names_flag() {
        let v = run("fn f(addr: u64, base_addr: u64, k: u64) -> u64 {\n  \
                     let a = addr + 64;\n  let b = base_addr << 6;\n  let c = k + addr;\n  \
                     a + b + c\n}");
        let lines: Vec<usize> = v.iter().map(|v| v.line).collect();
        assert_eq!(lines, [2, 3, 4], "{v:?}");
    }

    #[test]
    fn newtype_projection_and_wrapping_calls_flag() {
        let v = run("fn f(line_addr: Addr, n: u64) -> u64 {\n  \
                     let x = line_addr.0 + n;\n  line_addr.0.wrapping_add(n)\n}");
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[1].message.contains("wrapping_add"));
    }

    #[test]
    fn non_address_arithmetic_is_untouched() {
        assert!(run("fn f(count: u64, total: u64) -> u64 { count + total << 1 }").is_empty());
    }

    #[test]
    fn tests_are_exempt() {
        assert!(run("#[cfg(test)]\nmod t {\n  fn f(addr: u64) -> u64 { addr + 1 }\n}").is_empty());
    }
}
