//! `unsampled-span`: direct construction of `EventKind::Span` inside a
//! tick-phase function of a pipeline crate.
//!
//! Spans are the only telemetry emitted per *request*, so the tracing
//! layer's overhead budget rests on one invariant: every span produced on
//! the per-request tick path flows through a sampling-aware helper
//! (`push_span` / `emit_span`), which drops [`SPAN_NONE`] ids before any
//! buffering or serialization happens. A tick-phase function that builds
//! `EventKind::Span(..)` directly bypasses that guard — every request pays
//! for the span whether sampled or not, which is exactly the regression
//! the `< 2 %` overhead gate exists to catch, caught here at lint time
//! instead of on a noisy benchmark box.
//!
//! Epoch-phase functions (the batch barrier, epoch drivers) are exempt:
//! they run once per window, where unconditional emission (execution
//! spans, barrier spans) is the intended design. Consumers in the
//! telemetry crate (sinks matching on `EventKind::Span`) are out of scope
//! — the rule only covers [`PIPELINE_CRATES`].
//!
//! [`SPAN_NONE`]: https://docs.rs/ (mempod_telemetry::SPAN_NONE)

use std::collections::HashSet;

use crate::callgraph::{Model, PIPELINE_CRATES};
use crate::lint::Violation;

/// Helpers sanctioned to build span events: they own the `SPAN_NONE` /
/// sampling check, so construction inside them is the guard, not a bypass.
const SANCTIONED_FNS: &[&str] = &["push_span", "emit_span"];

/// Runs the rule over every tick-phase pipeline function of the model.
pub fn check(model: &Model, out: &mut Vec<Violation>) {
    let tick: HashSet<String> = crate::effects::analyze(model)
        .tick_fns
        .into_iter()
        .collect();
    for file in &model.files {
        if !PIPELINE_CRATES.contains(&file.crate_name.as_str()) {
            continue;
        }
        let pf = &file.parsed;
        let src = &pf.src;
        let toks = &pf.tokens;
        for it in &pf.items {
            if it.kind != crate::parser::ItemKind::Fn
                || it.cfg_test
                || SANCTIONED_FNS.contains(&it.name.as_str())
                || !tick.contains(&it.qual)
            {
                continue;
            }
            let Some((lo, hi)) = it.body_tokens else {
                continue;
            };
            for i in lo..hi.min(toks.len()).saturating_sub(2) {
                if toks[i].is_ident(src, "EventKind")
                    && toks[i + 1].is_punct(src, "::")
                    && toks[i + 2].is_ident(src, "Span")
                {
                    out.push(super::violation(
                        &file.rel,
                        pf,
                        toks[i].line,
                        toks[i].start,
                        "unsampled-span",
                        format!(
                            "tick-phase `{}` builds `EventKind::Span` directly, bypassing \
                             the sampling guard; route it through `push_span`/`emit_span` \
                             (or move the emission to an epoch-barrier function)",
                            it.qual
                        ),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    /// A one-crate fixture whose sim crate has a tick root (`pump`) with
    /// the given body, plus the sanctioned `push_span` helper.
    fn fixture(tag: &str, body: &str, extra: &str) -> PathBuf {
        let root = std::env::temp_dir().join(format!(
            "mempod-unsampled-span-{tag}-{}",
            std::process::id()
        ));
        if root.exists() {
            std::fs::remove_dir_all(&root).expect("stale fixture removed");
        }
        let write = |rel: &str, content: &str| {
            let p = root.join(rel);
            std::fs::create_dir_all(p.parent().expect("parent")).expect("mkdir");
            std::fs::write(p, content).expect("write");
        };
        write(
            "crates/sim/Cargo.toml",
            "[package]\nname = \"mempod-sim\"\n",
        );
        write("crates/sim/src/lib.rs", "pub mod simulator;\n");
        write(
            "crates/sim/src/simulator.rs",
            &format!(
                "pub struct Simulator {{ events: Vec<u64> }}\n\
                 impl Simulator {{\n\
                 \x20 pub fn run(&mut self) {{ self.pump(); }}\n\
                 \x20 fn pump(&mut self) {{\n{body}\n  }}\n\
                 \x20 fn push_span(&mut self, id: u64) {{\n\
                 \x20   if id != 0 {{ self.events.push(id); let _ = EventKind::Span(id); }}\n\
                 \x20 }}\n\
                 }}\n\
                 pub enum EventKind {{ Span(u64) }}\n{extra}"
            ),
        );
        root
    }

    fn findings(root: &PathBuf) -> Vec<Violation> {
        let model = Model::build(root).expect("model");
        let mut out = Vec::new();
        check(&model, &mut out);
        std::fs::remove_dir_all(root).ok();
        out
    }

    #[test]
    fn direct_span_construction_in_tick_fn_flags() {
        let root = fixture("direct", "    let e = EventKind::Span(7); let _ = e;", "");
        let v = findings(&root);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "unsampled-span");
        assert!(v[0].message.contains("Simulator::pump"), "{v:?}");
    }

    #[test]
    fn sanctioned_helper_and_epoch_barrier_do_not_flag() {
        // `push_span` (sanctioned) and `barrier` (epoch-phase by name)
        // both construct span events legitimately.
        let root = fixture(
            "clean",
            "    self.push_span(7);",
            "pub fn barrier(v: &mut Vec<EventKind>) {\n  \
             v.push(EventKind::Span(1));\n}\n",
        );
        let v = findings(&root);
        assert!(v.is_empty(), "{v:?}");
    }
}
