//! `unit-mismatch`: additive or comparison arithmetic mixing values whose
//! names carry different time units (`_ps`, `_ns`, `_us`, `_ms`,
//! `_cycles`) without an explicit conversion.
//!
//! The suite expresses all event timing in integer picoseconds
//! (`mempod_types::time::Picos`) precisely because mixed clock domains
//! (ps/ns/cycles at several frequencies) are where silent corruption
//! creeps in. `Picos`-typed values are safe by construction; this rule
//! covers the raw `u64`s that flow around them — a `deadline_ns` compared
//! against a `now_ps` is wrong by 1000× and no type checker will say so.
//!
//! Heuristic and proudly so: both operands must be identifiers (or field
//! accesses) with a recognized unit suffix, joined by `+ - < > <= >= ==
//! != += -=`. Multiplicative operators are excluded — `x_ns * 1000` is
//! how a conversion is *written*. Conversion calls are fine because a call
//! like `ps_from_ns(deadline_ns)` puts a `(` after the callee, and the
//! callee's own suffix (`…_ns` taking ns *in*, named for its input) is
//! compared instead of the argument's.

use crate::lexer::TokenKind;
use crate::lint::Violation;
use crate::parser::ParsedFile;

/// Operators whose operands must share a unit.
const UNIT_SENSITIVE_OPS: &[&str] = &["+", "-", "<", ">", "<=", ">=", "==", "!=", "+=", "-="];

/// The time unit an identifier's name advertises, if any.
fn unit_of(name: &str) -> Option<&'static str> {
    const SUFFIXES: &[(&str, &str)] = &[
        ("ps", "ps"),
        ("ns", "ns"),
        ("us", "us"),
        ("ms", "ms"),
        ("cycles", "cycles"),
        ("cyc", "cycles"),
        ("khz", "khz"),
        ("mhz", "mhz"),
    ];
    for (suffix, unit) in SUFFIXES {
        if name == *suffix || name.ends_with(&format!("_{suffix}")) {
            return Some(unit);
        }
    }
    None
}

/// Runs the rule over one file.
pub fn check(rel: &str, pf: &ParsedFile, out: &mut Vec<Violation>) {
    let exempt = pf.exempt_ranges();
    let src = &pf.src;
    let toks = &pf.tokens;
    for i in 1..toks.len().saturating_sub(1) {
        let op = &toks[i];
        if op.kind != TokenKind::Punct
            || !UNIT_SENSITIVE_OPS.contains(&op.text(src))
            || pf.is_exempt(&exempt, op.start)
        {
            continue;
        }
        let lhs = &toks[i - 1];
        if lhs.kind != TokenKind::Ident {
            continue;
        }
        // The rhs may be a field/method chain (`s.warmup_cycles`,
        // `clock.ps_to_cycles(d)`); its unit is the terminal name's.
        let mut r = i + 1;
        if toks[r].kind != TokenKind::Ident {
            continue;
        }
        while toks.get(r + 1).is_some_and(|t| t.is_punct(src, "."))
            && toks.get(r + 2).is_some_and(|t| t.kind == TokenKind::Ident)
        {
            r += 2;
        }
        let rhs = &toks[r];
        let (Some(lu), Some(ru)) = (unit_of(lhs.text(src)), unit_of(rhs.text(src))) else {
            continue;
        };
        if lu != ru {
            out.push(super::violation(
                rel,
                pf,
                op.line,
                op.start,
                "unit-mismatch",
                format!(
                    "`{}` ({lu}) {} `{}` ({ru}) mixes time units without an \
                     explicit conversion; convert through mempod_types::time \
                     (Picos / Clock) first",
                    lhs.text(src),
                    op.text(src),
                    rhs.text(src),
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Violation> {
        let pf = ParsedFile::parse(src);
        let mut v = Vec::new();
        check("u.rs", &pf, &mut v);
        v
    }

    #[test]
    fn mixed_units_in_add_and_compare_flag() {
        let v = run(
            "fn f(now_ps: u64, deadline_ns: u64, epoch_cycles: u64) -> bool {\n  \
                     let t = now_ps + deadline_ns;\n  t > epoch_cycles\n}",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 2);
        assert!(v[0].message.contains("(ps)"), "{}", v[0].message);
        assert!(v[0].message.contains("(ns)"));
    }

    #[test]
    fn same_unit_arithmetic_is_fine() {
        assert!(run("fn f(a_ps: u64, b_ps: u64) -> u64 { a_ps + b_ps }").is_empty());
    }

    #[test]
    fn multiplication_is_a_conversion_not_a_mismatch() {
        assert!(run("fn f(t_ns: u64) -> u64 { t_ns * 1000 }").is_empty());
    }

    #[test]
    fn unsuffixed_identifiers_never_flag() {
        assert!(run("fn f(total: u64, count_ns: u64) -> u64 { total + count_ns }").is_empty());
    }

    #[test]
    fn field_access_operands_flag_too() {
        let v = run("fn f(s: S) -> u64 { s.start_ps + s.warmup_cycles }");
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("cycles"));
    }

    #[test]
    fn cfg_test_regions_are_exempt() {
        assert!(run(
            "#[cfg(test)]\nmod t {\n  fn f(a_ps: u64, b_ns: u64) -> u64 { a_ps + b_ns }\n}"
        )
        .is_empty());
    }
}
