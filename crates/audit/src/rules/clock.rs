//! `nondet-clock`: wall-clock reads in simulation-visible code.
//!
//! `Instant::now()` / `SystemTime::now()` values differ every run, so any
//! hot-path code keyed off them produces run-dependent results — the
//! simulated clock ([`Picos`](mempod_types::Picos) arithmetic) is the only
//! admissible time source on the tick path. Observability-only uses (the
//! progress board's wall-clock origin) are frozen in the baseline with a
//! note.

use crate::lexer::TokenKind;
use crate::lint::Violation;
use crate::parser::ParsedFile;

/// Wall-clock types whose `now`/`elapsed` reads are nondeterministic.
const CLOCK_TYPES: &[&str] = &["Instant", "SystemTime"];

/// Runs the rule over one file.
pub fn check(rel: &str, pf: &ParsedFile, out: &mut Vec<Violation>) {
    let exempt = pf.exempt_ranges();
    let src = &pf.src;
    let toks = &pf.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokenKind::Ident || pf.is_exempt(&exempt, t.start) {
            continue;
        }
        let text = t.text(src);
        if !CLOCK_TYPES.contains(&text) {
            continue;
        }
        let called = toks.get(i + 1).is_some_and(|n| n.is_punct(src, "::"))
            && toks
                .get(i + 2)
                .is_some_and(|n| n.is_ident(src, "now") || n.is_ident(src, "elapsed"));
        if called {
            out.push(super::violation(
                rel,
                pf,
                t.line,
                t.start,
                "nondet-clock",
                format!(
                    "`{text}::now()` reads the wall clock, which differs every run; \
                     simulation-visible time must come from the simulated clock \
                     (Picos). Observability-only uses may be frozen in the baseline \
                     with a note"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Violation> {
        let pf = ParsedFile::parse(src);
        let mut v = Vec::new();
        check("f.rs", &pf, &mut v);
        v
    }

    #[test]
    fn flags_instant_and_systemtime_now() {
        let v = run(
            "fn f() { let t0 = std::time::Instant::now(); let _ = t0; }\n\
             fn g() { let s = SystemTime::now(); let _ = s; }\n",
        );
        let rules: Vec<&str> = v.iter().map(|v| v.rule.as_str()).collect();
        assert_eq!(rules, ["nondet-clock", "nondet-clock"], "{v:?}");
        assert_eq!(v[0].line, 1);
        assert_eq!(v[1].line, 2);
    }

    #[test]
    fn type_mentions_without_clock_reads_pass() {
        let v = run("fn f(origin: Instant) -> Instant { origin }\nstruct S { t: Instant }\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn tests_are_exempt() {
        let v = run("#[cfg(test)]\nmod tests {\n  fn t() { let _ = Instant::now(); }\n}\n");
        assert!(v.is_empty(), "{v:?}");
    }
}
