//! `hot-path-print`: ad-hoc `println!`/`eprintln!`/`print!`/`eprint!` are
//! forbidden in the simulation pipeline's library modules. Per-access
//! printing destroys throughput, and diagnostics belong in the structured
//! `mempod-telemetry` event stream. Experiment binaries still print — that
//! is their job — so only library modules are covered.

use crate::lexer::TokenKind;
use crate::lint::Violation;
use crate::parser::ParsedFile;

const PRINT_MACROS: &[&str] = &["println", "eprintln", "print", "eprint"];

/// Runs the rule over one file.
pub fn check(rel: &str, pf: &ParsedFile, out: &mut Vec<Violation>) {
    let exempt = pf.exempt_ranges();
    let src = &pf.src;
    let toks = &pf.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokenKind::Ident || pf.is_exempt(&exempt, t.start) {
            continue;
        }
        let text = t.text(src);
        if PRINT_MACROS.contains(&text) && toks.get(i + 1).is_some_and(|n| n.is_punct(src, "!")) {
            out.push(super::violation(
                rel,
                pf,
                t.line,
                t.start,
                "hot-path-print",
                format!(
                    "`{text}!` is forbidden in the simulation pipeline; emit a \
                     structured mempod-telemetry event instead"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Violation> {
        let pf = ParsedFile::parse(src);
        let mut v = Vec::new();
        check("f.rs", &pf, &mut v);
        v
    }

    #[test]
    fn each_macro_flags_once() {
        let v = run("fn f() { println!(\"x\"); }\nfn g() { eprintln!(\"y\"); }");
        assert_eq!(v.len(), 2, "{v:?}");
        assert_eq!(v[0].line, 1);
        assert_eq!(v[1].line, 2);
    }

    #[test]
    fn custom_macros_prose_and_tests_do_not_match() {
        let v = run(
            "// println!(\"comment\")\nfn f() { let s = \"println!(\"; my_print!(s); }\n\
             #[cfg(test)]\nmod tests {\n  fn t() { println!(\"fine\"); }\n}",
        );
        assert!(v.is_empty(), "{v:?}");
    }
}
