//! `lossy-cast`: bare `as` casts to integer types are forbidden in the
//! derived address-arithmetic files. A silently truncated address corrupts
//! every downstream figure; conversions must go through the checked
//! helpers in `mempod_types::convert` (or `From`/`try_from`).

use crate::lexer::TokenKind;
use crate::lint::Violation;
use crate::parser::ParsedFile;

/// Integer cast targets that make an `as` cast potentially lossy.
pub const INT_TARGETS: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Runs the rule over one file.
pub fn check(rel: &str, pf: &ParsedFile, out: &mut Vec<Violation>) {
    let exempt = pf.exempt_ranges();
    let src = &pf.src;
    let toks = &pf.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if !(t.kind == TokenKind::Ident && t.text(src) == "as") || pf.is_exempt(&exempt, t.start) {
            continue;
        }
        let Some(target) = toks.get(i + 1).filter(|n| n.kind == TokenKind::Ident) else {
            continue;
        };
        let target = target.text(src);
        if INT_TARGETS.contains(&target) {
            out.push(super::violation(
                rel,
                pf,
                t.line,
                t.start,
                "lossy-cast",
                format!(
                    "bare `as {target}` cast in address arithmetic; use \
                     mempod_types::convert (or From/try_from) instead"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Violation> {
        let pf = ParsedFile::parse(src);
        let mut v = Vec::new();
        check("g.rs", &pf, &mut v);
        v
    }

    #[test]
    fn integer_targets_flag_float_targets_do_not() {
        let v = run(
            "fn f(x: u64, y: u64) {\n  let a = x as u32;\n  let b = x as f64;\n  \
                     let c = y as usize;\n}",
        );
        let lines: Vec<usize> = v.iter().map(|v| v.line).collect();
        assert_eq!(lines, [2, 4]);
    }

    #[test]
    fn use_rename_and_test_casts_are_exempt() {
        let v = run(
            "use std::io as stdio;\n#[cfg(test)]\nmod t {\n  fn f(x: u64) -> u8 { x as u8 }\n}",
        );
        assert!(v.is_empty(), "{v:?}");
    }
}
