//! The lint rule families, each in its own module, all consuming the
//! shared source model ([`crate::lexer`] / [`crate::parser`] /
//! [`crate::callgraph`]) instead of raw text.
//!
//! Pattern rules (scoped by the *derived* coverage sets):
//! * [`panic`] — panicking constructs banned on the migration hot path.
//! * [`print`] — ad-hoc printing banned in the simulation pipeline.
//! * [`cast`] — bare integer `as` casts banned in address arithmetic.
//! * [`api`] — doc/`Debug` coverage of the public API crates.
//!
//! Semantic rules the old line-scanner could not express:
//! * [`units`] — arithmetic mixing differently-suffixed time units.
//! * [`addr_arith`] — unchecked arithmetic on raw address integers.
//! * [`ignored_result`] — discarded `Result`/`#[must_use]` values.
//!
//! Meta-lint:
//! * [`coverage`] — pipeline modules that escape the derived coverage.

pub mod addr_arith;
pub mod api;
pub mod cast;
pub mod coverage;
pub mod ignored_result;
pub mod panic;
pub mod print;
pub mod units;

use crate::lint::Violation;
use crate::parser::ParsedFile;

/// Builds a violation anchored at byte offset `pos` of `pf`.
pub(crate) fn violation(
    rel: &str,
    pf: &ParsedFile,
    line: u32,
    pos: usize,
    rule: &str,
    message: String,
) -> Violation {
    Violation {
        file: rel.to_string(),
        line: line as usize,
        rule: rule.to_string(),
        message,
        snippet: pf.snippet_at(pos),
        allowed: false,
        baselined: false,
    }
}
