//! The lint rule families, each in its own module, all consuming the
//! shared source model ([`crate::lexer`] / [`crate::parser`] /
//! [`crate::callgraph`]) instead of raw text.
//!
//! Pattern rules (scoped by the *derived* coverage sets):
//! * [`panic`] — panicking constructs banned on the migration hot path.
//! * [`recovery`] — panicking constructs banned in recovery code:
//!   rollback/recover/degrade/abort functions anywhere, and the whole
//!   `mempod-faults` crate.
//! * [`print`] — ad-hoc printing banned in the simulation pipeline.
//! * [`cast`] — bare integer `as` casts banned in address arithmetic.
//! * [`api`] — doc/`Debug` coverage of the public API crates.
//!
//! Semantic rules the old line-scanner could not express:
//! * [`units`] — arithmetic mixing differently-suffixed time units.
//! * [`addr_arith`] — unchecked arithmetic on raw address integers.
//! * [`ignored_result`] — discarded `Result`/`#[must_use]` values.
//!
//! Determinism rules (scoped to the derived hot-path files, feeding the
//! shard-safety work of ROADMAP item 1):
//! * [`nondet`] — `nondet-iter`/`nondet-float-reduce`: HashMap/HashSet
//!   iteration (and float reductions over it) on simulation-visible state.
//! * [`clock`] — `nondet-clock`: wall-clock reads on the hot path.
//! * [`interior_mut`] — `interior-mut`: `static mut`, `thread_local!`,
//!   cells and locks that hide writes from the effect analysis.
//! * [`span`] — `unsampled-span`: span events built on the tick path
//!   without going through the sampling-aware helpers.
//!
//! Meta-lint:
//! * [`coverage`] — pipeline modules that escape the derived coverage.
//!
//! The concurrency rules (`lock-order-cycle`, `atomic-ordering-mismatch`,
//! `sync-primitive-outside-facade`) live in [`crate::sync_pass`], which
//! doubles as the analysis behind the `sync` subcommand.

pub mod addr_arith;
pub mod api;
pub mod cast;
pub mod clock;
pub mod coverage;
pub mod ignored_result;
pub mod interior_mut;
pub mod nondet;
pub mod panic;
pub mod print;
pub mod recovery;
pub mod span;
pub mod units;

use crate::lint::Violation;
use crate::parser::ParsedFile;

/// Builds a violation anchored at byte offset `pos` of `pf`.
pub(crate) fn violation(
    rel: &str,
    pf: &ParsedFile,
    line: u32,
    pos: usize,
    rule: &str,
    message: String,
) -> Violation {
    Violation {
        file: rel.to_string(),
        line: line as usize,
        rule: rule.to_string(),
        message,
        snippet: pf.snippet_at(pos),
        allowed: false,
        baselined: false,
    }
}
