//! `coverage-gap` — the meta-lint that keeps the derived rule coverage
//! honest. PR 1's hand-maintained file lists rotted silently:
//! `crates/core/src/migration.rs`, `remap.rs`, and `segment.rs` sat on the
//! migration hot path for multiple PRs with no panic/cast rules applied.
//! With coverage now *derived* from call-graph reachability, the remaining
//! failure mode is a pipeline module the reachability analysis cannot
//! connect to the entry points (a module wired in via trait objects the
//! name matcher misses, dead code awaiting deletion, or a typo'd root).
//! This rule flags every such module, so a pipeline file either gets rule
//! coverage or gets a visible, baselined exception — never silence.

use crate::callgraph::{Coverage, Model};
use crate::lint::Violation;
use crate::parser::ItemKind;

/// Runs the meta-lint over the model.
pub fn check(model: &Model, cov: &Coverage, out: &mut Vec<Violation>) {
    for (fi, file) in model.files.iter().enumerate() {
        if !cov.pipeline.contains(&file.rel) || model.reachable_files.contains(&fi) {
            continue;
        }
        let fns: Vec<_> = file
            .parsed
            .items
            .iter()
            .filter(|it| it.kind == ItemKind::Fn && !it.cfg_test && it.body.is_some())
            .collect();
        let Some(first) = fns.first() else {
            continue; // declarations-only module (types, consts, re-exports)
        };
        out.push(super::violation(
            &file.rel,
            &file.parsed,
            first.line,
            first.span.0,
            "coverage-gap",
            format!(
                "pipeline module with {} function(s) is not reachable from \
                 the simulation entry points ({}), so the derived hot-path \
                 rules do not cover it; wire it into the pipeline, delete \
                 it, or record it in audit.baseline.json",
                fns.len(),
                model.roots.join(", "),
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::derive_coverage;

    #[test]
    fn orphan_pipeline_module_is_flagged() {
        let root = std::env::temp_dir().join(format!("mempod-coverage-gap-{}", std::process::id()));
        if root.exists() {
            std::fs::remove_dir_all(&root).expect("stale fixture removed");
        }
        let write = |rel: &str, content: &str| {
            let p = root.join(rel);
            std::fs::create_dir_all(p.parent().expect("parent")).expect("mkdir");
            std::fs::write(p, content).expect("write");
        };
        write(
            "crates/sim/Cargo.toml",
            "[package]\nname = \"mempod-sim\"\n",
        );
        write("crates/sim/src/lib.rs", "pub mod simulator;\n");
        write(
            "crates/sim/src/simulator.rs",
            "pub struct Simulator;\nimpl Simulator {\n  pub fn run(self) {}\n}\n",
        );
        write(
            "crates/core/Cargo.toml",
            "[package]\nname = \"mempod-core\"\n",
        );
        write(
            "crates/core/src/lib.rs",
            "pub mod lonely;\npub mod decls_only;\n",
        );
        write(
            "crates/core/src/lonely.rs",
            "pub fn unused_logic() -> u8 { 9 }\n",
        );
        write(
            "crates/core/src/decls_only.rs",
            "pub struct JustAType(pub u8);\n",
        );

        let model = Model::build(&root).expect("model");
        let cov = derive_coverage(&model);
        let mut out = Vec::new();
        check(&model, &cov, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "coverage-gap");
        assert_eq!(out[0].file, "crates/core/src/lonely.rs");
        std::fs::remove_dir_all(&root).ok();
    }
}
