//! The workspace lint engine behind `cargo run -p mempod-audit -- lint`.
//!
//! v2 replaces the hand-maintained file lists of PR 1 with coverage
//! *derived* from the workspace source model: the module graph and
//! approximate call graph in [`crate::callgraph`] compute which files are
//! reachable from the simulation entry points (`Simulator::run`, the
//! public `Runner` functions, the `Channel` enqueue/drain methods), and
//! the rule scopes follow automatically. A new pipeline module is covered
//! the moment it is wired in — or flagged by the `coverage-gap` meta-lint
//! if it isn't.
//!
//! Rule families (each in [`crate::rules`]):
//!
//! * `hot-path-panic` — panicking constructs in derived hot-path files.
//! * `recovery-path-panic` — panicking constructs in recovery code
//!   (rollback/recover/degrade/abort functions, any file; all of
//!   `crates/faults`).
//! * `hot-path-print` — ad-hoc printing in the simulation pipeline.
//! * `lossy-cast` — bare integer `as` casts in address-arithmetic files.
//! * `missing-docs` / `missing-debug` — pub-API coverage in the API crates.
//! * `unit-mismatch` — arithmetic mixing ps/ns/cycle-suffixed values.
//! * `unchecked-addr-arith` — raw address arithmetic outside the helpers.
//! * `ignored-result` — discarded `Result`/`#[must_use]` values.
//! * `nondet-iter` / `nondet-float-reduce` — HashMap/HashSet iteration
//!   (and float reductions over it) on simulation-visible state.
//! * `nondet-clock` — wall-clock reads on the hot path.
//! * `interior-mut` — `static mut`/`thread_local!`/cells/locks that hide
//!   writes from the effect analysis.
//! * `coverage-gap` — pipeline modules escaping the derived coverage.
//! * `lock-order-cycle` / `atomic-ordering-mismatch` /
//!   `sync-primitive-outside-facade` — the concurrency audit
//!   ([`crate::sync_pass`]): acquisition-order cycles, unpaired
//!   acquire/release atomics, and raw `std::sync`/`std::thread` escaping
//!   the `mempod-sync` facade.
//!
//! Two grandfathering mechanisms with different lifecycles:
//! * [`Allowlist`] (`audit.allowlist.json`) — intentional, permanent
//!   exemptions. Entries that match nothing are themselves an error, so
//!   an exemption cannot outlive its violation.
//! * [`crate::baseline::Baseline`] (`audit.baseline.json`) — frozen debt
//!   for `--deny-new` adoption; stale entries are reported for deletion.

use std::fmt;
use std::path::Path;

use serde_json::{json, Value};

use crate::baseline::Baseline;
use crate::callgraph::{derive_coverage, Coverage, Model, ADDR_HELPER_FILES};
use crate::rules;
use crate::rules::api::API_CRATES;

/// The hot-path files PR 1 hard-coded. Retained (as data, not as rule
/// scope) so the regression suite can assert the derived coverage is a
/// strict superset — the derivation must never silently *lose* a file the
/// old engine covered.
pub const LEGACY_HOT_PATH_FILES: &[&str] = &[
    "crates/dram/src/channel.rs",
    "crates/dram/src/mapper.rs",
    "crates/sim/src/runner.rs",
    "crates/core/src/manager.rs",
    "crates/core/src/mempod.rs",
];

/// The print-ban files PR 1 hard-coded (see [`LEGACY_HOT_PATH_FILES`]).
pub const LEGACY_PRINT_FILES: &[&str] = &[
    "crates/dram/src/channel.rs",
    "crates/dram/src/mapper.rs",
    "crates/dram/src/system.rs",
    "crates/sim/src/runner.rs",
    "crates/sim/src/simulator.rs",
    "crates/core/src/manager.rs",
    "crates/core/src/mempod.rs",
    "crates/core/src/hma.rs",
    "crates/core/src/thm.rs",
    "crates/core/src/cameo.rs",
    "crates/telemetry/src/metrics.rs",
    "crates/telemetry/src/ring.rs",
    "crates/telemetry/src/event.rs",
    "crates/telemetry/src/sink.rs",
    "crates/telemetry/src/lib.rs",
];

/// The cast-ban files PR 1 hard-coded (see [`LEGACY_HOT_PATH_FILES`]).
pub const LEGACY_CAST_FILES: &[&str] = &[
    "crates/types/src/addr.rs",
    "crates/types/src/geometry.rs",
    "crates/dram/src/mapper.rs",
];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier.
    pub rule: String,
    /// Human-readable explanation.
    pub message: String,
    /// The trimmed source line.
    pub snippet: String,
    /// Whether an allowlist entry grandfathers this finding.
    pub allowed: bool,
    /// Whether a baseline entry grandfathers this finding (`--deny-new`).
    pub baselined: bool,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// One grandfathered finding: matches violations in `file` for `rule`
/// whose source line contains `line_contains` (content-anchored rather
/// than line-number-anchored so unrelated edits don't invalidate it).
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Workspace-relative file the exemption applies to.
    pub file: String,
    /// Rule identifier the exemption applies to.
    pub rule: String,
    /// Substring the offending line must contain.
    pub line_contains: String,
}

impl fmt::Display for AllowEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{{file: {}, rule: {}, line_contains: {:?}}}",
            self.file, self.rule, self.line_contains
        )
    }
}

/// The intentional-exemption allowlist.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parses the allowlist JSON: an array of
    /// `{"file", "rule", "line_contains"}` objects.
    ///
    /// # Errors
    ///
    /// Returns a message for malformed JSON or missing fields.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v: Value =
            serde_json::from_str(text).map_err(|e| format!("allowlist is not valid JSON: {e}"))?;
        let Some(items) = v.as_array() else {
            return Err("allowlist must be a JSON array".to_string());
        };
        let mut entries = Vec::new();
        for (i, item) in items.iter().enumerate() {
            let field = |k: &str| {
                item[k]
                    .as_str()
                    .map(str::to_string)
                    .ok_or_else(|| format!("allowlist entry {i}: missing string field `{k}`"))
            };
            entries.push(AllowEntry {
                file: field("file")?,
                rule: field("rule")?,
                line_contains: field("line_contains")?,
            });
        }
        Ok(Allowlist { entries })
    }

    /// Whether this allowlist grandfathers the given finding.
    pub fn permits(&self, file: &str, rule: &str, snippet: &str) -> bool {
        self.entries
            .iter()
            .any(|e| e.file == file && e.rule == rule && snippet.contains(&e.line_contains))
    }

    /// Entries that match none of `violations` — grandfathered exemptions
    /// that have outlived their violation and must be deleted.
    pub fn unused<'a>(&'a self, violations: &[Violation]) -> Vec<&'a AllowEntry> {
        self.entries
            .iter()
            .filter(|e| {
                !violations.iter().any(|v| {
                    v.file == e.file && v.rule == e.rule && v.snippet.contains(&e.line_contains)
                })
            })
            .collect()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the allowlist is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Result of one lint run.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// Every finding, including allowlisted/baselined ones.
    pub violations: Vec<Violation>,
    /// Number of files in the workspace model.
    pub files_scanned: usize,
    /// The derived rule coverage.
    pub coverage: Coverage,
    /// The call-graph roots the coverage was derived from.
    pub roots: Vec<String>,
    /// Allowlist entries that matched no finding (an error: exemptions
    /// must not outlive their violations).
    pub stale_allowlist: Vec<String>,
    /// Baseline entries that matched no finding (fixed debt; delete them).
    pub stale_baseline: Vec<String>,
}

impl LintReport {
    /// Findings not covered by the allowlist or baseline.
    pub fn blocking(&self) -> impl Iterator<Item = &Violation> {
        self.violations
            .iter()
            .filter(|v| !v.allowed && !v.baselined)
    }

    /// Whether the tree passes: no blocking findings *and* no stale
    /// allowlist entries.
    pub fn ok(&self) -> bool {
        self.blocking().count() == 0 && self.stale_allowlist.is_empty()
    }

    /// Marks findings present in `baseline` and records its stale entries.
    pub fn apply_baseline(&mut self, baseline: &Baseline) {
        for v in &mut self.violations {
            if !v.allowed && baseline.permits(v) {
                v.baselined = true;
            }
        }
        self.stale_baseline = baseline
            .stale(&self.violations)
            .into_iter()
            .map(|e| format!("{}: [{}] {:?}", e.file, e.rule, e.snippet))
            .collect();
    }

    /// The machine-readable report.
    pub fn to_json(&self) -> Value {
        let violations: Vec<Value> = self
            .violations
            .iter()
            .map(|v| {
                json!({
                    "file": v.file.clone(),
                    "line": v.line,
                    "rule": v.rule.clone(),
                    "message": v.message.clone(),
                    "snippet": v.snippet.clone(),
                    "allowed": v.allowed,
                    "baselined": v.baselined,
                })
            })
            .collect();
        let set = |s: &std::collections::BTreeSet<String>| {
            Value::Array(s.iter().cloned().map(Value::String).collect())
        };
        json!({
            "tool": "mempod-audit",
            "check": "lint",
            "files_scanned": self.files_scanned,
            "blocking": self.blocking().count(),
            "allowlisted": self.violations.iter().filter(|v| v.allowed).count(),
            "baselined": self.violations.iter().filter(|v| v.baselined).count(),
            "ok": self.ok(),
            "roots": self.roots.clone(),
            "coverage": {
                "hot_path": set(&self.coverage.hot),
                "print": set(&self.coverage.print),
                "cast": set(&self.coverage.cast),
                "pipeline": set(&self.coverage.pipeline),
            },
            "stale_allowlist": self.stale_allowlist.clone(),
            "stale_baseline": self.stale_baseline.clone(),
            "violations": Value::Array(violations),
        })
    }
}

/// Runs every rule over the workspace rooted at `root`, with coverage
/// derived from the source model. Baseline handling is separate — see
/// [`LintReport::apply_baseline`].
pub fn run_lint(root: &Path, allowlist: &Allowlist) -> LintReport {
    let model = match Model::build(root) {
        Ok(m) => m,
        Err(e) => {
            // No workspace shape at all: a single finding so the failure
            // is visible in the report rather than silently "clean".
            return LintReport {
                violations: vec![Violation {
                    file: String::new(),
                    line: 0,
                    rule: "model-error".to_string(),
                    message: e,
                    snippet: String::new(),
                    allowed: false,
                    baselined: false,
                }],
                files_scanned: 0,
                coverage: Coverage::default(),
                roots: Vec::new(),
                stale_allowlist: Vec::new(),
                stale_baseline: Vec::new(),
            };
        }
    };
    let coverage = derive_coverage(&model);
    let mut violations = Vec::new();

    for file in &model.files {
        let rel = file.rel.as_str();
        if coverage.hot.contains(rel) {
            rules::panic::check(rel, &file.parsed, &mut violations);
            rules::nondet::check(rel, &file.parsed, &mut violations);
            rules::clock::check(rel, &file.parsed, &mut violations);
            rules::interior_mut::check(rel, &file.parsed, &mut violations);
        }
        // Recovery code is scrutinized everywhere, not just on the derived
        // hot path: a rollback helper in a cold module still runs exactly
        // when a fault has fired.
        let whole_crate = file.crate_name == "mempod-faults";
        rules::recovery::check(rel, &file.parsed, whole_crate, &mut violations);
        if coverage.print.contains(rel) {
            rules::print::check(rel, &file.parsed, &mut violations);
        }
        if coverage.cast.contains(rel) {
            rules::cast::check(rel, &file.parsed, &mut violations);
        }
        if API_CRATES.contains(&file.crate_name.as_str()) {
            rules::api::check(rel, &file.parsed, &mut violations);
        }
        let addr_helper = ADDR_HELPER_FILES.iter().any(|h| rel.ends_with(h));
        if coverage.pipeline.contains(rel) && !addr_helper {
            rules::addr_arith::check(rel, &file.parsed, &mut violations);
        }
        if coverage.pipeline.contains(rel) || file.crate_name == "mempod-types" {
            rules::units::check(rel, &file.parsed, &mut violations);
        }
    }
    rules::ignored_result::check(&model, &coverage, &mut violations);
    rules::coverage::check(&model, &coverage, &mut violations);
    rules::span::check(&model, &mut violations);
    crate::sync_pass::check(&model, &mut violations);

    for v in &mut violations {
        v.allowed = allowlist.permits(&v.file, &v.rule, &v.snippet);
    }
    violations.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    let stale_allowlist = allowlist
        .unused(&violations)
        .into_iter()
        .map(|e| e.to_string())
        .collect();
    LintReport {
        violations,
        files_scanned: model.files.len(),
        coverage,
        roots: model.roots,
        stale_allowlist,
        stale_baseline: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allowlist_grandfathers_by_content() {
        let al = Allowlist::from_json(
            r#"[{"file": "f.rs", "rule": "hot-path-panic",
                 "line_contains": "legacy_unwrap"}]"#,
        )
        .expect("valid allowlist");
        assert!(al.permits(
            "f.rs",
            "hot-path-panic",
            "let x = legacy_unwrap().unwrap();"
        ));
        assert!(!al.permits("f.rs", "hot-path-panic", "other.unwrap()"));
        assert!(!al.permits("g.rs", "hot-path-panic", "legacy_unwrap"));
    }

    #[test]
    fn unused_allowlist_entries_are_detected() {
        let al = Allowlist::from_json(
            r#"[{"file": "f.rs", "rule": "hot-path-panic", "line_contains": "live"},
                {"file": "f.rs", "rule": "hot-path-panic", "line_contains": "dead"}]"#,
        )
        .expect("valid allowlist");
        let violations = vec![Violation {
            file: "f.rs".into(),
            line: 1,
            rule: "hot-path-panic".into(),
            message: "m".into(),
            snippet: "live.unwrap()".into(),
            allowed: true,
            baselined: false,
        }];
        let unused = al.unused(&violations);
        assert_eq!(unused.len(), 1);
        assert_eq!(unused[0].line_contains, "dead");
    }

    #[test]
    fn report_json_names_file_line_rule() {
        let report = LintReport {
            violations: vec![Violation {
                file: "crates/x.rs".into(),
                line: 12,
                rule: "hot-path-panic".into(),
                message: "m".into(),
                snippet: "s".into(),
                allowed: false,
                baselined: false,
            }],
            files_scanned: 1,
            coverage: Coverage::default(),
            roots: vec!["Simulator::run".into()],
            stale_allowlist: Vec::new(),
            stale_baseline: Vec::new(),
        };
        let j = report.to_json();
        assert_eq!(j["ok"].as_bool(), Some(false));
        assert_eq!(j["violations"][0]["file"].as_str(), Some("crates/x.rs"));
        assert_eq!(j["violations"][0]["line"].as_u64(), Some(12));
        assert_eq!(j["violations"][0]["rule"].as_str(), Some("hot-path-panic"));
        assert_eq!(j["roots"][0].as_str(), Some("Simulator::run"));
    }

    #[test]
    fn stale_allowlist_blocks_even_when_violations_pass() {
        let report = LintReport {
            violations: Vec::new(),
            files_scanned: 1,
            coverage: Coverage::default(),
            roots: Vec::new(),
            stale_allowlist: vec!["{file: f.rs, …}".into()],
            stale_baseline: Vec::new(),
        };
        assert!(!report.ok());
        assert_eq!(report.blocking().count(), 0);
    }

    #[test]
    fn baseline_marks_findings_and_reports_stale_entries() {
        let live = Violation {
            file: "f.rs".into(),
            line: 3,
            rule: "lossy-cast".into(),
            message: "m".into(),
            snippet: "x as u32".into(),
            allowed: false,
            baselined: false,
        };
        let baseline = Baseline::from_json(
            r#"{"version": 1, "entries": [
                {"file": "f.rs", "rule": "lossy-cast", "snippet": "x as u32"},
                {"file": "f.rs", "rule": "lossy-cast", "snippet": "fixed as u8"}]}"#,
        )
        .expect("valid baseline");
        let mut report = LintReport {
            violations: vec![live],
            files_scanned: 1,
            coverage: Coverage::default(),
            roots: Vec::new(),
            stale_allowlist: Vec::new(),
            stale_baseline: Vec::new(),
        };
        report.apply_baseline(&baseline);
        assert!(report.ok(), "{report:?}");
        assert!(report.violations[0].baselined);
        assert_eq!(report.stale_baseline.len(), 1);
        assert!(report.stale_baseline[0].contains("fixed as u8"));
    }
}
