//! The workspace lint engine behind `cargo run -p mempod-audit -- lint`.
//!
//! Four rule families, all operating on comment- and string-stripped
//! source so prose never trips a rule:
//!
//! * **hot-path-panic** — `.unwrap()`, `.expect(`, `panic!(`, `todo!(`
//!   and `unimplemented!(` are forbidden in the migration pipeline's hot
//!   modules (DRAM channel/mapper, simulator runner, manager core)
//!   outside `#[cfg(test)]` regions. Hot paths return `Result`s;
//!   panicking conveniences belong at crate surfaces and in tests.
//! * **hot-path-print** — ad-hoc `println!`/`eprintln!`/`print!`/
//!   `eprint!` are forbidden in the simulation pipeline (managers, DRAM
//!   model, simulator, runner, telemetry itself): per-access printing
//!   destroys throughput, and diagnostics belong in the structured
//!   telemetry event stream, not on stdout. Experiment bins still print —
//!   that is their job — so the rule covers only library modules.
//! * **lossy-cast** — bare `as` casts to integer types are forbidden in
//!   the address-arithmetic files; conversions must go through the
//!   checked helpers in `mempod_types::convert` (or `From`/`try_from`),
//!   so silent truncation of addresses can't happen.
//! * **missing-docs** / **missing-debug** — every `pub` item in
//!   `mempod-types` and `mempod-core` needs a doc comment, and every
//!   `pub` struct/enum there needs `Debug` (derived or hand-written).
//!
//! Findings render as a machine-readable JSON report; grandfathered
//! violations can be allowlisted in `audit.allowlist.json` at the
//! workspace root.

use std::fmt;
use std::path::{Path, PathBuf};

use serde_json::{json, Value};

/// The hot modules where panicking is banned.
const HOT_PATH_FILES: &[&str] = &[
    "crates/dram/src/channel.rs",
    "crates/dram/src/mapper.rs",
    "crates/sim/src/runner.rs",
    "crates/core/src/manager.rs",
    "crates/core/src/mempod.rs",
];

/// Simulation-pipeline library modules where ad-hoc printing is banned
/// (diagnostics go through `mempod-telemetry` events instead). A superset
/// of [`HOT_PATH_FILES`] — panicking is allowed at some of these crate
/// surfaces, but printing is not allowed anywhere in the pipeline.
const PRINT_FILES: &[&str] = &[
    "crates/dram/src/channel.rs",
    "crates/dram/src/mapper.rs",
    "crates/dram/src/system.rs",
    "crates/sim/src/runner.rs",
    "crates/sim/src/simulator.rs",
    "crates/core/src/manager.rs",
    "crates/core/src/mempod.rs",
    "crates/core/src/hma.rs",
    "crates/core/src/thm.rs",
    "crates/core/src/cameo.rs",
    "crates/telemetry/src/metrics.rs",
    "crates/telemetry/src/ring.rs",
    "crates/telemetry/src/event.rs",
    "crates/telemetry/src/sink.rs",
    "crates/telemetry/src/lib.rs",
];

/// The address-arithmetic files where bare integer `as` casts are banned.
const CAST_FILES: &[&str] = &[
    "crates/types/src/addr.rs",
    "crates/types/src/geometry.rs",
    "crates/dram/src/mapper.rs",
];

/// Crate source roots whose `pub` API must be documented and `Debug`.
const API_DIRS: &[&str] = &["crates/types/src", "crates/core/src"];

/// Panicking constructs searched for on hot paths.
const PANIC_PATTERNS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "todo!(",
    "unimplemented!(",
];

/// Printing macros banned in the simulation pipeline. Matches are
/// anchored on a non-identifier preceding character, so `eprintln!(` never
/// also counts as `println!(` and `my_print!(` never counts at all.
const PRINT_PATTERNS: &[&str] = &["println!(", "eprintln!(", "print!(", "eprint!("];

/// Integer cast targets that make an `as` cast potentially lossy.
const INT_TARGETS: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (`hot-path-panic`, `lossy-cast`, `missing-docs`,
    /// `missing-debug`).
    pub rule: String,
    /// Human-readable explanation.
    pub message: String,
    /// The trimmed source line.
    pub snippet: String,
    /// Whether an allowlist entry grandfathers this finding.
    pub allowed: bool,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// One grandfathered finding: matches violations in `file` for `rule`
/// whose source line contains `line_contains` (content-anchored rather
/// than line-number-anchored so unrelated edits don't invalidate it).
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Workspace-relative file the exemption applies to.
    pub file: String,
    /// Rule identifier the exemption applies to.
    pub rule: String,
    /// Substring the offending line must contain.
    pub line_contains: String,
}

/// The grandfathered-violation allowlist.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parses the allowlist JSON: an array of
    /// `{"file", "rule", "line_contains"}` objects.
    ///
    /// # Errors
    ///
    /// Returns a message for malformed JSON or missing fields.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v: Value =
            serde_json::from_str(text).map_err(|e| format!("allowlist is not valid JSON: {e}"))?;
        let Some(items) = v.as_array() else {
            return Err("allowlist must be a JSON array".to_string());
        };
        let mut entries = Vec::new();
        for (i, item) in items.iter().enumerate() {
            let field = |k: &str| {
                item[k]
                    .as_str()
                    .map(str::to_string)
                    .ok_or_else(|| format!("allowlist entry {i}: missing string field `{k}`"))
            };
            entries.push(AllowEntry {
                file: field("file")?,
                rule: field("rule")?,
                line_contains: field("line_contains")?,
            });
        }
        Ok(Allowlist { entries })
    }

    /// Whether this allowlist grandfathers the given finding.
    pub fn permits(&self, file: &str, rule: &str, snippet: &str) -> bool {
        self.entries
            .iter()
            .any(|e| e.file == file && e.rule == rule && snippet.contains(&e.line_contains))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the allowlist is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Result of one lint run.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// Every finding, including allowlisted ones.
    pub violations: Vec<Violation>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// Findings not covered by the allowlist.
    pub fn blocking(&self) -> impl Iterator<Item = &Violation> {
        self.violations.iter().filter(|v| !v.allowed)
    }

    /// Whether the tree passes (no non-allowlisted findings).
    pub fn ok(&self) -> bool {
        self.blocking().count() == 0
    }

    /// The machine-readable report.
    pub fn to_json(&self) -> Value {
        let violations: Vec<Value> = self
            .violations
            .iter()
            .map(|v| {
                json!({
                    "file": v.file.clone(),
                    "line": v.line,
                    "rule": v.rule.clone(),
                    "message": v.message.clone(),
                    "snippet": v.snippet.clone(),
                    "allowed": v.allowed,
                })
            })
            .collect();
        json!({
            "tool": "mempod-audit",
            "check": "lint",
            "files_scanned": self.files_scanned,
            "blocking": self.blocking().count(),
            "allowlisted": self.violations.iter().filter(|v| v.allowed).count(),
            "ok": self.ok(),
            "violations": Value::Array(violations),
        })
    }
}

/// Runs every rule over the workspace rooted at `root`.
///
/// Missing files are skipped silently only for the directory walk; the
/// named hot-path/cast files produce a finding when absent, so the rule
/// set can't rot when files move.
pub fn run_lint(root: &Path, allowlist: &Allowlist) -> LintReport {
    let mut violations = Vec::new();
    let mut files_scanned = 0usize;

    for rel in HOT_PATH_FILES {
        match read_rel(root, rel) {
            Some(src) => {
                files_scanned += 1;
                check_hot_path(rel, &src, &mut violations);
            }
            None => violations.push(missing_file(rel, "hot-path-panic")),
        }
    }
    for rel in PRINT_FILES {
        match read_rel(root, rel) {
            Some(src) => {
                files_scanned += 1;
                check_prints(rel, &src, &mut violations);
            }
            None => violations.push(missing_file(rel, "hot-path-print")),
        }
    }
    for rel in CAST_FILES {
        match read_rel(root, rel) {
            Some(src) => {
                files_scanned += 1;
                check_casts(rel, &src, &mut violations);
            }
            None => violations.push(missing_file(rel, "lossy-cast")),
        }
    }
    for dir in API_DIRS {
        for path in rust_files_under(&root.join(dir)) {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            if let Ok(src) = std::fs::read_to_string(&path) {
                files_scanned += 1;
                check_api_surface(&rel, &src, &mut violations);
            }
        }
    }

    for v in &mut violations {
        v.allowed = allowlist.permits(&v.file, &v.rule, &v.snippet);
    }
    violations.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    LintReport {
        violations,
        files_scanned,
    }
}

fn missing_file(rel: &str, rule: &str) -> Violation {
    Violation {
        file: rel.to_string(),
        line: 0,
        rule: rule.to_string(),
        message: "file named in the lint rule set does not exist".to_string(),
        snippet: String::new(),
        allowed: false,
    }
}

fn read_rel(root: &Path, rel: &str) -> Option<String> {
    std::fs::read_to_string(root.join(rel)).ok()
}

/// All `.rs` files under `dir`, recursively, in sorted order.
fn rust_files_under(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for entry in entries.flatten() {
            let p = entry.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

// ---------------------------------------------------------------------------
// Source preprocessing
// ---------------------------------------------------------------------------

/// Replaces comments and string/char literal contents with spaces
/// (newlines preserved), so rules only ever match real code. Handles line
/// and nested block comments, ordinary/raw/byte strings, char literals,
/// and lifetimes.
pub fn strip_comments_and_strings(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut i = 0;
    let blank = |out: &mut Vec<u8>, bytes: &[u8]| {
        for &c in bytes {
            out.push(if c == b'\n' { b'\n' } else { b' ' });
        }
    };
    while i < b.len() {
        if b[i..].starts_with(b"//") {
            let end = memchr_from(b, i, b'\n').unwrap_or(b.len());
            blank(&mut out, &b[i..end]);
            i = end;
        } else if b[i..].starts_with(b"/*") {
            let mut depth = 1usize;
            let mut j = i + 2;
            while j < b.len() && depth > 0 {
                if b[j..].starts_with(b"/*") {
                    depth += 1;
                    j += 2;
                } else if b[j..].starts_with(b"*/") {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            blank(&mut out, &b[i..j]);
            i = j;
        } else if b[i] == b'r'
            && !prev_is_ident(b, i)
            && matches!(b.get(i + 1), Some(b'"') | Some(b'#'))
        {
            // Raw string r"..." / r#"..."#.
            let mut hashes = 0usize;
            let mut j = i + 1;
            while b.get(j) == Some(&b'#') {
                hashes += 1;
                j += 1;
            }
            if b.get(j) != Some(&b'"') {
                out.push(b[i]);
                i += 1;
                continue;
            }
            out.push(b'r');
            blank(&mut out, &b[i + 1..j + 1]);
            j += 1;
            let closer: Vec<u8> = std::iter::once(b'"')
                .chain(std::iter::repeat_n(b'#', hashes))
                .collect();
            let end = find_sub(b, j, &closer).unwrap_or(b.len());
            blank(&mut out, &b[j..(end + closer.len()).min(b.len())]);
            i = (end + closer.len()).min(b.len());
        } else if b[i] == b'"' {
            out.push(b'"');
            let mut j = i + 1;
            while j < b.len() {
                if b[j] == b'\\' {
                    j += 2;
                } else if b[j] == b'"' {
                    break;
                } else {
                    j += 1;
                }
            }
            let end = (j + 1).min(b.len());
            blank(&mut out, &b[i + 1..end]);
            i = end;
        } else if b[i] == b'\'' {
            // Char literal vs lifetime.
            let is_char = match b.get(i + 1) {
                Some(b'\\') => true,
                Some(_) => {
                    // 'x' is a char literal; 'a in "fn f<'a>" is not.
                    // Look for a closing quote within the next few bytes
                    // (covers multi-byte UTF-8 chars).
                    (2..=5).any(|k| b.get(i + k) == Some(&b'\'')) && b.get(i + 2) != Some(&b':')
                }
                None => false,
            };
            if is_char {
                out.push(b'\'');
                let mut j = i + 1;
                if b.get(j) == Some(&b'\\') {
                    j += 2;
                }
                while j < b.len() && b[j] != b'\'' {
                    j += 1;
                }
                let end = (j + 1).min(b.len());
                blank(&mut out, &b[i + 1..end]);
                i = end;
            } else {
                out.push(b'\'');
                i += 1;
            }
        } else {
            out.push(b[i]);
            i += 1;
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn prev_is_ident(b: &[u8], i: usize) -> bool {
    i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_')
}

fn memchr_from(b: &[u8], from: usize, needle: u8) -> Option<usize> {
    b[from..]
        .iter()
        .position(|&c| c == needle)
        .map(|p| p + from)
}

fn find_sub(b: &[u8], from: usize, needle: &[u8]) -> Option<usize> {
    if needle.is_empty() || from >= b.len() {
        return None;
    }
    b[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|p| p + from)
}

/// Byte ranges of `#[cfg(test)]`-gated blocks and `macro_rules!` bodies,
/// which every rule exempts.
pub fn exempt_ranges(code: &str) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    for marker in ["#[cfg(test)]", "macro_rules!"] {
        let mut from = 0;
        while let Some(pos) = code[from..].find(marker) {
            let start = from + pos;
            let after = start + marker.len();
            if let Some(open_rel) = code[after..].find('{') {
                let open = after + open_rel;
                let close = matching_brace(code.as_bytes(), open);
                ranges.push((start, close));
                from = close;
            } else {
                from = after;
            }
        }
    }
    ranges
}

/// Index one past the brace matching the `{` at `open` (or end of input).
fn matching_brace(b: &[u8], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < b.len() {
        match b[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    b.len()
}

fn in_ranges(ranges: &[(usize, usize)], pos: usize) -> bool {
    ranges.iter().any(|&(s, e)| pos >= s && pos < e)
}

/// 1-based line number of byte offset `pos`.
fn line_of(code: &str, pos: usize) -> usize {
    code.as_bytes()[..pos]
        .iter()
        .filter(|&&c| c == b'\n')
        .count()
        + 1
}

/// The trimmed original-source line containing byte offset `pos` in the
/// stripped text (offsets are preserved by the stripper).
fn snippet_at(original: &str, stripped: &str, pos: usize) -> String {
    let line = line_of(stripped, pos);
    original
        .lines()
        .nth(line - 1)
        .unwrap_or("")
        .trim()
        .to_string()
}

// ---------------------------------------------------------------------------
// Rule: hot-path-panic
// ---------------------------------------------------------------------------

fn check_hot_path(rel: &str, src: &str, out: &mut Vec<Violation>) {
    let code = strip_comments_and_strings(src);
    let exempt = exempt_ranges(&code);
    for pat in PANIC_PATTERNS {
        let mut from = 0;
        while let Some(p) = code[from..].find(pat) {
            let pos = from + p;
            from = pos + pat.len();
            if in_ranges(&exempt, pos) {
                continue;
            }
            out.push(Violation {
                file: rel.to_string(),
                line: line_of(&code, pos),
                rule: "hot-path-panic".to_string(),
                message: format!(
                    "`{}` is forbidden on the hot path; return a Result or \
                     handle the case explicitly",
                    pat.trim_end_matches('(')
                ),
                snippet: snippet_at(src, &code, pos),
                allowed: false,
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: hot-path-print
// ---------------------------------------------------------------------------

fn check_prints(rel: &str, src: &str, out: &mut Vec<Violation>) {
    let code = strip_comments_and_strings(src);
    let exempt = exempt_ranges(&code);
    let b = code.as_bytes();
    for pat in PRINT_PATTERNS {
        let mut from = 0;
        while let Some(p) = code[from..].find(pat) {
            let pos = from + p;
            from = pos + pat.len();
            if in_ranges(&exempt, pos) || prev_is_ident(b, pos) {
                continue;
            }
            out.push(Violation {
                file: rel.to_string(),
                line: line_of(&code, pos),
                rule: "hot-path-print".to_string(),
                message: format!(
                    "`{}` is forbidden in the simulation pipeline; emit a \
                     structured mempod-telemetry event instead",
                    pat.trim_end_matches('(')
                ),
                snippet: snippet_at(src, &code, pos),
                allowed: false,
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: lossy-cast
// ---------------------------------------------------------------------------

fn check_casts(rel: &str, src: &str, out: &mut Vec<Violation>) {
    let code = strip_comments_and_strings(src);
    let exempt = exempt_ranges(&code);
    let b = code.as_bytes();
    let mut from = 0;
    while let Some(p) = code[from..].find(" as ") {
        let pos = from + p;
        from = pos + 4;
        if in_ranges(&exempt, pos) {
            continue;
        }
        // ` as ` inside a longer word can't happen (spaces delimit), but
        // the target type must be an integer primitive to count.
        let mut j = pos + 4;
        while j < b.len() && b[j] == b' ' {
            j += 1;
        }
        let start = j;
        while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
            j += 1;
        }
        let target = &code[start..j];
        if INT_TARGETS.contains(&target) {
            out.push(Violation {
                file: rel.to_string(),
                line: line_of(&code, pos),
                rule: "lossy-cast".to_string(),
                message: format!(
                    "bare `as {target}` cast in address arithmetic; use \
                     mempod_types::convert (or From/try_from) instead"
                ),
                snippet: snippet_at(src, &code, pos),
                allowed: false,
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Rules: missing-docs / missing-debug
// ---------------------------------------------------------------------------

fn check_api_surface(rel: &str, src: &str, out: &mut Vec<Violation>) {
    let code = strip_comments_and_strings(src);
    let exempt = exempt_ranges(&code);
    // Manual Debug impls satisfy missing-debug just like derives.
    let manual_debug: Vec<&str> = src
        .match_indices("Debug for ")
        .map(|(p, _)| {
            let rest = &src[p + "Debug for ".len()..];
            let end = rest
                .find(|c: char| !c.is_alphanumeric() && c != '_')
                .unwrap_or(rest.len());
            &rest[..end]
        })
        .collect();

    // Walk the stripped code line by line (offsets preserved), carrying
    // doc/attribute state for the next item.
    let mut offset = 0usize;
    let mut has_doc = false;
    let mut attrs = String::new();
    // > 0 while inside a multi-line attribute such as `#[derive(\n...\n)]`.
    let mut attr_depth = 0i32;
    // Original lines carry the doc comments the stripper blanked out.
    let orig_lines: Vec<&str> = src.lines().collect();
    for (idx, line) in code.lines().enumerate() {
        let line_start = offset;
        offset += line.len() + 1;
        let orig = orig_lines.get(idx).copied().unwrap_or("").trim();
        let trimmed = line.trim();
        if in_ranges(&exempt, line_start + (line.len() - line.trim_start().len())) {
            continue;
        }
        if orig.starts_with("///") {
            has_doc = true;
            continue;
        }
        if orig.starts_with("#[doc") {
            has_doc = true;
            continue;
        }
        if attr_depth > 0 || trimmed.starts_with("#[") || trimmed.starts_with("#!") {
            attrs.push_str(trimmed);
            attrs.push('\n');
            for c in trimmed.chars() {
                match c {
                    '[' => attr_depth += 1,
                    ']' => attr_depth -= 1,
                    _ => {}
                }
            }
            continue;
        }
        if trimmed.is_empty() {
            continue;
        }
        if let Some(item) = pub_item(trimmed) {
            let lineno = idx + 1;
            if !has_doc {
                out.push(Violation {
                    file: rel.to_string(),
                    line: lineno,
                    rule: "missing-docs".to_string(),
                    message: format!("public {} `{}` has no doc comment", item.kind, item.name),
                    snippet: orig.to_string(),
                    allowed: false,
                });
            }
            if (item.kind == "struct" || item.kind == "enum")
                && !attrs_contain_debug(&attrs)
                && !manual_debug.contains(&item.name.as_str())
            {
                out.push(Violation {
                    file: rel.to_string(),
                    line: lineno,
                    rule: "missing-debug".to_string(),
                    message: format!(
                        "public {} `{}` neither derives nor implements Debug",
                        item.kind, item.name
                    ),
                    snippet: orig.to_string(),
                    allowed: false,
                });
            }
        }
        has_doc = false;
        attrs.clear();
    }
}

fn attrs_contain_debug(attrs: &str) -> bool {
    attrs
        .split("derive(")
        .skip(1)
        .any(|rest| match rest.find(')') {
            Some(end) => rest[..end].split(',').any(|item| item.trim() == "Debug"),
            None => false,
        })
}

/// A detected public item declaration.
struct PubItem {
    kind: &'static str,
    name: String,
}

/// Parses `pub <kind> <name>` item heads. `pub use`/`pub mod` are skipped
/// (re-exports and module declarations carry their docs elsewhere), as are
/// struct fields, which are covered by the struct's own doc requirement.
fn pub_item(trimmed: &str) -> Option<PubItem> {
    let rest = trimmed.strip_prefix("pub ")?;
    let kinds: &[(&str, &'static str)] = &[
        ("struct ", "struct"),
        ("enum ", "enum"),
        ("trait ", "trait"),
        ("fn ", "fn"),
        ("const ", "const"),
        ("static ", "static"),
        ("type ", "type"),
        ("union ", "union"),
        ("unsafe fn ", "fn"),
    ];
    for (prefix, kind) in kinds {
        if let Some(after) = rest.strip_prefix(prefix) {
            let name: String = after
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if name.is_empty() {
                return None;
            }
            return Some(PubItem { kind, name });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripper_blanks_comments_and_strings() {
        let src = "let a = \"panic!(\"; // .unwrap()\n/* todo!( */ let b = 'x';";
        let code = strip_comments_and_strings(src);
        assert!(!code.contains("panic!("));
        assert!(!code.contains(".unwrap()"));
        assert!(!code.contains("todo!("));
        assert_eq!(code.matches('\n').count(), src.matches('\n').count());
    }

    #[test]
    fn stripper_keeps_lifetimes_intact() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        assert_eq!(strip_comments_and_strings(src), src);
    }

    #[test]
    fn hot_path_rule_flags_and_exempts() {
        let src = "fn f(x: Option<u8>) { x.unwrap(); }\n\
                   #[cfg(test)]\nmod tests {\n  fn g(x: Option<u8>) { x.unwrap(); }\n}\n";
        let mut v = Vec::new();
        check_hot_path("f.rs", src, &mut v);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 1);
        assert_eq!(v[0].rule, "hot-path-panic");
    }

    #[test]
    fn unwrap_or_is_not_flagged() {
        let mut v = Vec::new();
        check_hot_path(
            "f.rs",
            "let x = o.unwrap_or(3); let y = r.expect_err(\"no\");",
            &mut v,
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn print_rule_flags_each_macro_once_and_exempts_tests() {
        let src = "fn f() { println!(\"x\"); }\n\
                   fn g() { eprintln!(\"y\"); }\n\
                   #[cfg(test)]\nmod tests {\n  fn h() { println!(\"ok in tests\"); }\n}\n";
        let mut v = Vec::new();
        check_prints("f.rs", src, &mut v);
        let lines: Vec<usize> = v.iter().map(|v| v.line).collect();
        // eprintln! on line 2 must not also match as println!.
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(lines.contains(&1) && lines.contains(&2), "{lines:?}");
        assert!(v.iter().all(|v| v.rule == "hot-path-print"));
    }

    #[test]
    fn print_rule_ignores_prose_and_custom_macros() {
        let mut v = Vec::new();
        check_prints(
            "f.rs",
            "// println!(\"in a comment\")\nlet s = \"println!(\"; my_print!(x);\n",
            &mut v,
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn cast_rule_flags_integer_targets_only() {
        let src = "let a = x as u32;\nlet b = x as f64;\nlet c = y as usize;\n";
        let mut v = Vec::new();
        check_casts("g.rs", src, &mut v);
        let lines: Vec<usize> = v.iter().map(|v| v.line).collect();
        assert_eq!(lines, [1, 3]);
    }

    #[test]
    fn api_rules_demand_docs_and_debug() {
        let src = "/// Documented.\n#[derive(Debug)]\npub struct Good(u8);\n\
                   pub struct Bad(u8);\n\
                   /// Doc but no Debug.\npub enum NoDebug { A }\n\
                   impl std::fmt::Debug for Manual {}\n\
                   /// ok\npub struct Manual;\n";
        let mut v = Vec::new();
        check_api_surface("h.rs", src, &mut v);
        let rules: Vec<(&str, usize)> = v.iter().map(|v| (v.rule.as_str(), v.line)).collect();
        assert!(rules.contains(&("missing-docs", 4)), "{rules:?}");
        assert!(rules.contains(&("missing-debug", 4)), "{rules:?}");
        assert!(rules.contains(&("missing-debug", 6)), "{rules:?}");
        assert_eq!(v.len(), 3, "{v:?}");
    }

    #[test]
    fn multi_line_derive_attributes_are_tracked() {
        let src = "/// Documented.\n#[derive(\n    Debug, Clone, Copy,\n)]\n\
                   #[serde(transparent)]\npub struct Spanning(u8);\n";
        let mut v = Vec::new();
        check_api_surface("i.rs", src, &mut v);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn allowlist_grandfathers_by_content() {
        let al = Allowlist::from_json(
            r#"[{"file": "f.rs", "rule": "hot-path-panic",
                 "line_contains": "legacy_unwrap"}]"#,
        )
        .expect("valid allowlist");
        assert!(al.permits(
            "f.rs",
            "hot-path-panic",
            "let x = legacy_unwrap().unwrap();"
        ));
        assert!(!al.permits("f.rs", "hot-path-panic", "other.unwrap()"));
        assert!(!al.permits("g.rs", "hot-path-panic", "legacy_unwrap"));
    }

    #[test]
    fn report_json_names_file_line_rule() {
        let report = LintReport {
            violations: vec![Violation {
                file: "crates/x.rs".into(),
                line: 12,
                rule: "hot-path-panic".into(),
                message: "m".into(),
                snippet: "s".into(),
                allowed: false,
            }],
            files_scanned: 1,
        };
        let j = report.to_json();
        assert_eq!(j["ok"].as_bool(), Some(false));
        assert_eq!(j["violations"][0]["file"].as_str(), Some("crates/x.rs"));
        assert_eq!(j["violations"][0]["line"].as_u64(), Some(12));
        assert_eq!(j["violations"][0]["rule"].as_str(), Some("hot-path-panic"));
    }
}
