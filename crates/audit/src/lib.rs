//! Workspace guardrails for the MemPod reproduction suite.
//!
//! Two halves, sharing one crate so the rules and the machinery that
//! enforces them version together:
//!
//! * [`lint`] — the static-analysis engine behind
//!   `cargo run -p mempod-audit -- lint`: hot-path panic bans, lossy-cast
//!   bans in address arithmetic, and doc/`Debug` coverage of the public
//!   API, with a JSON report and a content-anchored allowlist.
//! * [`runtime`] — the [`InvariantAuditor`] plus the
//!   [`audit!`]/[`audit_invariant!`] macro family, which the migration
//!   pipeline invokes at (sampled) epoch boundaries when built with the
//!   `debug-invariants` feature: remap-table bijection per pod,
//!   frame-ownership conservation across managers, monotonic simulated
//!   time in the DRAM channels, and migration-count conservation between
//!   tracker and migration engine.

pub mod lint;
pub mod runtime;

pub use lint::{run_lint, Allowlist, LintReport, Violation};
pub use runtime::InvariantAuditor;
