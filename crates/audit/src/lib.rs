//! Workspace guardrails for the MemPod reproduction suite.
//!
//! Two halves, sharing one crate so the rules and the machinery that
//! enforces them version together:
//!
//! * The static-analysis engine behind
//!   `cargo run -p mempod-audit -- lint`, built on a real source model:
//!   - [`lexer`] — a dependency-free Rust tokenizer (raw strings, nested
//!     block comments, doc comments, lifetimes vs chars).
//!   - [`parser`] — an item-level parser: functions with bodies and
//!     return types, inline/declared modules, impl blocks, `#[cfg(test)]`
//!     inheritance, doc/`#[must_use]` attribution.
//!   - [`callgraph`] — the workspace module graph plus an approximate
//!     name-based call graph; rule coverage (hot-path, print, cast sets)
//!     is *derived* from reachability off the simulation entry points
//!     instead of hand-maintained file lists.
//!   - [`rules`] — the rule families: hot-path panic/print bans,
//!     lossy-cast ban, pub-API doc/`Debug` coverage, unit-mismatch,
//!     unchecked address arithmetic, ignored `Result`s, the determinism
//!     family (`nondet-iter`/`nondet-float-reduce`/`nondet-clock`/
//!     `interior-mut`), and the `coverage-gap` meta-lint that flags
//!     pipeline modules escaping the derived coverage.
//!   - [`effects`] — field-level effect analysis on the same source
//!     model: per-function read/write sets over struct fields,
//!     propagated through the call graph, feeding the shard-safety
//!     classifier behind `cargo run -p mempod-audit -- effects`
//!     (`shard_safety.json`).
//!   - [`sync_pass`] — the concurrency audit behind
//!     `cargo run -p mempod-audit -- sync` (`lock_order.json`):
//!     lock-acquisition-order cycle detection, acquire/release pairing
//!     of atomics, and the `sync-primitive-outside-facade` boundary
//!     that keeps the pipeline on the `mempod-sync` facade.
//!   - [`baseline`] — `--deny-new` support: a committed baseline of
//!     frozen debt, with stale-entry reporting so it only shrinks.
//!   - [`lint`] — the orchestrator tying those together, with a JSON
//!     report and a content-anchored allowlist.
//! * [`runtime`] — the [`InvariantAuditor`] plus the
//!   [`audit!`]/[`audit_invariant!`] macro family, which the migration
//!   pipeline invokes at (sampled) epoch boundaries when built with the
//!   `debug-invariants` feature: remap-table bijection per pod,
//!   frame-ownership conservation across managers, monotonic simulated
//!   time in the DRAM channels, and migration-count conservation between
//!   tracker and migration engine.

pub mod baseline;
pub mod callgraph;
pub mod effects;
pub mod lexer;
pub mod lint;
pub mod parser;
pub mod rules;
pub mod runtime;
pub mod sync_pass;

pub use baseline::{Baseline, BaselineEntry};
pub use callgraph::{derive_coverage, Coverage, Model};
pub use effects::{analyze, EffectReport, ShardClass};
pub use lint::{run_lint, Allowlist, LintReport, Violation};
pub use runtime::InvariantAuditor;
pub use sync_pass::{analyze_sync, SyncReport};
