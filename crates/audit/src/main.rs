//! CLI for the workspace auditor: `cargo run -p mempod-audit -- lint`.
//!
//! Prints a human summary to stderr and the JSON report to stdout, and
//! exits non-zero when any non-allowlisted violation is found.

use std::path::PathBuf;
use std::process::ExitCode;

use mempod_audit::lint::{run_lint, Allowlist};

const USAGE: &str = "usage: mempod-audit lint [--root DIR] [--allowlist FILE]

Runs the workspace lint rules (hot-path panic ban, lossy-cast ban,
pub-API doc/Debug coverage). Prints a JSON report to stdout; exits 1 on
any violation not covered by the allowlist (default:
<root>/audit.allowlist.json, if present).";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    if command != "lint" {
        eprintln!("unknown command `{command}`\n\n{USAGE}");
        return ExitCode::from(2);
    }

    let mut root = PathBuf::from(".");
    let mut allowlist_path: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root needs a directory\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--allowlist" => match args.next() {
                Some(f) => allowlist_path = Some(PathBuf::from(f)),
                None => {
                    eprintln!("--allowlist needs a file\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown flag `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let allowlist_path = allowlist_path.unwrap_or_else(|| root.join("audit.allowlist.json"));
    let allowlist = match std::fs::read_to_string(&allowlist_path) {
        Ok(text) => match Allowlist::from_json(&text) {
            Ok(al) => al,
            Err(e) => {
                eprintln!("error: {}: {e}", allowlist_path.display());
                return ExitCode::from(2);
            }
        },
        Err(_) => Allowlist::default(),
    };

    let report = run_lint(&root, &allowlist);
    for v in report.blocking() {
        eprintln!("error: {v}");
    }
    eprintln!(
        "mempod-audit lint: {} file(s) scanned, {} blocking violation(s), \
         {} allowlisted",
        report.files_scanned,
        report.blocking().count(),
        report.violations.iter().filter(|v| v.allowed).count()
    );
    match serde_json::to_string_pretty(report.to_json()) {
        Ok(json) => println!("{json}"),
        Err(e) => {
            eprintln!("error: could not render report: {e}");
            return ExitCode::from(2);
        }
    }
    if report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
