//! CLI for the workspace auditor: `cargo run -p mempod-audit -- lint`,
//! `cargo run -p mempod-audit -- effects`, and
//! `cargo run -p mempod-audit -- sync`.
//!
//! `lint` prints a human summary to stderr and the JSON report to stdout
//! (or to `--report FILE`). Exit codes:
//!
//! * `0` — clean (blocking findings: none; allowlist: no stale entries).
//! * `1` — blocking violations (new findings under `--deny-new`).
//! * `2` — usage or I/O error.
//! * `3` — no blocking violations, but the allowlist or baseline carries
//!   stale entries that must be deleted.
//!
//! `effects` runs the field-level effect analysis and writes the
//! shard-safety report (`shard_safety.json`); with `--check FILE` it also
//! fails (exit `1`) when any field's class regressed towards
//! `cross-shard` relative to the committed snapshot.
//!
//! `sync` runs the concurrency audit and writes the lock-order report
//! (`lock_order.json`), failing (exit `1`) on lock-acquisition-order
//! cycles or unpaired acquire/release atomics.

use std::path::PathBuf;
use std::process::ExitCode;

use mempod_audit::baseline::Baseline;
use mempod_audit::effects;
use mempod_audit::lint::{run_lint, Allowlist};
use mempod_audit::Model;

const USAGE: &str = "usage: mempod-audit lint [--root DIR] [--allowlist FILE]
                         [--baseline FILE] [--deny-new] [--write-baseline]
                         [--report FILE]
       mempod-audit effects [--root DIR] [--out FILE] [--check FILE]
       mempod-audit sync [--root DIR] [--out FILE]

lint: runs the workspace lint rules over the source model: hot-path panic
and print bans, lossy-cast ban, pub-API doc/Debug coverage, unit-mismatch,
unchecked address arithmetic, ignored Results, the determinism family
(nondet-iter, nondet-float-reduce, nondet-clock, interior-mut), and the
coverage-gap meta-lint. Rule coverage is derived from call-graph
reachability off the simulation entry points.

  --root DIR        workspace root (default: .)
  --allowlist FILE  intentional exemptions (default:
                    <root>/audit.allowlist.json, if present)
  --baseline FILE   frozen-debt baseline (default:
                    <root>/audit.baseline.json)
  --deny-new        load the baseline; fail only on findings not in it
  --write-baseline  record current non-allowlisted findings as the new
                    baseline and exit (hand-written notes are preserved)
  --report FILE     write the JSON report to FILE instead of stdout

effects: computes per-function field read/write sets, propagates them
through the call graph, and classifies every pipeline-crate struct field
as shard-local / epoch-barrier-only / cross-shard.

  --root DIR        workspace root (default: .)
  --out FILE        report path (default: <root>/shard_safety.json;
                    `-` writes to stdout)
  --check FILE      compare against a committed snapshot and fail on any
                    class regression towards cross-shard

sync: runs the concurrency audit: builds the lock-acquisition-order graph
(.lock()/.lock_recovering() sites, direct and through callees) and fails
on cycles; aggregates atomic load/store/RMW orderings per field and fails
on Acquire/Release halves that pair with nothing; reports raw
std::sync/std::thread paths escaping the mempod-sync facade.

  --root DIR        workspace root (default: .)
  --out FILE        report path (default: <root>/lock_order.json;
                    `-` writes to stdout)

exit codes: 0 clean, 1 blocking violations / class regressions /
lock-order cycles, 2 usage/IO error, 3 stale allowlist/baseline entries
only.";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    if command == "effects" {
        return run_effects(args);
    }
    if command == "sync" {
        return run_sync(args);
    }
    if command != "lint" {
        eprintln!("unknown command `{command}`\n\n{USAGE}");
        return ExitCode::from(2);
    }

    let mut root = PathBuf::from(".");
    let mut allowlist_path: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut deny_new = false;
    let mut write_baseline = false;
    let mut report_path: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" | "--allowlist" | "--baseline" | "--report" => {
                let Some(value) = args.next() else {
                    eprintln!("{arg} needs an argument\n\n{USAGE}");
                    return ExitCode::from(2);
                };
                let value = PathBuf::from(value);
                match arg.as_str() {
                    "--root" => root = value,
                    "--allowlist" => allowlist_path = Some(value),
                    "--baseline" => baseline_path = Some(value),
                    _ => report_path = Some(value),
                }
            }
            "--deny-new" => deny_new = true,
            "--write-baseline" => write_baseline = true,
            other => {
                eprintln!("unknown flag `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let allowlist_path = allowlist_path.unwrap_or_else(|| root.join("audit.allowlist.json"));
    let allowlist = match std::fs::read_to_string(&allowlist_path) {
        Ok(text) => match Allowlist::from_json(&text) {
            Ok(al) => al,
            Err(e) => {
                eprintln!("error: {}: {e}", allowlist_path.display());
                return ExitCode::from(2);
            }
        },
        Err(_) => Allowlist::default(),
    };
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("audit.baseline.json"));

    let mut report = run_lint(&root, &allowlist);

    if write_baseline {
        let mut baseline =
            Baseline::from_violations(report.violations.iter().filter(|v| !v.allowed));
        if let Ok(text) = std::fs::read_to_string(&baseline_path) {
            if let Ok(old) = Baseline::from_json(&text) {
                baseline.adopt_notes(&old);
            }
        }
        let json = match serde_json::to_string_pretty(baseline.to_json()) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("error: could not render baseline: {e}");
                return ExitCode::from(2);
            }
        };
        if let Err(e) = std::fs::write(&baseline_path, json + "\n") {
            eprintln!("error: {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "mempod-audit lint: wrote {} baseline entr{} to {}",
            baseline.len(),
            if baseline.len() == 1 { "y" } else { "ies" },
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    if deny_new {
        let baseline = match std::fs::read_to_string(&baseline_path) {
            Ok(text) => match Baseline::from_json(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("error: {}: {e}", baseline_path.display());
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!(
                    "error: --deny-new needs a baseline at {}: {e}\n\
                     (generate one with --write-baseline)",
                    baseline_path.display()
                );
                return ExitCode::from(2);
            }
        };
        report.apply_baseline(&baseline);
    }

    for v in report.blocking() {
        eprintln!("error: {v}");
    }
    for stale in &report.stale_allowlist {
        eprintln!("error: stale allowlist entry (matches nothing): {stale}");
    }
    for stale in &report.stale_baseline {
        eprintln!("warning: stale baseline entry (debt fixed; delete it): {stale}");
    }
    eprintln!(
        "mempod-audit lint: {} file(s) scanned, {} blocking violation(s), \
         {} allowlisted, {} baselined, {} stale allowlist entr{}",
        report.files_scanned,
        report.blocking().count(),
        report.violations.iter().filter(|v| v.allowed).count(),
        report.violations.iter().filter(|v| v.baselined).count(),
        report.stale_allowlist.len(),
        if report.stale_allowlist.len() == 1 {
            "y"
        } else {
            "ies"
        },
    );
    let json = match serde_json::to_string_pretty(report.to_json()) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("error: could not render report: {e}");
            return ExitCode::from(2);
        }
    };
    match &report_path {
        Some(p) => {
            if let Err(e) = std::fs::write(p, json + "\n") {
                eprintln!("error: {}: {e}", p.display());
                return ExitCode::from(2);
            }
            eprintln!("mempod-audit lint: report written to {}", p.display());
        }
        None => println!("{json}"),
    }

    if report.blocking().count() > 0 {
        ExitCode::FAILURE
    } else if !report.stale_allowlist.is_empty() {
        ExitCode::from(3)
    } else {
        ExitCode::SUCCESS
    }
}

/// `mempod-audit sync`: run the concurrency audit, write
/// `lock_order.json`, and fail on lock-order cycles or unpaired
/// acquire/release atomics.
fn run_sync(mut args: impl Iterator<Item = String>) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut out_path: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" | "--out" => {
                let Some(value) = args.next() else {
                    eprintln!("{arg} needs an argument\n\n{USAGE}");
                    return ExitCode::from(2);
                };
                let value = PathBuf::from(value);
                match arg.as_str() {
                    "--root" => root = value,
                    _ => out_path = Some(value),
                }
            }
            other => {
                eprintln!("unknown flag `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let out_path = out_path.unwrap_or_else(|| root.join("lock_order.json"));

    let model = match Model::build(&root) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if model.files.is_empty() {
        eprintln!("error: no Rust sources under {}", root.display());
        return ExitCode::from(2);
    }
    let report = mempod_audit::analyze_sync(&model);
    let rendered = match serde_json::to_string_pretty(report.to_json()) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("error: could not render report: {e}");
            return ExitCode::from(2);
        }
    };
    if out_path.as_os_str() == "-" {
        println!("{rendered}");
    } else if let Err(e) = std::fs::write(&out_path, rendered + "\n") {
        eprintln!("error: {}: {e}", out_path.display());
        return ExitCode::from(2);
    }

    eprintln!(
        "mempod-audit sync: {} lock acquisition site(s), {} order edge(s), \
         {} cycle(s); {} atomic site(s), {} ordering mismatch(es); \
         {} raw std::sync/std::thread use(s) in facade scope",
        report.lock_sites.len(),
        report.edges.len(),
        report.cycles.len(),
        report.atomic_sites.len(),
        report.mismatches.len(),
        report.raw_sync.len(),
    );
    if out_path.as_os_str() != "-" {
        eprintln!(
            "mempod-audit sync: report written to {}",
            out_path.display()
        );
    }
    for c in &report.cycles {
        eprintln!("error: lock-order cycle: {{{}}}", c.join(", "));
    }
    for m in &report.mismatches {
        eprintln!(
            "error: atomic-ordering mismatch: {}:{}: {}",
            m.file, m.line, m.detail
        );
    }
    if report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `mempod-audit effects`: run the field-level effect analysis, write
/// `shard_safety.json`, and (with `--check`) fail on class regressions.
fn run_effects(mut args: impl Iterator<Item = String>) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut out_path: Option<PathBuf> = None;
    let mut check_path: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" | "--out" | "--check" => {
                let Some(value) = args.next() else {
                    eprintln!("{arg} needs an argument\n\n{USAGE}");
                    return ExitCode::from(2);
                };
                let value = PathBuf::from(value);
                match arg.as_str() {
                    "--root" => root = value,
                    "--out" => out_path = Some(value),
                    _ => check_path = Some(value),
                }
            }
            other => {
                eprintln!("unknown flag `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let out_path = out_path.unwrap_or_else(|| root.join("shard_safety.json"));

    let model = match Model::build(&root) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if model.files.is_empty() {
        eprintln!("error: no Rust sources under {}", root.display());
        return ExitCode::from(2);
    }
    let report = effects::analyze(&model);
    let new_json = report.to_json();

    // Load the committed snapshot *before* overwriting it, so
    // `--check shard_safety.json --out shard_safety.json` (the CI shape)
    // compares against the previous run.
    let old_json = match &check_path {
        Some(p) => match std::fs::read_to_string(p) {
            Ok(text) => match serde_json::from_str::<serde_json::Value>(&text) {
                Ok(v) => Some(v),
                Err(e) => {
                    eprintln!("error: {}: snapshot is not valid JSON: {e}", p.display());
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!(
                    "error: --check needs a snapshot at {}: {e}\n\
                     (generate one with `mempod-audit effects`)",
                    p.display()
                );
                return ExitCode::from(2);
            }
        },
        None => None,
    };

    let rendered = match serde_json::to_string_pretty(&new_json) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("error: could not render report: {e}");
            return ExitCode::from(2);
        }
    };
    if out_path.as_os_str() == "-" {
        println!("{rendered}");
    } else if let Err(e) = std::fs::write(&out_path, rendered + "\n") {
        eprintln!("error: {}: {e}", out_path.display());
        return ExitCode::from(2);
    }

    let (mut local, mut barrier, mut cross) = (0usize, 0usize, 0usize);
    for v in &report.verdicts {
        match v.class {
            mempod_audit::ShardClass::ShardLocal => local += 1,
            mempod_audit::ShardClass::EpochBarrierOnly => barrier += 1,
            mempod_audit::ShardClass::CrossShard => cross += 1,
        }
    }
    eprintln!(
        "mempod-audit effects: {} field(s) across {} struct(s): \
         {local} shard-local, {barrier} epoch-barrier-only, {cross} cross-shard",
        report.verdicts.len(),
        report.structs.len(),
    );
    if out_path.as_os_str() != "-" {
        eprintln!(
            "mempod-audit effects: report written to {}",
            out_path.display()
        );
    }

    if let Some(old) = old_json {
        let regressions = effects::regressions(&old, &new_json);
        if !regressions.is_empty() {
            for r in &regressions {
                eprintln!("error: shard-safety regression: {r}");
            }
            eprintln!(
                "mempod-audit effects: {} field(s) regressed towards cross-shard; \
                 fix the write or re-commit {} deliberately",
                regressions.len(),
                out_path.display()
            );
            return ExitCode::FAILURE;
        }
        eprintln!("mempod-audit effects: no class regressions vs snapshot");
    }
    ExitCode::SUCCESS
}
