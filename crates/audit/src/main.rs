//! CLI for the workspace auditor: `cargo run -p mempod-audit -- lint`.
//!
//! Prints a human summary to stderr and the JSON report to stdout (or to
//! `--report FILE`). Exit codes:
//!
//! * `0` — clean (blocking findings: none; allowlist: no stale entries).
//! * `1` — blocking violations (new findings under `--deny-new`).
//! * `2` — usage or I/O error.
//! * `3` — no blocking violations, but the allowlist or baseline carries
//!   stale entries that must be deleted.

use std::path::PathBuf;
use std::process::ExitCode;

use mempod_audit::baseline::Baseline;
use mempod_audit::lint::{run_lint, Allowlist};

const USAGE: &str = "usage: mempod-audit lint [--root DIR] [--allowlist FILE]
                         [--baseline FILE] [--deny-new] [--write-baseline]
                         [--report FILE]

Runs the workspace lint rules over the source model: hot-path panic and
print bans, lossy-cast ban, pub-API doc/Debug coverage, unit-mismatch,
unchecked address arithmetic, ignored Results, and the coverage-gap
meta-lint. Rule coverage is derived from call-graph reachability off the
simulation entry points.

  --root DIR        workspace root (default: .)
  --allowlist FILE  intentional exemptions (default:
                    <root>/audit.allowlist.json, if present)
  --baseline FILE   frozen-debt baseline (default:
                    <root>/audit.baseline.json)
  --deny-new        load the baseline; fail only on findings not in it
  --write-baseline  record current non-allowlisted findings as the new
                    baseline and exit
  --report FILE     write the JSON report to FILE instead of stdout

exit codes: 0 clean, 1 blocking violations, 2 usage/IO error,
3 stale allowlist/baseline entries only.";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    if command != "lint" {
        eprintln!("unknown command `{command}`\n\n{USAGE}");
        return ExitCode::from(2);
    }

    let mut root = PathBuf::from(".");
    let mut allowlist_path: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut deny_new = false;
    let mut write_baseline = false;
    let mut report_path: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" | "--allowlist" | "--baseline" | "--report" => {
                let Some(value) = args.next() else {
                    eprintln!("{arg} needs an argument\n\n{USAGE}");
                    return ExitCode::from(2);
                };
                let value = PathBuf::from(value);
                match arg.as_str() {
                    "--root" => root = value,
                    "--allowlist" => allowlist_path = Some(value),
                    "--baseline" => baseline_path = Some(value),
                    _ => report_path = Some(value),
                }
            }
            "--deny-new" => deny_new = true,
            "--write-baseline" => write_baseline = true,
            other => {
                eprintln!("unknown flag `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let allowlist_path = allowlist_path.unwrap_or_else(|| root.join("audit.allowlist.json"));
    let allowlist = match std::fs::read_to_string(&allowlist_path) {
        Ok(text) => match Allowlist::from_json(&text) {
            Ok(al) => al,
            Err(e) => {
                eprintln!("error: {}: {e}", allowlist_path.display());
                return ExitCode::from(2);
            }
        },
        Err(_) => Allowlist::default(),
    };
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("audit.baseline.json"));

    let mut report = run_lint(&root, &allowlist);

    if write_baseline {
        let baseline = Baseline::from_violations(report.violations.iter().filter(|v| !v.allowed));
        let json = match serde_json::to_string_pretty(baseline.to_json()) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("error: could not render baseline: {e}");
                return ExitCode::from(2);
            }
        };
        if let Err(e) = std::fs::write(&baseline_path, json + "\n") {
            eprintln!("error: {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "mempod-audit lint: wrote {} baseline entr{} to {}",
            baseline.len(),
            if baseline.len() == 1 { "y" } else { "ies" },
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    if deny_new {
        let baseline = match std::fs::read_to_string(&baseline_path) {
            Ok(text) => match Baseline::from_json(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("error: {}: {e}", baseline_path.display());
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!(
                    "error: --deny-new needs a baseline at {}: {e}\n\
                     (generate one with --write-baseline)",
                    baseline_path.display()
                );
                return ExitCode::from(2);
            }
        };
        report.apply_baseline(&baseline);
    }

    for v in report.blocking() {
        eprintln!("error: {v}");
    }
    for stale in &report.stale_allowlist {
        eprintln!("error: stale allowlist entry (matches nothing): {stale}");
    }
    for stale in &report.stale_baseline {
        eprintln!("warning: stale baseline entry (debt fixed; delete it): {stale}");
    }
    eprintln!(
        "mempod-audit lint: {} file(s) scanned, {} blocking violation(s), \
         {} allowlisted, {} baselined, {} stale allowlist entr{}",
        report.files_scanned,
        report.blocking().count(),
        report.violations.iter().filter(|v| v.allowed).count(),
        report.violations.iter().filter(|v| v.baselined).count(),
        report.stale_allowlist.len(),
        if report.stale_allowlist.len() == 1 {
            "y"
        } else {
            "ies"
        },
    );
    let json = match serde_json::to_string_pretty(report.to_json()) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("error: could not render report: {e}");
            return ExitCode::from(2);
        }
    };
    match &report_path {
        Some(p) => {
            if let Err(e) = std::fs::write(p, json + "\n") {
                eprintln!("error: {}: {e}", p.display());
                return ExitCode::from(2);
            }
            eprintln!("mempod-audit lint: report written to {}", p.display());
        }
        None => println!("{json}"),
    }

    if report.blocking().count() > 0 {
        ExitCode::FAILURE
    } else if !report.stale_allowlist.is_empty() {
        ExitCode::from(3)
    } else {
        ExitCode::SUCCESS
    }
}
