//! Workspace module graph + approximate call graph, and the coverage sets
//! derived from them.
//!
//! PR 1's lint engine scanned hand-maintained file lists, which rotted the
//! moment the migration pipeline grew (`crates/core/src/migration.rs`,
//! `remap.rs`, and `segment.rs` were all invisible to it). This module
//! *derives* the rule coverage instead:
//!
//! 1. **Module graph** — every workspace crate root (`crates/*/src/lib.rs`)
//!    is parsed and its `mod foo;` declarations resolved to `foo.rs` /
//!    `foo/mod.rs`, recursively, giving the set of library modules per
//!    crate. `crates/compat/*` (vendored shims) is excluded.
//! 2. **Call graph** — every non-test `fn` is a node; an edge is added for
//!    each `name(` / `.name(` token sequence in a body that matches a
//!    workspace `fn` name (name-based, so it overapproximates — exactly
//!    what a coverage derivation wants: no reachable code is missed).
//! 3. **Reachability** — BFS from the simulation entry points:
//!    `Simulator::run`, the public `Runner` functions in
//!    `crates/sim/src/runner.rs`, and the `Channel` enqueue/drain (tick /
//!    schedule) methods.
//!
//! The derived hot-path / print / cast file sets are then *computed* as
//! reachable files filtered by crate role, and the `coverage-gap`
//! meta-lint flags any pipeline-crate module that escapes them.

use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use std::path::{Path, PathBuf};

use crate::parser::{Item, ItemKind, ParsedFile};

/// Crates forming the migration pipeline proper: panic/cast/result rules
/// and the coverage meta-lint apply to their reachable modules.
pub const PIPELINE_CRATES: &[&str] =
    &["mempod-core", "mempod-dram", "mempod-sim", "mempod-tracker"];

/// Crates whose library modules must never print: the pipeline crates plus
/// the telemetry crate itself (diagnostics go through its event stream, so
/// it must not fall back to stdout), covered in full by policy.
pub const PRINT_CRATES: &[&str] = &[
    "mempod-core",
    "mempod-dram",
    "mempod-sim",
    "mempod-tracker",
    "mempod-telemetry",
];

/// Address newtypes from `mempod_types::addr`; a reachable file that
/// mentions one does address arithmetic and joins the lossy-cast set.
pub const ADDR_TYPES: &[&str] = &["Addr", "PageId", "LineId", "FrameId"];

/// The designated conversion/address helper files, exempt from the
/// lossy-cast and unchecked-address-arithmetic rules because they *are*
/// the checked implementations the rules funnel callers toward.
pub const ADDR_HELPER_FILES: &[&str] = &[
    "crates/types/src/convert.rs",
    "crates/types/src/addr.rs",
    "crates/types/src/geometry.rs",
    "crates/dram/src/mapper.rs",
];

/// One file in the workspace model.
#[derive(Debug)]
pub struct ModelFile {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// Owning crate's package name (e.g. `mempod-core`).
    pub crate_name: String,
    /// The parsed source.
    pub parsed: ParsedFile,
}

/// A function node: (file index, item index) into the model.
pub type FnId = (usize, usize);

/// The workspace source model.
#[derive(Debug)]
pub struct Model {
    /// Every library module of every (non-compat) workspace crate.
    pub files: Vec<ModelFile>,
    /// Function nodes reachable from the simulation entry points.
    pub reachable_fns: HashSet<FnId>,
    /// File indices containing at least one reachable function.
    pub reachable_files: HashSet<usize>,
    /// Names of the root functions the BFS started from (for reporting).
    pub roots: Vec<String>,
}

impl Model {
    /// Builds the model for the workspace at `root`. Returns `Err` only
    /// when the root has no `crates/` directory at all.
    pub fn build(root: &Path) -> Result<Model, String> {
        let crates_dir = root.join("crates");
        if !crates_dir.is_dir() {
            return Err(format!("{}: no crates/ directory", root.display()));
        }
        let mut files: Vec<ModelFile> = Vec::new();

        let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
            .map_err(|e| format!("reading {}: {e}", crates_dir.display()))?
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.is_dir() && p.file_name().is_some_and(|n| n != "compat"))
            .collect();
        crate_dirs.sort();

        for dir in crate_dirs {
            let Some(crate_name) = package_name(&dir.join("Cargo.toml")) else {
                continue;
            };
            let lib = dir.join("src").join("lib.rs");
            if lib.is_file() {
                load_module_tree(root, &lib, &crate_name, &mut files);
            }
            let main = dir.join("src").join("main.rs");
            if main.is_file() {
                load_module_tree(root, &main, &crate_name, &mut files);
            }
        }

        let mut model = Model {
            files,
            reachable_fns: HashSet::new(),
            reachable_files: HashSet::new(),
            roots: Vec::new(),
        };
        model.compute_reachability();
        Ok(model)
    }

    /// Iterates `(file index, item index, item)` over non-test functions.
    pub fn fns(&self) -> impl Iterator<Item = (usize, usize, &Item)> {
        self.files.iter().enumerate().flat_map(|(fi, f)| {
            f.parsed
                .items
                .iter()
                .enumerate()
                .filter(|(_, it)| it.kind == ItemKind::Fn && !it.cfg_test)
                .map(move |(ii, it)| (fi, ii, it))
        })
    }

    /// Whether a function is one of the simulation entry points.
    pub(crate) fn is_root(&self, file: &ModelFile, item: &Item) -> bool {
        if item.qual == "Simulator::run" {
            return true;
        }
        // Fault-injection entry points: recovery code runs exactly when a
        // fault fires, so everything a public `mempod-faults` function
        // reaches is simulation-visible even though no happy-path root
        // calls it.
        if file.crate_name == "mempod-faults" {
            return item.vis_pub;
        }
        if file.rel.ends_with("crates/sim/src/runner.rs") || file.rel == "crates/sim/src/runner.rs"
        {
            // `run_jobs_core` is the private engine hosting the watchdog
            // monitor thread; root it explicitly so the cancellation path
            // stays covered even if the public wrappers thin out.
            return item.vis_pub || item.name == "run_jobs_core";
        }
        if let Some(ty) = item.qual.strip_suffix(&format!("::{}", item.name)) {
            if ty == "Channel" {
                return matches!(
                    item.name.as_str(),
                    "enqueue"
                        | "enqueue_with_priority"
                        | "drain_until"
                        | "drain_all"
                        | "tick"
                        | "schedule"
                );
            }
        }
        false
    }

    fn compute_reachability(&mut self) {
        // Name index over all non-test fns (owned names: the BFS below
        // needs `self` free for `callees`).
        let mut by_name: HashMap<String, Vec<FnId>> = HashMap::new();
        let mut roots: Vec<FnId> = Vec::new();
        for (fi, ii, it) in self.fns() {
            by_name.entry(it.name.clone()).or_default().push((fi, ii));
            if self.is_root(&self.files[fi], it) {
                roots.push((fi, ii));
            }
        }
        self.roots = roots
            .iter()
            .map(|&(fi, ii)| self.files[fi].parsed.items[ii].qual.clone())
            .collect();
        self.roots.sort();
        self.roots.dedup();

        let mut reachable: HashSet<FnId> = HashSet::new();
        let mut queue: VecDeque<FnId> = VecDeque::new();
        for r in roots {
            if reachable.insert(r) {
                queue.push_back(r);
            }
        }
        while let Some((fi, ii)) = queue.pop_front() {
            for callee in self.callees(fi, ii) {
                for &target in by_name.get(&callee).into_iter().flatten() {
                    if reachable.insert(target) {
                        queue.push_back(target);
                    }
                }
            }
        }
        self.reachable_files = reachable.iter().map(|&(fi, _)| fi).collect();
        self.reachable_fns = reachable;
    }

    /// Callee names referenced in a function body: every `name(` and
    /// `.name(` sequence (macro invocations `name!(…)` excluded).
    pub(crate) fn callees(&self, fi: usize, ii: usize) -> Vec<String> {
        let file = &self.files[fi];
        let item = &file.parsed.items[ii];
        let Some((from, to)) = item.body_tokens else {
            return Vec::new();
        };
        let src = &file.parsed.src;
        let toks = &file.parsed.tokens;
        let mut out = Vec::new();
        for i in from..to.min(toks.len()) {
            let t = &toks[i];
            if t.kind != crate::lexer::TokenKind::Ident {
                continue;
            }
            let Some(next) = toks.get(i + 1) else {
                continue;
            };
            if next.is_punct(src, "(") {
                out.push(t.text(src).to_string());
            }
        }
        out
    }

    /// File index for a workspace-relative path, if modeled.
    pub fn file_index(&self, rel: &str) -> Option<usize> {
        self.files.iter().position(|f| f.rel == rel)
    }
}

/// Reads `name = "…"` out of a `[package]` section (one-pass line scan;
/// the workspace has no TOML parser and needs none for this).
fn package_name(manifest: &Path) -> Option<String> {
    let text = std::fs::read_to_string(manifest).ok()?;
    let mut in_package = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package && line.starts_with("name") {
            return line.split('"').nth(1).map(str::to_string);
        }
    }
    None
}

/// Parses `start_file` and, BFS over its `mod x;` declarations, the whole
/// file-backed module tree beneath it. Test-gated `#[cfg(test)] mod` decls
/// are not followed.
fn load_module_tree(root: &Path, start_file: &Path, crate_name: &str, out: &mut Vec<ModelFile>) {
    let mut queue: VecDeque<PathBuf> = VecDeque::new();
    queue.push_back(start_file.to_path_buf());
    let mut seen: HashSet<PathBuf> = HashSet::new();
    while let Some(path) = queue.pop_front() {
        if !seen.insert(path.clone()) {
            continue;
        }
        let Ok(src) = std::fs::read_to_string(&path) else {
            continue;
        };
        let parsed = ParsedFile::parse(&src);
        let dir = mod_child_dir(&path);
        for decl in parsed.mod_decls() {
            if decl.cfg_test {
                continue;
            }
            let as_file = dir.join(format!("{}.rs", decl.name));
            let as_dir = dir.join(&decl.name).join("mod.rs");
            if as_file.is_file() {
                queue.push_back(as_file);
            } else if as_dir.is_file() {
                queue.push_back(as_dir);
            }
        }
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        out.push(ModelFile {
            rel,
            crate_name: crate_name.to_string(),
            parsed,
        });
    }
    out.sort_by(|a, b| a.rel.cmp(&b.rel));
}

/// Directory in which a file's `mod x;` children live: `src/` for
/// `lib.rs`/`main.rs`/`mod.rs`, else `src/<stem>/`.
fn mod_child_dir(path: &Path) -> PathBuf {
    let parent = path.parent().unwrap_or(Path::new("")).to_path_buf();
    match path.file_name().and_then(|n| n.to_str()) {
        Some("lib.rs") | Some("main.rs") | Some("mod.rs") => parent,
        _ => parent.join(path.file_stem().and_then(|s| s.to_str()).unwrap_or("")),
    }
}

/// The rule coverage derived from the model.
#[derive(Debug, Clone, Default)]
pub struct Coverage {
    /// Files where panicking constructs are banned.
    pub hot: BTreeSet<String>,
    /// Files where ad-hoc printing is banned.
    pub print: BTreeSet<String>,
    /// Files where bare integer `as` casts are banned.
    pub cast: BTreeSet<String>,
    /// Pipeline-crate module files (scope of the semantic rules and the
    /// coverage meta-lint).
    pub pipeline: BTreeSet<String>,
}

/// Derives the hot-path / print / cast coverage sets from reachability.
pub fn derive_coverage(model: &Model) -> Coverage {
    let mut cov = Coverage::default();
    for (fi, file) in model.files.iter().enumerate() {
        let in_pipeline = PIPELINE_CRATES.contains(&file.crate_name.as_str());
        let reachable = model.reachable_files.contains(&fi);
        if in_pipeline {
            cov.pipeline.insert(file.rel.clone());
        }
        if reachable && in_pipeline {
            cov.hot.insert(file.rel.clone());
        }
        if PRINT_CRATES.contains(&file.crate_name.as_str())
            && (reachable || file.crate_name == "mempod-telemetry")
        {
            cov.print.insert(file.rel.clone());
        }
        let helper = ADDR_HELPER_FILES.iter().any(|h| file.rel.ends_with(h));
        if reachable && !helper && (in_pipeline || file.crate_name == "mempod-types") {
            let mentions_addr = file.parsed.tokens.iter().any(|t| {
                t.kind == crate::lexer::TokenKind::Ident
                    && ADDR_TYPES.contains(&t.text(&file.parsed.src))
            });
            if mentions_addr {
                cov.cast.insert(file.rel.clone());
            }
        }
    }
    // The designated address decomposition sites themselves stay under the
    // lossy-cast ban (they must use mempod_types::convert), except
    // convert.rs, which *implements* the checked casts.
    for h in [
        "crates/types/src/addr.rs",
        "crates/types/src/geometry.rs",
        "crates/dram/src/mapper.rs",
    ] {
        if model.file_index(h).is_some() {
            cov.cast.insert(h.to_string());
        }
    }
    cov
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a miniature workspace on disk and returns its root.
    fn mini_workspace(tag: &str) -> PathBuf {
        let root =
            std::env::temp_dir().join(format!("mempod-callgraph-{tag}-{}", std::process::id()));
        if root.exists() {
            std::fs::remove_dir_all(&root).expect("stale fixture removed");
        }
        let write = |rel: &str, content: &str| {
            let p = root.join(rel);
            std::fs::create_dir_all(p.parent().expect("parent")).expect("mkdir");
            std::fs::write(p, content).expect("write");
        };
        write(
            "crates/sim/Cargo.toml",
            "[package]\nname = \"mempod-sim\"\n",
        );
        write(
            "crates/sim/src/lib.rs",
            "pub mod runner;\npub mod simulator;\n",
        );
        write(
            "crates/sim/src/runner.rs",
            "pub fn run_jobs() { step_all(); }\nfn internal() {}\n",
        );
        write(
            "crates/sim/src/simulator.rs",
            "pub struct Simulator;\nimpl Simulator {\n  pub fn run(self) { step_all(); }\n}\n\
             pub fn step_all() { mempod_core::manager::observe(); }\n",
        );
        write(
            "crates/core/Cargo.toml",
            "[package]\nname = \"mempod-core\"\n",
        );
        write(
            "crates/core/src/lib.rs",
            "pub mod manager;\npub mod migration;\npub mod orphan;\n",
        );
        write(
            "crates/core/src/manager.rs",
            "pub fn observe() { crate::migration::plan(); }\n",
        );
        write(
            "crates/core/src/migration.rs",
            "pub struct Addr(pub u64);\npub fn plan() -> u64 { 7 }\n",
        );
        write(
            "crates/core/src/orphan.rs",
            "pub fn never_called() -> u8 { 3 }\n",
        );
        root
    }

    #[test]
    fn module_graph_follows_mod_decls() {
        let root = mini_workspace("modgraph");
        let model = Model::build(&root).expect("model");
        let rels: Vec<&str> = model.files.iter().map(|f| f.rel.as_str()).collect();
        for expect in [
            "crates/sim/src/lib.rs",
            "crates/sim/src/runner.rs",
            "crates/sim/src/simulator.rs",
            "crates/core/src/manager.rs",
            "crates/core/src/migration.rs",
            "crates/core/src/orphan.rs",
        ] {
            assert!(rels.contains(&expect), "{expect} missing from {rels:?}");
        }
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn reachability_spans_crates_and_skips_orphans() {
        let root = mini_workspace("reach");
        let model = Model::build(&root).expect("model");
        let cov = derive_coverage(&model);
        assert!(cov.hot.contains("crates/core/src/migration.rs"), "{cov:?}");
        assert!(cov.hot.contains("crates/core/src/manager.rs"));
        assert!(cov.hot.contains("crates/sim/src/runner.rs"));
        assert!(!cov.hot.contains("crates/core/src/orphan.rs"));
        // migration.rs mentions Addr, so it joins the cast set too.
        assert!(cov.cast.contains("crates/core/src/migration.rs"));
        assert!(!cov.cast.contains("crates/core/src/manager.rs"));
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn roots_include_simulator_run_and_runner_entry_points() {
        let root = mini_workspace("roots");
        let model = Model::build(&root).expect("model");
        assert!(
            model.roots.contains(&"Simulator::run".to_string()),
            "{:?}",
            model.roots
        );
        assert!(model.roots.contains(&"run_jobs".to_string()));
        // Non-pub runner helpers are not roots (but `internal` is still a
        // node; it is simply unreachable).
        assert!(!model.roots.contains(&"internal".to_string()));
        std::fs::remove_dir_all(&root).ok();
    }
}
