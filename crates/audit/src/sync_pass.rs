//! Concurrency audit: lock-acquisition ordering, atomic-ordering
//! consistency, and the sync-facade boundary.
//!
//! Three checks over the workspace source model, feeding both the lint
//! engine (as rules) and `cargo run -p mempod-audit -- sync` (as the
//! committed `lock_order.json` report):
//!
//! * **`lock-order-cycle`** — a directed graph over named locks: an edge
//!   `A → B` means some function acquires `A` and then (directly, or
//!   through a callee chain) acquires `B`. Any cycle is a potential
//!   AB/BA deadlock. Acquisition sites are `.lock(` / `.lock_recovering(`
//!   calls; the lock's name is the receiver identifier, so two fields
//!   that share a name are conservatively merged (over-approximation:
//!   the pass may report a cycle that cannot fire, never the reverse).
//! * **`atomic-ordering-mismatch`** — per atomic (again named by the
//!   receiver identifier), the orderings of every `load`/`store`/RMW
//!   site are aggregated. An `Acquire` load whose writers are all
//!   `Relaxed` synchronizes with nothing, and a `Release` store nobody
//!   `Acquire`-loads publishes to nobody; both halves of the broken pair
//!   are flagged. All-`Relaxed` counters (the progress board) are
//!   deliberate and pass untouched.
//! * **`sync-primitive-outside-facade`** — the pipeline crates and the
//!   telemetry crate get their locks, atomics, and thread handles from
//!   the in-tree `mempod-sync` facade so the `model-check` build can
//!   interpose on every operation. Any `std::sync` / `std::thread` path
//!   in their non-test code is a hole in that interposition. The rule is
//!   baseline-gated like every other: intentional exceptions are frozen
//!   with a note, new ones fail `--deny-new`.
//!
//! Like the rest of the auditor this is token-level, not type-level:
//! receiver-name identity stands in for object identity. That is exactly
//! the right bias for a deadlock screen (merging distinct locks can only
//! add edges) and is documented in the report so a human reading
//! `lock_order.json` knows what a node means.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use serde_json::{json, Value};

use crate::callgraph::{Model, PIPELINE_CRATES};
use crate::lexer::TokenKind;
use crate::lint::Violation;
use crate::parser::ItemKind;

/// Crates required to go through the `mempod-sync` facade: the migration
/// pipeline plus telemetry (whose progress counters the sharded driver
/// updates from worker threads). `mempod-sync` itself wraps `std::sync`
/// by definition, and the bench/audit tooling never runs inside a
/// model-checked schedule, so neither is in scope.
pub const FACADE_SCOPE_CRATES: &[&str] = &[
    "mempod-core",
    "mempod-dram",
    "mempod-sim",
    "mempod-tracker",
    "mempod-telemetry",
];

/// Method names that acquire a lock through the facade or `std`.
const LOCK_METHODS: &[&str] = &["lock", "lock_recovering"];

/// Atomic access methods that take an `Ordering` argument.
const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_min",
    "fetch_max",
    "fetch_update",
];

/// One lock-acquisition site.
#[derive(Debug, Clone)]
pub struct LockSite {
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Lock name (receiver identifier).
    pub lock: String,
    /// Qualified name of the acquiring function.
    pub in_fn: String,
}

/// One `A → B` acquisition-order edge.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockEdge {
    /// Lock held (acquired earlier in the same function).
    pub from: String,
    /// Lock acquired while `from` may still be held.
    pub to: String,
    /// File of the second acquisition (or the call that reaches it).
    pub file: String,
    /// Line of the second acquisition (or the call that reaches it).
    pub line: u32,
    /// Callee the edge goes through, if indirect.
    pub via: Option<String>,
}

/// What an atomic access does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomicAccess {
    /// `load`.
    Load,
    /// `store`.
    Store,
    /// Read-modify-write (`fetch_*`, `swap`, `compare_exchange*`).
    Rmw,
}

/// One atomic access site with its ordering.
#[derive(Debug, Clone)]
pub struct AtomicSite {
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Atomic name (receiver identifier).
    pub name: String,
    /// Access kind.
    pub access: AtomicAccess,
    /// Ordering tokens found in the call (two for `compare_exchange`).
    pub orderings: Vec<String>,
}

/// One mismatched acquire/release pairing.
#[derive(Debug, Clone)]
pub struct AtomicMismatch {
    /// Atomic name.
    pub name: String,
    /// What is inconsistent.
    pub detail: String,
    /// Representative site.
    pub file: String,
    /// Representative line.
    pub line: u32,
}

/// One raw `std::sync`/`std::thread` path in facade-scoped code.
#[derive(Debug, Clone)]
pub struct RawSyncSite {
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The path head that matched (`std::sync` or `std::thread`).
    pub path: String,
}

/// The full concurrency-audit result.
#[derive(Debug, Default)]
pub struct SyncReport {
    /// Every lock-acquisition site in scoped non-test code.
    pub lock_sites: Vec<LockSite>,
    /// The acquisition-order edges.
    pub edges: Vec<LockEdge>,
    /// Lock-name cycles (each a list of participating locks).
    pub cycles: Vec<Vec<String>>,
    /// Every atomic access site in scoped non-test code.
    pub atomic_sites: Vec<AtomicSite>,
    /// Acquire/release pairings that synchronize with nothing.
    pub mismatches: Vec<AtomicMismatch>,
    /// Raw `std::sync`/`std::thread` uses inside the facade scope.
    pub raw_sync: Vec<RawSyncSite>,
}

impl SyncReport {
    /// Whether the concurrency audit is clean.
    pub fn ok(&self) -> bool {
        self.cycles.is_empty() && self.mismatches.is_empty()
    }

    /// The machine-readable report (`lock_order.json`).
    pub fn to_json(&self) -> Value {
        // Nested `HashMap`s because that is what the vendored serde shim
        // serializes (with sorted keys, so the report is deterministic).
        type OrderingProfile = HashMap<String, HashMap<String, HashMap<String, u64>>>;
        let mut atomics: OrderingProfile = HashMap::new();
        for s in &self.atomic_sites {
            let by_ordering = atomics
                .entry(s.name.clone())
                .or_default()
                .entry(
                    match s.access {
                        AtomicAccess::Load => "loads",
                        AtomicAccess::Store => "stores",
                        AtomicAccess::Rmw => "rmws",
                    }
                    .to_string(),
                )
                .or_default();
            for o in &s.orderings {
                *by_ordering.entry(o.clone()).or_insert(0) += 1;
            }
        }
        let locks: BTreeSet<&str> = self.lock_sites.iter().map(|s| s.lock.as_str()).collect();
        let sites: Vec<Value> = self
            .lock_sites
            .iter()
            .map(|s| {
                json!({
                    "file": s.file, "line": s.line, "lock": s.lock, "fn": s.in_fn,
                })
            })
            .collect();
        let edges: Vec<Value> = self
            .edges
            .iter()
            .map(|e| {
                json!({
                    "from": e.from, "to": e.to, "file": e.file, "line": e.line,
                    "via": e.via,
                })
            })
            .collect();
        let mismatches: Vec<Value> = self
            .mismatches
            .iter()
            .map(|m| {
                json!({
                    "name": m.name, "detail": m.detail, "file": m.file, "line": m.line,
                })
            })
            .collect();
        let raw_sync: Vec<Value> = self
            .raw_sync
            .iter()
            .map(|r| {
                json!({
                    "file": r.file, "line": r.line, "path": r.path,
                })
            })
            .collect();
        json!({
            "tool": "mempod-audit",
            "check": "sync",
            "note": "token-level: nodes are receiver identifiers, not objects; \
                     same-named locks merge (over-approximation)",
            "facade_scope": FACADE_SCOPE_CRATES,
            "ok": self.ok(),
            "locks": locks.iter().copied().collect::<Vec<_>>(),
            "acquisition_sites": sites,
            "edges": edges,
            "cycles": self.cycles,
            "atomics": atomics,
            "mismatches": mismatches,
            "raw_sync_outside_facade": raw_sync,
        })
    }
}

/// Is this ordering an acquire (or stronger) for loads?
fn is_acquire(o: &str) -> bool {
    matches!(o, "Acquire" | "AcqRel" | "SeqCst")
}

/// Is this ordering a release (or stronger) for stores/RMWs?
fn is_release(o: &str) -> bool {
    matches!(o, "Release" | "AcqRel" | "SeqCst")
}

/// One event inside a function body, in token order.
#[derive(Debug)]
enum BodyEvent {
    /// Acquisition of the named lock.
    Lock(String, u32),
    /// A call to a workspace function (possible indirect acquisition).
    Call(String, u32),
}

/// Runs the concurrency analysis over the model.
pub fn analyze_sync(model: &Model) -> SyncReport {
    let mut report = SyncReport::default();

    // Per-function body events, and the set of locks each function
    // acquires directly. Function identity is (file idx, item idx).
    let mut events: HashMap<(usize, usize), Vec<BodyEvent>> = HashMap::new();
    let mut direct: HashMap<(usize, usize), BTreeSet<String>> = HashMap::new();
    let mut by_name: HashMap<String, Vec<(usize, usize)>> = HashMap::new();

    for (fi, file) in model.files.iter().enumerate() {
        if !scoped(&file.crate_name) {
            continue;
        }
        let pf = &file.parsed;
        let exempt = pf.exempt_ranges();
        scan_raw_sync(&file.rel, pf, &exempt, &mut report.raw_sync);
        scan_atomics(&file.rel, pf, &exempt, &mut report.atomic_sites);

        for (ii, item) in pf.items.iter().enumerate() {
            if item.kind != ItemKind::Fn || item.cfg_test {
                continue;
            }
            by_name.entry(item.name.clone()).or_default().push((fi, ii));
            let Some((from, to)) = item.body_tokens else {
                continue;
            };
            let mut evs = Vec::new();
            let toks = &pf.tokens;
            let src = &pf.src;
            for i in from..to.min(toks.len()) {
                let t = &toks[i];
                if t.kind != TokenKind::Ident {
                    continue;
                }
                let text = t.text(src);
                let after_dot = i > from && toks[i - 1].is_punct(src, ".");
                let called = toks.get(i + 1).is_some_and(|n| n.is_punct(src, "("));
                if !called {
                    continue;
                }
                if after_dot && LOCK_METHODS.contains(&text) {
                    if let Some(recv) = receiver_name(pf, i - 1) {
                        let site = LockSite {
                            file: file.rel.clone(),
                            line: t.line,
                            lock: recv.clone(),
                            in_fn: item.qual.clone(),
                        };
                        report.lock_sites.push(site);
                        direct.entry((fi, ii)).or_default().insert(recv.clone());
                        evs.push(BodyEvent::Lock(recv, t.line));
                    }
                } else if !ATOMIC_METHODS.contains(&text) {
                    evs.push(BodyEvent::Call(text.to_string(), t.line));
                }
            }
            events.insert((fi, ii), evs);
        }
    }

    // Transitive acquired-lock summaries, to a fixpoint: a call edge is
    // any `name(` whose name matches a workspace fn (over-approximate,
    // matching the coverage call graph).
    let mut trans: HashMap<(usize, usize), BTreeSet<String>> = direct.clone();
    loop {
        let mut changed = false;
        for (id, evs) in &events {
            let mut acc: BTreeSet<String> = trans.get(id).cloned().unwrap_or_default();
            for ev in evs {
                if let BodyEvent::Call(name, _) = ev {
                    for callee in by_name.get(name).into_iter().flatten() {
                        if let Some(locks) = trans.get(callee) {
                            acc.extend(locks.iter().cloned());
                        }
                    }
                }
            }
            if trans.get(id) != Some(&acc) {
                trans.insert(*id, acc);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Edges: after acquiring L, any later direct acquisition M (M != L)
    // or call reaching M adds L → M. Guard drops are not tracked, so
    // "later in the body" over-approximates "while held" — safe for a
    // deadlock screen.
    let mut edge_set: BTreeSet<LockEdge> = BTreeSet::new();
    for ((fi, _ii), evs) in &events {
        let file = &model.files[*fi];
        for (i, ev) in evs.iter().enumerate() {
            let BodyEvent::Lock(held, _) = ev else {
                continue;
            };
            for later in &evs[i + 1..] {
                match later {
                    BodyEvent::Lock(next, line) if next != held => {
                        edge_set.insert(LockEdge {
                            from: held.clone(),
                            to: next.clone(),
                            file: file.rel.clone(),
                            line: *line,
                            via: None,
                        });
                    }
                    BodyEvent::Call(name, line) => {
                        for callee in by_name.get(name).into_iter().flatten() {
                            for reached in trans.get(callee).into_iter().flatten() {
                                if reached != held {
                                    edge_set.insert(LockEdge {
                                        from: held.clone(),
                                        to: reached.clone(),
                                        file: file.rel.clone(),
                                        line: *line,
                                        via: Some(name.clone()),
                                    });
                                }
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    report.edges = edge_set.into_iter().collect();
    report.cycles = find_cycles(&report.edges);
    report.mismatches = find_mismatches(&report.atomic_sites);
    report
}

/// Whether a crate is in the facade/concurrency scope.
fn scoped(crate_name: &str) -> bool {
    PIPELINE_CRATES.contains(&crate_name) || FACADE_SCOPE_CRATES.contains(&crate_name)
}

/// The receiver identifier for a method call: the identifier token just
/// before the `.` at token index `dot`.
fn receiver_name(pf: &crate::parser::ParsedFile, dot: usize) -> Option<String> {
    if dot == 0 {
        return None;
    }
    let prev = &pf.tokens[dot - 1];
    // `foo.lock()` and `self.foo.lock()` both name `foo`; a call-chain
    // receiver (`handle().lock()`) has `)` here and stays anonymous.
    (prev.kind == TokenKind::Ident).then(|| prev.text(&pf.src).to_string())
}

/// Scans one file for raw `std::sync` / `std::thread` paths outside
/// test code. `use` declarations are included deliberately: the import
/// is the clearest single site to flag and fix.
fn scan_raw_sync(
    rel: &str,
    pf: &crate::parser::ParsedFile,
    exempt: &[(usize, usize)],
    out: &mut Vec<RawSyncSite>,
) {
    let src = &pf.src;
    let toks = &pf.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if !t.is_ident(src, "std") || pf.is_exempt(exempt, t.start) {
            continue;
        }
        let Some(sep) = toks.get(i + 1) else { continue };
        let Some(tail) = toks.get(i + 2) else {
            continue;
        };
        if sep.is_punct(src, "::") && (tail.is_ident(src, "sync") || tail.is_ident(src, "thread")) {
            out.push(RawSyncSite {
                file: rel.to_string(),
                line: t.line,
                path: format!("std::{}", tail.text(src)),
            });
        }
    }
}

/// Scans one file for atomic accesses: `.method(… Ordering::X …)` where
/// `method` is an atomic accessor. Requiring an `Ordering::` token inside
/// the call parentheses is what keeps unrelated `load`/`store` methods
/// out.
fn scan_atomics(
    rel: &str,
    pf: &crate::parser::ParsedFile,
    exempt: &[(usize, usize)],
    out: &mut Vec<AtomicSite>,
) {
    let src = &pf.src;
    let toks = &pf.tokens;
    for i in 1..toks.len() {
        let t = &toks[i];
        if t.kind != TokenKind::Ident || pf.is_exempt(exempt, t.start) {
            continue;
        }
        let method = t.text(src);
        if !ATOMIC_METHODS.contains(&method)
            || !toks[i - 1].is_punct(src, ".")
            || !toks.get(i + 1).is_some_and(|n| n.is_punct(src, "("))
        {
            continue;
        }
        let Some(recv) = receiver_name(pf, i - 1) else {
            continue;
        };
        // Collect `Ordering::X` triples up to the matching `)`.
        let mut depth = 0usize;
        let mut orderings = Vec::new();
        let mut j = i + 1;
        while j < toks.len() {
            let tj = &toks[j];
            if tj.is_punct(src, "(") {
                depth += 1;
            } else if tj.is_punct(src, ")") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if tj.is_ident(src, "Ordering")
                && toks.get(j + 1).is_some_and(|n| n.is_punct(src, "::"))
            {
                if let Some(o) = toks.get(j + 2) {
                    if o.kind == TokenKind::Ident {
                        orderings.push(o.text(src).to_string());
                    }
                }
            }
            j += 1;
        }
        if orderings.is_empty() {
            continue;
        }
        out.push(AtomicSite {
            file: rel.to_string(),
            line: t.line,
            name: recv,
            access: match method {
                "load" => AtomicAccess::Load,
                "store" => AtomicAccess::Store,
                _ => AtomicAccess::Rmw,
            },
            orderings,
        });
    }
}

/// Flags atomics whose acquire/release halves do not pair up.
fn find_mismatches(sites: &[AtomicSite]) -> Vec<AtomicMismatch> {
    let mut by_name: BTreeMap<&str, Vec<&AtomicSite>> = BTreeMap::new();
    for s in sites {
        by_name.entry(&s.name).or_default().push(s);
    }
    let mut out = Vec::new();
    for (name, sites) in by_name {
        let loads: Vec<&&AtomicSite> = sites
            .iter()
            .filter(|s| s.access == AtomicAccess::Load)
            .collect();
        let writes: Vec<&&AtomicSite> = sites
            .iter()
            .filter(|s| s.access != AtomicAccess::Load)
            .collect();
        let any_acquire_load = loads
            .iter()
            .any(|s| s.orderings.iter().any(|o| is_acquire(o)));
        let any_release_write = writes
            .iter()
            .any(|s| s.orderings.iter().any(|o| is_release(o)));
        if any_acquire_load && !writes.is_empty() && !any_release_write {
            let site = loads
                .iter()
                .find(|s| s.orderings.iter().any(|o| is_acquire(o)))
                .expect("an acquire load exists");
            out.push(AtomicMismatch {
                name: name.to_string(),
                detail: format!(
                    "`{name}` is Acquire-loaded but every write is Relaxed: \
                     the load synchronizes with nothing"
                ),
                file: site.file.clone(),
                line: site.line,
            });
        }
        if any_release_write && !loads.is_empty() && !any_acquire_load {
            let site = writes
                .iter()
                .find(|s| s.orderings.iter().any(|o| is_release(o)))
                .expect("a release write exists");
            out.push(AtomicMismatch {
                name: name.to_string(),
                detail: format!(
                    "`{name}` is Release-written but every load is Relaxed: \
                     the store publishes to nobody"
                ),
                file: site.file.clone(),
                line: site.line,
            });
        }
    }
    out
}

/// Finds cycles in the lock graph: strongly connected components with
/// more than one node, plus self-loops.
fn find_cycles(edges: &[LockEdge]) -> Vec<Vec<String>> {
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        nodes.insert(&e.from);
        nodes.insert(&e.to);
        adj.entry(&e.from).or_default().insert(&e.to);
    }
    // Iterative Tarjan SCC.
    #[derive(Default)]
    struct St<'a> {
        index: HashMap<&'a str, usize>,
        low: HashMap<&'a str, usize>,
        on_stack: BTreeSet<&'a str>,
        stack: Vec<&'a str>,
        next: usize,
        sccs: Vec<Vec<String>>,
    }
    let mut st = St::default();
    for &start in &nodes {
        if st.index.contains_key(start) {
            continue;
        }
        // (node, neighbor iterator position)
        let mut call: Vec<(&str, Vec<&str>, usize)> = Vec::new();
        fn neigh<'a>(n: &str, adj: &BTreeMap<&'a str, BTreeSet<&'a str>>) -> Vec<&'a str> {
            adj.get(n)
                .map(|s| s.iter().copied().collect())
                .unwrap_or_default()
        }
        st.index.insert(start, st.next);
        st.low.insert(start, st.next);
        st.next += 1;
        st.stack.push(start);
        st.on_stack.insert(start);
        call.push((start, neigh(start, &adj), 0));
        while let Some((node, ns, pos)) = call.last_mut() {
            if *pos < ns.len() {
                let m = ns[*pos];
                *pos += 1;
                if !st.index.contains_key(m) {
                    st.index.insert(m, st.next);
                    st.low.insert(m, st.next);
                    st.next += 1;
                    st.stack.push(m);
                    st.on_stack.insert(m);
                    call.push((m, neigh(m, &adj), 0));
                } else if st.on_stack.contains(m) {
                    let ml = st.index[m];
                    let e = st.low.get_mut(*node).expect("visited");
                    *e = (*e).min(ml);
                }
            } else {
                let node = *node;
                if st.low[node] == st.index[node] {
                    let mut scc = Vec::new();
                    while let Some(top) = st.stack.pop() {
                        st.on_stack.remove(top);
                        scc.push(top.to_string());
                        if top == node {
                            break;
                        }
                    }
                    let self_loop =
                        scc.len() == 1 && adj.get(node).is_some_and(|s| s.contains(node));
                    if scc.len() > 1 || self_loop {
                        scc.sort();
                        st.sccs.push(scc);
                    }
                }
                call.pop();
                if let Some((parent, _, _)) = call.last() {
                    let nl = st.low[node];
                    let e = st.low.get_mut(*parent).expect("visited");
                    *e = (*e).min(nl);
                }
            }
        }
    }
    st.sccs
}

/// The lint-engine entry point: converts the analysis into violations.
pub fn check(model: &Model, out: &mut Vec<Violation>) {
    let report = analyze_sync(model);
    for cycle in &report.cycles {
        // Anchor the finding at the first edge inside the cycle.
        let edge = report
            .edges
            .iter()
            .find(|e| cycle.contains(&e.from) && cycle.contains(&e.to));
        let (file, line, snippet) = match edge {
            Some(e) => {
                let snippet = model
                    .file_index(&e.file)
                    .map(|fi| {
                        let pf = &model.files[fi].parsed;
                        line_snippet(pf, e.line)
                    })
                    .unwrap_or_default();
                (e.file.clone(), e.line as usize, snippet)
            }
            None => (String::new(), 0, String::new()),
        };
        out.push(Violation {
            file,
            line,
            rule: "lock-order-cycle".to_string(),
            message: format!(
                "locks {{{}}} form an acquisition-order cycle: two threads \
                 taking them in opposite orders can deadlock; impose a single \
                 global order",
                cycle.join(", ")
            ),
            snippet,
            allowed: false,
            baselined: false,
        });
    }
    for m in &report.mismatches {
        let snippet = model
            .file_index(&m.file)
            .map(|fi| line_snippet(&model.files[fi].parsed, m.line))
            .unwrap_or_default();
        out.push(Violation {
            file: m.file.clone(),
            line: m.line as usize,
            rule: "atomic-ordering-mismatch".to_string(),
            message: format!(
                "{}; pair Acquire loads with Release writes (or relax both \
                 ends if no data is published)",
                m.detail
            ),
            snippet,
            allowed: false,
            baselined: false,
        });
    }
    for r in &report.raw_sync {
        let snippet = model
            .file_index(&r.file)
            .map(|fi| line_snippet(&model.files[fi].parsed, r.line))
            .unwrap_or_default();
        out.push(Violation {
            file: r.file.clone(),
            line: r.line as usize,
            rule: "sync-primitive-outside-facade".to_string(),
            message: format!(
                "raw `{}` in a facade-scoped crate escapes the mempod-sync \
                 instrumentation; import the equivalent from `mempod_sync` so \
                 the model-check build can interpose",
                r.path
            ),
            snippet,
            allowed: false,
            baselined: false,
        });
    }
}

/// The trimmed source text of 1-based line `line`.
fn line_snippet(pf: &crate::parser::ParsedFile, line: u32) -> String {
    pf.src
        .lines()
        .nth(line.saturating_sub(1) as usize)
        .unwrap_or("")
        .trim()
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    /// A miniature facade-scoped workspace with the given `mempod-sim`
    /// sources.
    fn mini(tag: &str, files: &[(&str, &str)]) -> PathBuf {
        let root =
            std::env::temp_dir().join(format!("mempod-sync-pass-{tag}-{}", std::process::id()));
        if root.exists() {
            std::fs::remove_dir_all(&root).expect("stale fixture removed");
        }
        let write = |rel: &str, content: &str| {
            let p = root.join(rel);
            std::fs::create_dir_all(p.parent().expect("parent")).expect("mkdir");
            std::fs::write(p, content).expect("write");
        };
        write(
            "crates/sim/Cargo.toml",
            "[package]\nname = \"mempod-sim\"\n",
        );
        let mods: String = files
            .iter()
            .map(|(name, _)| format!("pub mod {name};\n"))
            .collect();
        write("crates/sim/src/lib.rs", &mods);
        for (name, src) in files {
            write(&format!("crates/sim/src/{name}.rs"), src);
        }
        root
    }

    fn analyze(tag: &str, files: &[(&str, &str)]) -> SyncReport {
        let root = mini(tag, files);
        let model = Model::build(&root).expect("model");
        let report = analyze_sync(&model);
        std::fs::remove_dir_all(&root).ok();
        report
    }

    #[test]
    fn ab_ba_order_is_a_cycle() {
        let report = analyze(
            "abba",
            &[(
                "locks",
                "pub fn f(a: &M, b: &M) { let _x = a.lock(); let _y = b.lock(); }\n\
                 pub fn g(a: &M, b: &M) { let _y = b.lock(); let _x = a.lock(); }\n",
            )],
        );
        assert_eq!(report.cycles.len(), 1, "{report:?}");
        assert_eq!(report.cycles[0], vec!["a".to_string(), "b".to_string()]);
        assert!(!report.ok());
    }

    #[test]
    fn consistent_order_is_clean() {
        let report = analyze(
            "ordered",
            &[(
                "locks",
                "pub fn f(a: &M, b: &M) { let _x = a.lock(); let _y = b.lock(); }\n\
                 pub fn g(a: &M, b: &M) { let _x = a.lock(); let _y = b.lock(); }\n",
            )],
        );
        assert!(report.cycles.is_empty(), "{report:?}");
        assert_eq!(report.lock_sites.len(), 4);
        assert!(report.edges.iter().all(|e| e.from == "a" && e.to == "b"));
    }

    #[test]
    fn cycles_are_found_through_callees() {
        let report = analyze(
            "transitive",
            &[(
                "locks",
                "pub fn helper(b: &M) { let _y = b.lock(); }\n\
                 pub fn f(a: &M, b: &M) { let _x = a.lock(); helper(b); }\n\
                 pub fn g(a: &M, b: &M) { let _y = b.lock(); let _x = a.lock(); }\n",
            )],
        );
        assert_eq!(report.cycles.len(), 1, "{report:?}");
        assert!(report
            .edges
            .iter()
            .any(|e| e.via.as_deref() == Some("helper")));
    }

    #[test]
    fn acquire_load_with_relaxed_stores_is_flagged() {
        let report = analyze(
            "mismatch",
            &[(
                "atomics",
                "pub fn f(flag: &A) -> bool { flag.load(Ordering::Acquire) }\n\
                 pub fn g(flag: &A) { flag.store(true, Ordering::Relaxed); }\n",
            )],
        );
        assert_eq!(report.mismatches.len(), 1, "{report:?}");
        assert!(report.mismatches[0]
            .detail
            .contains("synchronizes with nothing"));
    }

    #[test]
    fn paired_and_all_relaxed_atomics_pass() {
        let report = analyze(
            "paired",
            &[(
                "atomics",
                "pub fn f(s: &A) -> u8 { s.load(Ordering::Acquire) }\n\
                 pub fn g(s: &A) { s.store(1, Ordering::Release); }\n\
                 pub fn h(n: &A) -> u64 { n.fetch_add(1, Ordering::Relaxed) }\n\
                 pub fn i(n: &A) -> u64 { n.load(Ordering::Relaxed) }\n",
            )],
        );
        assert!(report.mismatches.is_empty(), "{report:?}");
        assert_eq!(report.atomic_sites.len(), 4);
    }

    #[test]
    fn raw_std_sync_is_flagged_outside_tests() {
        let report = analyze(
            "facade",
            &[(
                "raw",
                "use std::sync::Mutex;\n\
                 pub fn f() { let h = std::thread::spawn(|| 1); let _ = h; }\n\
                 #[cfg(test)]\nmod tests {\n  use std::sync::Arc;\n}\n",
            )],
        );
        let paths: Vec<&str> = report.raw_sync.iter().map(|r| r.path.as_str()).collect();
        assert_eq!(paths, ["std::sync", "std::thread"], "{report:?}");
    }

    #[test]
    fn report_json_carries_cycles_and_profiles() {
        let report = analyze(
            "json",
            &[(
                "locks",
                "pub fn f(a: &M, b: &M) { let _x = a.lock(); let _y = b.lock(); }\n\
                 pub fn g(c: &A) -> bool { c.load(Ordering::Acquire) }\n",
            )],
        );
        let j = report.to_json();
        assert_eq!(j["check"].as_str(), Some("sync"));
        assert_eq!(j["ok"].as_bool(), Some(true));
        assert_eq!(j["cycles"].as_array().map(Vec::len), Some(0));
        assert_eq!(
            j["atomics"]["c"]["loads"]["Acquire"].as_u64(),
            Some(1),
            "{j:?}"
        );
    }
}
