//! Runtime invariant auditing for the migration pipeline.
//!
//! An [`InvariantAuditor`] is handed to subsystems at epoch boundaries
//! (sampled, so auditing stays affordable even on multi-million-request
//! runs). Subsystems state invariants through the [`audit!`](crate::audit)
//! and [`audit_invariant!`](crate::audit_invariant) macros; violations are
//! collected — not panicked on — so a single check pass can report every
//! broken invariant at once, and tests end with
//! [`InvariantAuditor::assert_clean`].
//!
//! The macros compile to nothing in crates built without their
//! `debug-invariants` cargo feature: the condition expression is not even
//! evaluated, so O(n) checks such as remap-bijection scans cost nothing in
//! release builds.

/// Collects invariant-check outcomes across one simulation run.
///
/// # Examples
///
/// ```
/// use mempod_audit::InvariantAuditor;
///
/// let mut auditor = InvariantAuditor::new("demo", 1);
/// if auditor.should_sample() {
///     auditor.observe(1 + 1 == 2, || "arithmetic broke".to_string());
/// }
/// assert!(auditor.is_clean());
/// auditor.assert_clean();
/// ```
#[derive(Debug, Clone)]
pub struct InvariantAuditor {
    label: String,
    sample_every: u64,
    epochs_seen: u64,
    checks_run: u64,
    violations: Vec<String>,
}

impl InvariantAuditor {
    /// Creates an auditor labelled `label` that samples one epoch boundary
    /// out of every `sample_every` (clamped to at least 1).
    pub fn new(label: impl Into<String>, sample_every: u64) -> Self {
        InvariantAuditor {
            label: label.into(),
            sample_every: sample_every.max(1),
            epochs_seen: 0,
            checks_run: 0,
            violations: Vec::new(),
        }
    }

    /// An auditor that checks every epoch boundary (no sampling).
    pub fn every_epoch(label: impl Into<String>) -> Self {
        Self::new(label, 1)
    }

    /// Advances the epoch counter and reports whether this boundary is one
    /// of the sampled ones. The first boundary is always sampled, so even
    /// short runs exercise every invariant at least once.
    pub fn should_sample(&mut self) -> bool {
        let sampled = self.epochs_seen.is_multiple_of(self.sample_every);
        self.epochs_seen += 1;
        sampled
    }

    /// Records the outcome of one invariant check. The message closure is
    /// only invoked on violation.
    pub fn observe<F: FnOnce() -> String>(&mut self, ok: bool, msg: F) {
        self.checks_run += 1;
        if !ok {
            self.violations.push(msg());
        }
    }

    /// Records a violation directly.
    pub fn record(&mut self, msg: impl Into<String>) {
        self.checks_run += 1;
        self.violations.push(msg.into());
    }

    /// Checks that `values` is a bijection onto `0..n`: every value in
    /// range and none repeated. This is the remap-table invariant — each
    /// pod's page→frame mapping must stay a permutation across swaps.
    pub fn check_bijection<I>(&mut self, what: &str, values: I, n: usize)
    where
        I: IntoIterator<Item = u64>,
    {
        let mut seen = vec![false; n];
        let mut count = 0usize;
        let mut ok = true;
        let mut detail = String::new();
        for v in values {
            count += 1;
            match seen.get_mut(usize::try_from(v).unwrap_or(usize::MAX)) {
                Some(slot) if !*slot => *slot = true,
                Some(_) => {
                    ok = false;
                    detail = format!("value {v} appears twice");
                    break;
                }
                None => {
                    ok = false;
                    detail = format!("value {v} out of range 0..{n}");
                    break;
                }
            }
        }
        if ok && count != n {
            ok = false;
            detail = format!("{count} values for domain of {n}");
        }
        self.observe(ok, || format!("{what}: not a bijection ({detail})"));
    }

    /// Checks that two independently maintained counts agree — e.g. the
    /// migration count seen by the activity tracker's epoch logic versus
    /// the migration engine's executed total.
    pub fn check_conserved(&mut self, what: &str, expected: u64, actual: u64) {
        self.observe(expected == actual, || {
            format!("{what}: expected {expected}, found {actual}")
        });
    }

    /// Checks that `values` is strictly increasing. This is the channel
    /// sub-queue invariant: each per-(priority, bank) sub-queue iterates
    /// its live sequence numbers in issue order, which is what makes the
    /// first arrived element the FCFS-oldest without a full scan.
    pub fn check_monotonic<I>(&mut self, what: &str, values: I)
    where
        I: IntoIterator<Item = u64>,
    {
        let mut prev: Option<u64> = None;
        let mut ok = true;
        let mut detail = String::new();
        for v in values {
            if let Some(p) = prev {
                if v <= p {
                    ok = false;
                    detail = format!("{v} follows {p}");
                    break;
                }
            }
            prev = Some(v);
        }
        self.observe(ok, || format!("{what}: not strictly increasing ({detail})"));
    }

    /// Number of epoch boundaries offered to this auditor.
    pub fn epochs_seen(&self) -> u64 {
        self.epochs_seen
    }

    /// Number of individual invariant checks executed.
    pub fn checks_run(&self) -> u64 {
        self.checks_run
    }

    /// The collected violation messages.
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// Whether no violation has been recorded.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Merges another auditor's counters and violations into this one
    /// (used to aggregate per-subsystem auditors into a run-level report).
    pub fn absorb(&mut self, other: &InvariantAuditor) {
        self.checks_run += other.checks_run;
        self.violations.extend(other.violations.iter().cloned());
    }

    /// Panics with every violation if any were recorded.
    ///
    /// # Panics
    ///
    /// Panics when at least one invariant violation was recorded.
    pub fn assert_clean(&self) {
        assert!(
            self.is_clean(),
            "invariant auditor `{}` recorded {} violation(s) over {} checks:\n  {}",
            self.label,
            self.violations.len(),
            self.checks_run,
            self.violations.join("\n  ")
        );
    }
}

/// Checks a condition against the auditor, recording a violation with the
/// formatted message (or the stringified condition) when it fails.
///
/// Compiles to nothing — the condition is not evaluated — unless the
/// *expanding* crate is built with its `debug-invariants` feature.
#[macro_export]
macro_rules! audit {
    ($auditor:expr, $cond:expr $(,)?) => {
        $crate::audit!($auditor, $cond, "{}", stringify!($cond))
    };
    ($auditor:expr, $cond:expr, $($fmt:tt)+) => {
        #[cfg(feature = "debug-invariants")]
        {
            let __auditor: &mut $crate::InvariantAuditor = $auditor;
            let __ok: bool = $cond;
            __auditor.observe(__ok, || format!($($fmt)+));
        }
    };
}

/// Like [`audit!`] but names the invariant, so reports group by invariant
/// rather than by call site.
#[macro_export]
macro_rules! audit_invariant {
    ($auditor:expr, $name:expr, $cond:expr $(,)?) => {
        $crate::audit_invariant!($auditor, $name, $cond, "{}", stringify!($cond))
    };
    ($auditor:expr, $name:expr, $cond:expr, $($fmt:tt)+) => {
        #[cfg(feature = "debug-invariants")]
        {
            let __auditor: &mut $crate::InvariantAuditor = $auditor;
            let __ok: bool = $cond;
            __auditor.observe(__ok, || {
                format!("[{}] {}", $name, format!($($fmt)+))
            });
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_includes_first_epoch() {
        let mut a = InvariantAuditor::new("s", 4);
        let sampled: Vec<bool> = (0..8).map(|_| a.should_sample()).collect();
        assert_eq!(
            sampled,
            [true, false, false, false, true, false, false, false]
        );
        assert_eq!(a.epochs_seen(), 8);
    }

    #[test]
    fn bijection_detects_duplicates_and_range() {
        let mut a = InvariantAuditor::every_epoch("b");
        a.check_bijection("ok", [2u64, 0, 1], 3);
        assert!(a.is_clean());
        a.check_bijection("dup", [0u64, 0, 1], 3);
        a.check_bijection("range", [0u64, 1, 5], 3);
        a.check_bijection("short", [0u64, 1], 3);
        assert_eq!(a.violations().len(), 3);
        assert_eq!(a.checks_run(), 4);
    }

    #[test]
    fn monotonic_detects_regressions_and_repeats() {
        let mut a = InvariantAuditor::every_epoch("m");
        a.check_monotonic("ok", [1u64, 5, 9]);
        a.check_monotonic("empty", std::iter::empty());
        a.check_monotonic("single", [7u64]);
        assert!(a.is_clean());
        a.check_monotonic("repeat", [1u64, 1]);
        a.check_monotonic("regress", [4u64, 2]);
        assert_eq!(a.violations().len(), 2);
        assert!(a.violations()[1].contains("2 follows 4"));
    }

    #[test]
    fn conservation_and_absorb() {
        let mut a = InvariantAuditor::every_epoch("c");
        a.check_conserved("counts", 5, 5);
        let mut b = InvariantAuditor::every_epoch("d");
        b.check_conserved("counts", 5, 6);
        a.absorb(&b);
        assert_eq!(a.checks_run(), 2);
        assert_eq!(a.violations().len(), 1);
        assert!(a.violations()[0].contains("expected 5, found 6"));
    }

    #[test]
    #[should_panic(expected = "recorded 1 violation")]
    fn assert_clean_panics_on_violation() {
        let mut a = InvariantAuditor::every_epoch("p");
        a.record("broken");
        a.assert_clean();
    }
}
