//! A dependency-free Rust lexer producing a byte-offset token stream.
//!
//! The lint engine used to scan comment-stripped *text*; every rule that
//! needed structure (is this `as` a cast? is this identifier a call?) had
//! to re-derive it from strings. This lexer gives every downstream pass —
//! the item parser, the call graph, and the token-level rules — one shared
//! source model. The workspace has no crates.io access, so this is
//! hand-rolled (no `proc-macro2`/`syn`), covering the subset of Rust that
//! actually appears in the tree plus the edge cases the old text-stripper
//! mishandled: raw strings with arbitrary `#` fences, byte/raw-byte
//! strings, nested block comments, and char-literal vs. lifetime
//! disambiguation (including multi-byte chars).
//!
//! Ordinary comments vanish; doc comments survive as [`TokenKind::DocOuter`]
//! / [`TokenKind::DocInner`] tokens so the API-surface rule can attribute
//! them to items. String and char literals become single tokens whose
//! contents no rule ever matches against.

/// The coarse classification of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (the parser distinguishes by text).
    Ident,
    /// A lifetime such as `'a` (leading quote included in the span).
    Lifetime,
    /// Integer or float literal, including any type suffix.
    Number,
    /// Any string-ish literal: `"…"`, `r#"…"#`, `b"…"`, `br#"…"#`.
    Str,
    /// A char or byte-char literal: `'x'`, `'\n'`, `b'x'`.
    Char,
    /// Outer doc comment (`///` or `/** … */`).
    DocOuter,
    /// Inner doc comment (`//!` or `/*! … */`).
    DocInner,
    /// Punctuation; common two-character operators arrive merged
    /// (`::`, `->`, `=>`, `<<`, `<=`, `>=`, `==`, `!=`, `&&`, `||`,
    /// `..`, `+=`, `-=`).
    Punct,
}

/// One token: a classified byte range of the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based source line of `start`.
    pub line: u32,
}

impl Token {
    /// The token's text within its source.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// Whether this token is the exact punctuation `p`.
    pub fn is_punct(&self, src: &str, p: &str) -> bool {
        self.kind == TokenKind::Punct && self.text(src) == p
    }

    /// Whether this token is the exact identifier/keyword `name`.
    pub fn is_ident(&self, src: &str, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text(src) == name
    }
}

/// Two-character punctuation sequences emitted as single tokens. `>>` is
/// deliberately absent: merging it would corrupt nested generics such as
/// `Vec<Vec<u8>>`, and no rule needs right-shift.
const TWO_CHAR_PUNCT: &[&str] = &[
    "::", "->", "=>", "<<", "<=", ">=", "==", "!=", "&&", "||", "..", "+=", "-=",
];

/// Tokenizes `src`. Never fails: unrecognized bytes become one-byte
/// `Punct` tokens, and unterminated literals extend to end of input, so
/// the lexer is total over arbitrary text.
pub fn tokenize(src: &str) -> Vec<Token> {
    Lexer {
        b: src.as_bytes(),
        i: 0,
        line: 1,
        out: Vec::with_capacity(src.len() / 4),
    }
    .run()
}

struct Lexer<'a> {
    b: &'a [u8],
    i: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        while self.i < self.b.len() {
            let c = self.b[self.i];
            match c {
                b' ' | b'\t' | b'\r' => self.i += 1,
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'r' if self.raw_str_ahead(self.i + 1) => self.raw_string(self.i + 1),
                b'b' => self.byte_prefixed(),
                b'"' => self.plain_string(),
                b'\'' => self.quote(),
                _ if c == b'_' || c.is_ascii_alphabetic() || c >= 0x80 => self.ident(),
                _ if c.is_ascii_digit() => self.number(),
                _ => self.punct(),
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.b.get(self.i + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, start: usize, end: usize, line: u32) {
        self.out.push(Token {
            kind,
            start,
            end,
            line,
        });
    }

    /// Advances `self.i` to `to`, counting newlines crossed.
    fn advance_to(&mut self, to: usize) {
        let to = to.min(self.b.len());
        for &c in &self.b[self.i..to] {
            if c == b'\n' {
                self.line += 1;
            }
        }
        self.i = to;
    }

    fn line_comment(&mut self) {
        let start = self.i;
        let line = self.line;
        let end = self.b[self.i..]
            .iter()
            .position(|&c| c == b'\n')
            .map_or(self.b.len(), |p| self.i + p);
        let text = &self.b[start..end];
        // `///` is outer doc, `//!` inner doc — but `////…` is ordinary.
        let kind = if text.starts_with(b"///") && text.get(3) != Some(&b'/') {
            Some(TokenKind::DocOuter)
        } else if text.starts_with(b"//!") {
            Some(TokenKind::DocInner)
        } else {
            None
        };
        if let Some(kind) = kind {
            self.push(kind, start, end, line);
        }
        self.i = end;
    }

    fn block_comment(&mut self) {
        let start = self.i;
        let line = self.line;
        let text = &self.b[start..];
        // `/**/` and `/***…` are ordinary; `/**x` and `/*!` are docs.
        let kind = if text.starts_with(b"/*!") {
            Some(TokenKind::DocInner)
        } else if text.starts_with(b"/**") && !matches!(text.get(3), Some(b'*') | Some(b'/')) {
            Some(TokenKind::DocOuter)
        } else {
            None
        };
        let mut depth = 1usize;
        let mut j = start + 2;
        while j < self.b.len() && depth > 0 {
            if self.b[j..].starts_with(b"/*") {
                depth += 1;
                j += 2;
            } else if self.b[j..].starts_with(b"*/") {
                depth -= 1;
                j += 2;
            } else {
                j += 1;
            }
        }
        self.advance_to(j);
        if let Some(kind) = kind {
            self.push(kind, start, j, line);
        }
    }

    /// Whether a raw-string fence (`#* "`), as after `r` or `br`, starts at `j`.
    fn raw_str_ahead(&self, mut j: usize) -> bool {
        // The `r`/`br` prefix must not be the tail of a longer identifier.
        if self.i > 0 && ident_byte(self.b[self.i - 1]) {
            return false;
        }
        while self.b.get(j) == Some(&b'#') {
            j += 1;
        }
        self.b.get(j) == Some(&b'"')
    }

    /// Lexes `r"…"`/`r#"…"#` (or the `br` forms) whose fence starts at `j`.
    fn raw_string(&mut self, mut j: usize) {
        let start = self.i;
        let line = self.line;
        let mut hashes = 0usize;
        while self.b.get(j) == Some(&b'#') {
            hashes += 1;
            j += 1;
        }
        j += 1; // opening quote
        let mut closer = vec![b'"'];
        closer.extend(std::iter::repeat_n(b'#', hashes));
        let end = find_sub(self.b, j, &closer).map_or(self.b.len(), |p| p + closer.len());
        self.advance_to(end);
        self.push(TokenKind::Str, start, end, line);
    }

    /// Lexes tokens starting with `b`: `b"…"`, `br#"…"#`, `b'x'`, or a
    /// plain identifier.
    fn byte_prefixed(&mut self) {
        if self.i > 0 && ident_byte(self.b[self.i - 1]) {
            self.ident();
            return;
        }
        match self.peek(1) {
            Some(b'"') => {
                let start = self.i;
                let line = self.line;
                self.i += 1;
                self.string_body(start, line);
            }
            Some(b'r') if self.raw_str_ahead(self.i + 2) => self.raw_string(self.i + 2),
            Some(b'\'') => {
                let start = self.i;
                let line = self.line;
                // Content begins after the `b` and the opening quote.
                let end = self.char_end(self.i + 2).unwrap_or(self.i + 2);
                self.advance_to(end);
                self.push(TokenKind::Char, start, end, line);
            }
            _ => self.ident(),
        }
    }

    fn plain_string(&mut self) {
        let start = self.i;
        let line = self.line;
        self.string_body(start, line);
    }

    /// Consumes a `"…"` body with escapes; `self.i` must be at the quote.
    fn string_body(&mut self, start: usize, line: u32) {
        let mut j = self.i + 1;
        while j < self.b.len() {
            match self.b[j] {
                b'\\' => j += 2,
                b'"' => {
                    j += 1;
                    break;
                }
                _ => j += 1,
            }
        }
        let end = j.min(self.b.len());
        self.advance_to(end);
        self.push(TokenKind::Str, start, end, line);
    }

    /// If a char literal starts at the quote before `j` (content begins at
    /// `j`), returns its end offset; `None` means lifetime.
    fn char_end(&self, j: usize) -> Option<usize> {
        match self.b.get(j)? {
            b'\\' => {
                // Escape: scan to the closing quote (handles \u{…}).
                let mut k = j + 2;
                while k < self.b.len() && self.b[k] != b'\'' && self.b[k] != b'\n' {
                    k += 1;
                }
                (self.b.get(k) == Some(&b'\'')).then_some(k + 1)
            }
            &c => {
                // One char (possibly multi-byte) then an immediate quote.
                let len = utf8_len(c);
                (c != b'\'' && self.b.get(j + len) == Some(&b'\'')).then_some(j + len + 1)
            }
        }
    }

    /// Disambiguates `'x'` (char) from `'a` (lifetime) at a quote.
    fn quote(&mut self) {
        let start = self.i;
        let line = self.line;
        if let Some(end) = self.char_end(self.i + 1) {
            self.advance_to(end);
            self.push(TokenKind::Char, start, end, line);
        } else {
            let mut j = self.i + 1;
            while j < self.b.len() && ident_byte(self.b[j]) {
                j += 1;
            }
            self.i = j;
            self.push(TokenKind::Lifetime, start, j, line);
        }
    }

    fn ident(&mut self) {
        let start = self.i;
        let line = self.line;
        let mut j = self.i;
        while j < self.b.len() && (ident_byte(self.b[j]) || self.b[j] >= 0x80) {
            j += 1;
        }
        self.i = j;
        self.push(TokenKind::Ident, start, j, line);
    }

    fn number(&mut self) {
        let start = self.i;
        let line = self.line;
        let mut j = self.i;
        while j < self.b.len() {
            if ident_byte(self.b[j]) {
                j += 1;
            } else if self.b[j] == b'.'
                && self.b.get(j + 1).is_some_and(u8::is_ascii_digit)
                && self
                    .b
                    .get(j.wrapping_sub(1))
                    .is_some_and(u8::is_ascii_digit)
            {
                // `1.5` continues the literal; `1..n` and `1.max(2)` do not.
                j += 1;
            } else {
                break;
            }
        }
        self.i = j;
        self.push(TokenKind::Number, start, j, line);
    }

    fn punct(&mut self) {
        let start = self.i;
        let line = self.line;
        for two in TWO_CHAR_PUNCT {
            if self.b[start..].starts_with(two.as_bytes()) {
                self.i = start + 2;
                self.push(TokenKind::Punct, start, start + 2, line);
                return;
            }
        }
        self.i = start + 1;
        self.push(TokenKind::Punct, start, start + 1, line);
    }
}

fn ident_byte(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Byte length of the UTF-8 sequence starting with `lead`.
fn utf8_len(lead: u8) -> usize {
    match lead {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn find_sub(b: &[u8], from: usize, needle: &[u8]) -> Option<usize> {
    if needle.is_empty() || from >= b.len() {
        return None;
    }
    b[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|p| p + from)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<(TokenKind, &str)> {
        tokenize(src)
            .iter()
            .map(|t| (t.kind, t.text(src)))
            .collect()
    }

    #[test]
    fn idents_puncts_and_numbers() {
        let src = "let x = a_1 + 0x1f_u64;";
        assert_eq!(
            texts(src),
            [
                (TokenKind::Ident, "let"),
                (TokenKind::Ident, "x"),
                (TokenKind::Punct, "="),
                (TokenKind::Ident, "a_1"),
                (TokenKind::Punct, "+"),
                (TokenKind::Number, "0x1f_u64"),
                (TokenKind::Punct, ";"),
            ]
        );
    }

    #[test]
    fn two_char_puncts_merge_but_nested_generics_survive() {
        let src = "x <<= 1; let v: Vec<Vec<u8>> = vec![];";
        let t = texts(src);
        assert!(t.contains(&(TokenKind::Punct, "<<")));
        // `>>` must stay two separate `>` tokens.
        assert!(!t.contains(&(TokenKind::Punct, ">>")));
        assert_eq!(t.iter().filter(|(_, s)| *s == ">").count(), 2);
    }

    #[test]
    fn strings_and_chars_are_opaque_single_tokens() {
        let src = r#"f("panic!(", 'x', '\n', b'q', b"bytes")"#;
        let t = texts(src);
        assert!(t.contains(&(TokenKind::Str, "\"panic!(\"")));
        assert!(t.contains(&(TokenKind::Char, "'x'")));
        assert!(t.contains(&(TokenKind::Char, r"'\n'")));
        assert!(t.contains(&(TokenKind::Char, "b'q'")));
        assert!(t.contains(&(TokenKind::Str, "b\"bytes\"")));
    }

    #[test]
    fn raw_strings_with_fences() {
        let src = "let a = r\"x\"; let b = r#\"quote \" inside\"#; let c = br##\"x\"#y\"##;";
        let t = texts(src);
        assert!(t.contains(&(TokenKind::Str, "r\"x\"")));
        assert!(t.contains(&(TokenKind::Str, "r#\"quote \" inside\"#")));
        assert!(t.contains(&(TokenKind::Str, "br##\"x\"#y\"##")));
    }

    #[test]
    fn raw_string_with_embedded_panic_never_leaks() {
        let src = "let s = r#\"call .unwrap() and panic!(now)\"#; done();";
        let t = tokenize(src);
        assert!(!t
            .iter()
            .any(|tok| tok.kind == TokenKind::Ident && tok.text(src) == "panic"));
        assert!(t.iter().any(|tok| tok.is_ident(src, "done")));
    }

    #[test]
    fn nested_block_comments_are_skipped() {
        let src = "a /* outer /* inner */ still comment */ b";
        assert_eq!(
            texts(src),
            [(TokenKind::Ident, "a"), (TokenKind::Ident, "b")]
        );
    }

    #[test]
    fn doc_comments_survive_ordinary_comments_vanish() {
        let src = "/// outer\n//! inner\n//// not a doc\n// plain\n/** block */ fn f() {}";
        let t = texts(src);
        assert_eq!(t[0], (TokenKind::DocOuter, "/// outer"));
        assert_eq!(t[1], (TokenKind::DocInner, "//! inner"));
        assert_eq!(t[2], (TokenKind::DocOuter, "/** block */"));
        assert_eq!(t[3], (TokenKind::Ident, "fn"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'b' }";
        let t = texts(src);
        assert_eq!(
            t.iter().filter(|(k, _)| *k == TokenKind::Lifetime).count(),
            2
        );
        assert!(t.contains(&(TokenKind::Char, "'b'")));
    }

    #[test]
    fn multibyte_char_literal() {
        let src = "let c = 'λ'; let l: &'static str = \"s\";";
        let t = texts(src);
        assert!(t.contains(&(TokenKind::Char, "'λ'")));
        assert!(t.contains(&(TokenKind::Lifetime, "'static")));
    }

    #[test]
    fn lifetime_list_in_generics_is_not_a_char() {
        // 'a, 'b — the `, '` sequence must not fuse into a char literal.
        let src = "fn f<'a, 'b>(x: &'a u8, y: &'b u8) {}";
        let t = texts(src);
        assert_eq!(
            t.iter().filter(|(k, _)| *k == TokenKind::Lifetime).count(),
            4
        );
        assert!(!t.iter().any(|(k, _)| *k == TokenKind::Char));
    }

    #[test]
    fn line_numbers_track_every_literal_form() {
        let src = "a\n\"two\nlines\"\nb\n/* c\nd */\ne";
        let toks = tokenize(src);
        let by_text: Vec<(&str, u32)> = toks.iter().map(|t| (t.text(src), t.line)).collect();
        assert!(by_text.contains(&("a", 1)));
        assert!(by_text.contains(&("b", 4)));
        assert!(by_text.contains(&("e", 7)));
    }

    #[test]
    fn unterminated_literals_do_not_panic() {
        for src in ["\"abc", "r#\"abc", "/* abc", "'"] {
            let _ = tokenize(src);
        }
    }
}
