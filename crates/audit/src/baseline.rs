//! `--deny-new` baseline support: a committed `audit.baseline.json`
//! records the findings that existed when a rule was introduced, and CI
//! fails only on findings *not* in the baseline. This lets a new rule
//! family be adopted without a big-bang cleanup — existing debt is
//! visible and frozen, new debt is blocked.
//!
//! Entries are content-anchored (`file` + `rule` + trimmed source line),
//! not line-number-anchored, so unrelated edits don't invalidate them —
//! and *fixing* a finding makes its entry stale, which the report
//! surfaces so the baseline only ever shrinks.

use serde_json::{json, Value};

use crate::lint::Violation;

/// One grandfathered finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Workspace-relative file.
    pub file: String,
    /// Rule identifier.
    pub rule: String,
    /// The trimmed source line of the finding when it was baselined.
    pub snippet: String,
    /// Why the finding is frozen rather than fixed (hand-written; the
    /// determinism rules require one for order-insensitive sites).
    pub note: Option<String>,
}

/// The committed set of pre-existing findings.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    entries: Vec<BaselineEntry>,
}

impl Baseline {
    /// Parses `audit.baseline.json`:
    /// `{"version": 1, "entries": [{"file", "rule", "snippet"}, …]}`.
    ///
    /// # Errors
    ///
    /// Returns a message for malformed JSON or missing fields.
    pub fn from_json(text: &str) -> Result<Baseline, String> {
        let v: Value =
            serde_json::from_str(text).map_err(|e| format!("baseline is not valid JSON: {e}"))?;
        let Some(items) = v["entries"].as_array() else {
            return Err("baseline must have an `entries` array".to_string());
        };
        let mut entries = Vec::new();
        for (i, item) in items.iter().enumerate() {
            let field = |k: &str| {
                item[k]
                    .as_str()
                    .map(str::to_string)
                    .ok_or_else(|| format!("baseline entry {i}: missing string field `{k}`"))
            };
            entries.push(BaselineEntry {
                file: field("file")?,
                rule: field("rule")?,
                snippet: field("snippet")?,
                note: item["note"].as_str().map(str::to_string),
            });
        }
        Ok(Baseline { entries })
    }

    /// Builds a baseline from a lint run: every finding not already
    /// covered by the allowlist becomes an entry (deduplicated).
    pub fn from_violations<'a>(violations: impl Iterator<Item = &'a Violation>) -> Baseline {
        let mut entries: Vec<BaselineEntry> = violations
            .map(|v| BaselineEntry {
                file: v.file.clone(),
                rule: v.rule.clone(),
                snippet: v.snippet.trim().to_string(),
                note: None,
            })
            .collect();
        entries.sort_by(|a, b| (&a.file, &a.rule, &a.snippet).cmp(&(&b.file, &b.rule, &b.snippet)));
        entries.dedup();
        Baseline { entries }
    }

    /// Whether this baseline grandfathers the given finding.
    pub fn permits(&self, v: &Violation) -> bool {
        let snippet = v.snippet.trim();
        self.entries
            .iter()
            .any(|e| e.file == v.file && e.rule == v.rule && e.snippet == snippet)
    }

    /// Entries that matched none of the given findings (fixed debt whose
    /// entry should now be deleted).
    pub fn stale<'a>(&'a self, violations: &[Violation]) -> Vec<&'a BaselineEntry> {
        self.entries
            .iter()
            .filter(|e| {
                !violations
                    .iter()
                    .any(|v| v.file == e.file && v.rule == e.rule && v.snippet.trim() == e.snippet)
            })
            .collect()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the baseline is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Carries the hand-written notes of `old` over to matching entries,
    /// so `--write-baseline` does not erase them.
    pub fn adopt_notes(&mut self, old: &Baseline) {
        for e in &mut self.entries {
            if e.note.is_some() {
                continue;
            }
            e.note = old
                .entries
                .iter()
                .find(|o| o.file == e.file && o.rule == e.rule && o.snippet == e.snippet)
                .and_then(|o| o.note.clone());
        }
    }

    /// Renders the committed JSON form.
    pub fn to_json(&self) -> Value {
        json!({
            "version": 1,
            "entries": self
                .entries
                .iter()
                .map(|e| match &e.note {
                    Some(n) => json!({
                        "file": e.file, "rule": e.rule, "snippet": e.snippet, "note": n
                    }),
                    None => json!({"file": e.file, "rule": e.rule, "snippet": e.snippet}),
                })
                .collect::<Vec<_>>(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violation(file: &str, rule: &str, snippet: &str) -> Violation {
        Violation {
            file: file.into(),
            line: 1,
            rule: rule.into(),
            message: "m".into(),
            snippet: snippet.into(),
            allowed: false,
            baselined: false,
        }
    }

    #[test]
    fn round_trip_and_matching() {
        let v1 = violation("a.rs", "hot-path-panic", "x.unwrap()");
        let v2 = violation("a.rs", "lossy-cast", "y as u32");
        let b = Baseline::from_violations([&v1, &v2].into_iter());
        let text = serde_json::to_string(b.to_json()).expect("render");
        let b2 = Baseline::from_json(&text).expect("parse");
        assert_eq!(b2.len(), 2);
        assert!(b2.permits(&v1));
        assert!(b2.permits(&v2));
        // Same snippet, different rule or file: no match.
        assert!(!b2.permits(&violation("a.rs", "hot-path-print", "x.unwrap()")));
        assert!(!b2.permits(&violation("b.rs", "hot-path-panic", "x.unwrap()")));
    }

    #[test]
    fn line_moves_do_not_invalidate_entries() {
        let b = Baseline::from_violations([&violation("a.rs", "r", "  x.unwrap()  ")].into_iter());
        let mut moved = violation("a.rs", "r", "x.unwrap()");
        moved.line = 999;
        assert!(b.permits(&moved));
    }

    #[test]
    fn stale_entries_are_reported() {
        let fixed = violation("a.rs", "r", "gone()");
        let live = violation("a.rs", "r", "still()");
        let b = Baseline::from_violations([&fixed, &live].into_iter());
        let stale = b.stale(std::slice::from_ref(&live));
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].snippet, "gone()");
    }

    #[test]
    fn notes_round_trip_and_survive_rewrites() {
        let b = Baseline::from_json(
            r#"{"version": 1, "entries": [
                {"file": "a.rs", "rule": "nondet-iter", "snippet": "m.keys()",
                 "note": "orphan count is order-insensitive"},
                {"file": "a.rs", "rule": "nondet-iter", "snippet": "m.values()"}]}"#,
        )
        .expect("valid baseline");
        let text = serde_json::to_string(b.to_json()).expect("render");
        assert!(text.contains("order-insensitive"));
        let b2 = Baseline::from_json(&text).expect("reparse");

        // A regenerated baseline (no notes) adopts the old notes for
        // entries that survived.
        let mut fresh = Baseline::from_violations(
            [
                &violation("a.rs", "nondet-iter", "m.keys()"),
                &violation("a.rs", "nondet-iter", "m.values()"),
            ]
            .into_iter(),
        );
        fresh.adopt_notes(&b2);
        let rendered = serde_json::to_string(fresh.to_json()).expect("render");
        assert!(rendered.contains("order-insensitive"));
        // The note-less entry stays note-less.
        assert_eq!(rendered.matches("note").count(), 1);
    }

    #[test]
    fn malformed_baseline_is_an_error() {
        assert!(Baseline::from_json("[]").is_err());
        assert!(Baseline::from_json("{\"entries\": [{\"file\": \"x\"}]}").is_err());
        assert!(Baseline::from_json("not json").is_err());
    }
}
