//! Field-level effect analysis and the shard-safety classifier behind
//! `cargo run -p mempod-audit -- effects`.
//!
//! ROADMAP item 1 wants a sharded `Simulator::run` whose results are
//! bit-identical to the sequential path. That refactor needs to know, for
//! every field of the simulation state, *who writes it and when*:
//!
//! 1. **Field model** — every brace-bodied struct in the workspace model
//!    contributes `(type, field, declared type text)` triples, read back
//!    out of the token stream (the parser records struct body spans).
//! 2. **Direct effects** — for every non-test `fn`, the `self.field` /
//!    `local.field` access chains in its body are classified as reads or
//!    writes: assignment operators (`=`, `+=`, `-=`, `*=`, …), `&mut`
//!    borrows, mutating container methods (`insert`, `retain`, `drain`,
//!    …), and calls to workspace methods taking `&mut self` all count as
//!    writes. Receivers are typed from `self` (via the enclosing impl),
//!    `&self`/`&mut self`-style parameters, and `let` bindings with a
//!    visible type or `Type::new(…)` / `Type { … }` initializer.
//! 3. **Transitive summaries** — direct effects are propagated to a
//!    fixpoint over the name-based call graph, so `Simulator::run`'s
//!    summary covers everything the run touches. The propagation
//!    overapproximates (name-based call resolution), which is the right
//!    direction for a safety classifier: no write is missed.
//! 4. **Shard-safety classes** — functions are split into the *tick*
//!    phase (reachable from `Simulator::run`, the public runner entry
//!    points, and the `Channel` enqueue/drain methods, stopping at epoch
//!    barriers) and the *epoch* phase (the [`EPOCH_BARRIER_FNS`] and
//!    everything they call). Each field is then classified:
//!
//!    * `shard-local` — only written on the tick path through a
//!      *replicated* owner (a type instantiated per pod / per channel,
//!      e.g. inside a `Vec<Pod>`), or never written after construction;
//!    * `epoch-barrier-only` — written only by epoch-phase functions, so
//!      a sharded run may mutate it freely between barriers as long as
//!      barriers stay global;
//!    * `cross-shard` — written on the tick path through a singleton
//!      owner, or reachable through a shared handle (`Arc`, `Mutex`,
//!      `Atomic*`, `RefCell`, …): the state a sharding PR must partition,
//!      replicate, or reduce deterministically.
//!
//! The machine-readable `shard_safety.json` report pins this partition;
//! [`regressions`] compares two reports so CI can fail when a field
//! drifts towards `cross-shard`.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

use serde_json::{json, Value};

use crate::callgraph::{FnId, Model};
use crate::lexer::{Token, TokenKind};
use crate::parser::{Item, ItemKind, ParsedFile};

/// Functions that run at epoch boundaries, not on the per-access tick
/// path: the manager epoch hooks (`run_epoch` in MemPod, `run_interval`
/// in HMA), the telemetry epoch driver (`observe`/`finalize`/
/// `snapshot_at`) and the merged engine snapshot it consumes
/// (`engine_view`, built only at barriers), and the boundary-only
/// reporting hooks.
pub const EPOCH_BARRIER_FNS: &[&str] = &[
    "run_epoch",
    "run_interval",
    "observe",
    "finalize",
    "snapshot_at",
    "engine_view",
    "audit_invariants",
    "telemetry_counters",
    // The sharded engine's batch barrier: runs once per global batch
    // window (merging per-shard buffers, emitting execution spans), never
    // inside a shard's tick loop.
    "barrier",
];

/// Crates whose struct fields get shard-safety verdicts: the migration
/// pipeline plus `mempod-faults` — fault plans are read from inside shard
/// loops and recovery paths, so their fields' classes are part of the
/// shard-safety contract even though the crate itself is not pipeline.
pub const REPORT_CRATES: &[&str] = &[
    "mempod-core",
    "mempod-dram",
    "mempod-sim",
    "mempod-tracker",
    "mempod-faults",
];

/// Container methods that mutate their receiver. Workspace methods are
/// resolved through their `&mut self` signatures instead; this list only
/// covers std types the source model cannot see into.
const MUTATING_METHODS: &[&str] = &[
    "insert",
    "remove",
    "clear",
    "retain",
    "drain",
    "entry",
    "get_mut",
    "iter_mut",
    "values_mut",
    "keys_mut",
    "push",
    "pop",
    "push_back",
    "push_front",
    "pop_back",
    "pop_front",
    "extend",
    "append",
    "resize",
    "truncate",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "swap",
    "fill",
    "copy_from_slice",
    "clone_from",
    "take",
    "replace",
    "get_or_insert_with",
    "fetch_add",
    "fetch_sub",
    "store",
];

/// Type-text markers for unordered collections (iteration order is not
/// deterministic across runs/builds).
const UNORDERED_TYPES: &[&str] = &["HashMap", "HashSet"];

/// Type-text markers for shared handles and interior mutability: state
/// reachable through one of these is cross-shard coupling by
/// construction, whoever writes it.
const SHARED_TYPES: &[&str] = &[
    "Arc",
    "Mutex",
    "RwLock",
    "RefCell",
    "Cell",
    "UnsafeCell",
    "AtomicU8",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "AtomicBool",
];

/// Container markers: a struct name appearing inside one of these in a
/// field's type text means the struct is instantiated N times per owner
/// (per pod, per channel, …) — the replication test for `shard-local`.
const CONTAINER_TYPES: &[&str] = &["Vec", "VecDeque", "Box<[", "BTreeMap", "HashMap"];

/// A field key: `(type name, field name)`.
pub type FieldKey = (String, String);

/// One declared struct field.
#[derive(Debug, Clone)]
pub struct FieldInfo {
    /// Field name.
    pub name: String,
    /// Declared type, as source text.
    pub ty: String,
    /// 1-based line of the declaration.
    pub line: u32,
}

impl FieldInfo {
    /// Whether the declared type is an unordered collection.
    pub fn unordered(&self) -> bool {
        UNORDERED_TYPES.iter().any(|m| mentions_word(&self.ty, m))
    }

    /// Whether the declared type is (or wraps) a shared handle.
    pub fn shared(&self) -> bool {
        SHARED_TYPES.iter().any(|m| mentions_word(&self.ty, m))
    }
}

/// One modeled struct with named fields.
#[derive(Debug, Clone)]
pub struct StructInfo {
    /// Type name.
    pub name: String,
    /// Workspace-relative file declaring it.
    pub file: String,
    /// Owning crate.
    pub crate_name: String,
    /// Declared fields, in declaration order.
    pub fields: Vec<FieldInfo>,
    /// 1-based line of the declaration.
    pub line: u32,
}

/// Read/write sets over struct fields.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FnEffects {
    /// Fields read.
    pub reads: BTreeSet<FieldKey>,
    /// Fields written.
    pub writes: BTreeSet<FieldKey>,
}

impl FnEffects {
    fn merge(&mut self, other: &FnEffects) -> bool {
        let before = self.reads.len() + self.writes.len();
        self.reads.extend(other.reads.iter().cloned());
        self.writes.extend(other.writes.iter().cloned());
        self.reads.len() + self.writes.len() != before
    }
}

/// Shard-safety class of one field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ShardClass {
    /// Tick-written through a replicated owner, or never written.
    ShardLocal,
    /// Written only at epoch barriers.
    EpochBarrierOnly,
    /// Tick-written singleton state or a shared handle.
    CrossShard,
}

impl ShardClass {
    /// The stable report string.
    pub fn as_str(self) -> &'static str {
        match self {
            ShardClass::ShardLocal => "shard-local",
            ShardClass::EpochBarrierOnly => "epoch-barrier-only",
            ShardClass::CrossShard => "cross-shard",
        }
    }

    /// Severity rank for regression checks (higher = worse).
    pub fn rank(self) -> u8 {
        match self {
            ShardClass::ShardLocal => 0,
            ShardClass::EpochBarrierOnly => 1,
            ShardClass::CrossShard => 2,
        }
    }

    fn from_str(s: &str) -> Option<ShardClass> {
        match s {
            "shard-local" => Some(ShardClass::ShardLocal),
            "epoch-barrier-only" => Some(ShardClass::EpochBarrierOnly),
            "cross-shard" => Some(ShardClass::CrossShard),
            _ => None,
        }
    }
}

/// One classified field in the report.
#[derive(Debug, Clone)]
pub struct FieldVerdict {
    /// The field.
    pub key: FieldKey,
    /// Declared type text.
    pub ty: String,
    /// The class.
    pub class: ShardClass,
    /// Why (one stable reason string).
    pub reason: String,
    /// Tick-phase functions with a *direct* write to the field.
    pub tick_writers: Vec<String>,
    /// Epoch-phase functions with a direct write to the field.
    pub epoch_writers: Vec<String>,
    /// Whether the declared type is an unordered collection.
    pub unordered: bool,
    /// Whether the declared type wraps a shared handle.
    pub shared: bool,
}

/// The full analysis result.
#[derive(Debug)]
pub struct EffectReport {
    /// Every modeled struct (all non-compat crates).
    pub structs: Vec<StructInfo>,
    /// Direct per-function effects.
    pub direct: HashMap<FnId, FnEffects>,
    /// Transitive per-function summaries (fixpoint over the call graph).
    pub summary: HashMap<FnId, FnEffects>,
    /// Tick-phase functions (qualified names, sorted).
    pub tick_fns: Vec<String>,
    /// Epoch-phase functions (qualified names, sorted).
    pub epoch_fns: Vec<String>,
    /// Types judged replicated (per-pod / per-channel instances).
    pub replicated: BTreeSet<String>,
    /// Classified fields of pipeline-crate structs, report order.
    pub verdicts: Vec<FieldVerdict>,
    /// The call-graph roots the tick phase started from.
    pub roots: Vec<String>,
}

/// Runs the effect analysis over a built model.
pub fn analyze(model: &Model) -> EffectReport {
    let structs = collect_structs(model);
    let fields_by_type: HashMap<&str, &StructInfo> = {
        // Name-keyed; a duplicate type name across crates would merge
        // conservatively (first declaration wins for field lookup).
        let mut m = HashMap::new();
        for s in &structs {
            m.entry(s.name.as_str()).or_insert(s);
        }
        m
    };
    let mut_self_fns = collect_mut_self_fns(model);

    // Direct effects per function.
    let mut direct: HashMap<FnId, FnEffects> = HashMap::new();
    for (fi, ii, item) in model.fns() {
        let eff = direct_effects(model, fi, ii, item, &fields_by_type, &mut_self_fns);
        direct.insert((fi, ii), eff);
    }

    // Resolved call edges and the transitive fixpoint.
    let mut by_name: HashMap<String, Vec<FnId>> = HashMap::new();
    for (fi, ii, it) in model.fns() {
        by_name.entry(it.name.clone()).or_default().push((fi, ii));
    }
    let mut edges: HashMap<FnId, Vec<FnId>> = HashMap::new();
    for (fi, ii, _) in model.fns() {
        let mut targets: Vec<FnId> = Vec::new();
        for callee in model.callees(fi, ii) {
            if let Some(ts) = by_name.get(&callee) {
                targets.extend(ts.iter().copied());
            }
        }
        targets.sort_unstable();
        targets.dedup();
        edges.insert((fi, ii), targets);
    }
    let mut summary = direct.clone();
    loop {
        let mut changed = false;
        let ids: Vec<FnId> = summary.keys().copied().collect();
        for id in ids {
            let mut merged = summary[&id].clone();
            for callee in edges.get(&id).into_iter().flatten() {
                if let Some(ce) = summary.get(callee) {
                    let ce = ce.clone();
                    if merged.merge(&ce) {
                        changed = true;
                    }
                }
            }
            summary.insert(id, merged);
        }
        if !changed {
            break;
        }
    }

    // Phase split: tick BFS does not expand through epoch barriers; the
    // epoch BFS starts from them and expands fully.
    let is_epoch_item = |item: &Item| {
        EPOCH_BARRIER_FNS.contains(&item.name.as_str()) || item.qual.starts_with("EpochDriver::")
    };
    let mut tick: HashSet<FnId> = HashSet::new();
    let mut queue: VecDeque<FnId> = VecDeque::new();
    for (fi, ii, it) in model.fns() {
        if model.is_root(&model.files[fi], it) && !is_epoch_item(it) && tick.insert((fi, ii)) {
            queue.push_back((fi, ii));
        }
    }
    while let Some(id) = queue.pop_front() {
        for &callee in edges.get(&id).into_iter().flatten() {
            let item = &model.files[callee.0].parsed.items[callee.1];
            if is_epoch_item(item) {
                continue;
            }
            if tick.insert(callee) {
                queue.push_back(callee);
            }
        }
    }
    let mut epoch: HashSet<FnId> = HashSet::new();
    let mut queue: VecDeque<FnId> = VecDeque::new();
    for (fi, ii, it) in model.fns() {
        if is_epoch_item(it) && epoch.insert((fi, ii)) {
            queue.push_back((fi, ii));
        }
    }
    while let Some(id) = queue.pop_front() {
        for &callee in edges.get(&id).into_iter().flatten() {
            // A helper also used on the tick path stays tick-phase (the
            // stricter classification).
            if tick.contains(&callee) {
                continue;
            }
            if epoch.insert(callee) {
                queue.push_back(callee);
            }
        }
    }

    let enums = collect_enums(model);
    let replicated = compute_replicated(&structs, &enums);

    // Writer attribution: direct writes of tick/epoch-phase functions.
    let mut tick_writers: BTreeMap<FieldKey, BTreeSet<String>> = BTreeMap::new();
    let mut epoch_writers: BTreeMap<FieldKey, BTreeSet<String>> = BTreeMap::new();
    for (&id, eff) in &direct {
        let qual = model.files[id.0].parsed.items[id.1].qual.clone();
        for key in &eff.writes {
            if tick.contains(&id) {
                tick_writers
                    .entry(key.clone())
                    .or_default()
                    .insert(qual.clone());
            } else if epoch.contains(&id) {
                epoch_writers
                    .entry(key.clone())
                    .or_default()
                    .insert(qual.clone());
            }
        }
    }

    // Verdicts over report-crate structs, (file, type) order.
    let mut verdicts = Vec::new();
    let mut report_structs: Vec<&StructInfo> = structs
        .iter()
        .filter(|s| REPORT_CRATES.contains(&s.crate_name.as_str()))
        .collect();
    report_structs.sort_by(|a, b| (&a.file, &a.name).cmp(&(&b.file, &b.name)));
    for s in report_structs {
        for f in &s.fields {
            let key = (s.name.clone(), f.name.clone());
            let tw: Vec<String> = tick_writers
                .get(&key)
                .into_iter()
                .flatten()
                .cloned()
                .collect();
            let ew: Vec<String> = epoch_writers
                .get(&key)
                .into_iter()
                .flatten()
                .cloned()
                .collect();
            let shared = f.shared();
            let (class, reason) = if shared {
                (
                    ShardClass::CrossShard,
                    "shared-handle: reachable from other threads regardless of writer".to_string(),
                )
            } else if !tw.is_empty() {
                if replicated.contains(&s.name) {
                    (
                        ShardClass::ShardLocal,
                        "tick-written through a replicated (per-pod/per-channel) owner".to_string(),
                    )
                } else {
                    (
                        ShardClass::CrossShard,
                        "tick-written singleton state; must be partitioned or reduced".to_string(),
                    )
                }
            } else if !ew.is_empty() {
                (
                    ShardClass::EpochBarrierOnly,
                    "written only by epoch-barrier functions".to_string(),
                )
            } else {
                (
                    ShardClass::ShardLocal,
                    "no writes observed after construction".to_string(),
                )
            };
            verdicts.push(FieldVerdict {
                key,
                ty: f.ty.clone(),
                class,
                reason,
                tick_writers: tw,
                epoch_writers: ew,
                unordered: f.unordered(),
                shared,
            });
        }
    }

    let name_of = |id: &FnId| model.files[id.0].parsed.items[id.1].qual.clone();
    let mut tick_fns: Vec<String> = tick.iter().map(name_of).collect();
    tick_fns.sort();
    tick_fns.dedup();
    let mut epoch_fns: Vec<String> = epoch.iter().map(name_of).collect();
    epoch_fns.sort();
    epoch_fns.dedup();

    EffectReport {
        structs,
        direct,
        summary,
        tick_fns,
        epoch_fns,
        replicated,
        verdicts,
        roots: model.roots.clone(),
    }
}

impl EffectReport {
    /// `(type, field) → class` over the report's verdicts.
    pub fn classes(&self) -> BTreeMap<FieldKey, ShardClass> {
        self.verdicts
            .iter()
            .map(|v| (v.key.clone(), v.class))
            .collect()
    }

    /// Renders `shard_safety.json`.
    pub fn to_json(&self) -> Value {
        let mut types: Vec<Value> = Vec::new();
        let mut by_type: BTreeMap<&str, Vec<&FieldVerdict>> = BTreeMap::new();
        for v in &self.verdicts {
            by_type.entry(v.key.0.as_str()).or_default().push(v);
        }
        let mut ordered: Vec<&StructInfo> = self
            .structs
            .iter()
            .filter(|s| by_type.contains_key(s.name.as_str()))
            .collect();
        ordered.sort_by(|a, b| (&a.file, &a.name).cmp(&(&b.file, &b.name)));
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        for s in ordered {
            if !seen.insert(s.name.as_str()) {
                continue;
            }
            let fields: Vec<Value> = by_type[s.name.as_str()]
                .iter()
                .map(|v| {
                    json!({
                        "name": v.key.1.clone(),
                        "type": v.ty.clone(),
                        "class": v.class.as_str(),
                        "reason": v.reason.clone(),
                        "unordered": v.unordered,
                        "shared": v.shared,
                        "tick_writers": v.tick_writers.clone(),
                        "epoch_writers": v.epoch_writers.clone(),
                    })
                })
                .collect();
            types.push(json!({
                "name": s.name.clone(),
                "file": s.file.clone(),
                "crate": s.crate_name.clone(),
                "replicated": self.replicated.contains(&s.name),
                "fields": Value::Array(fields),
            }));
        }
        let count = |c: ShardClass| self.verdicts.iter().filter(|v| v.class == c).count();
        json!({
            "tool": "mempod-audit",
            "check": "effects",
            "version": 1,
            "tick_roots": self.roots.clone(),
            "epoch_barriers": EPOCH_BARRIER_FNS,
            "summary": {
                "fields": self.verdicts.len(),
                "shard_local": count(ShardClass::ShardLocal),
                "epoch_barrier_only": count(ShardClass::EpochBarrierOnly),
                "cross_shard": count(ShardClass::CrossShard),
            },
            "types": Value::Array(types),
        })
    }
}

/// Fields whose class regressed (rank increased) from `old` to `new`,
/// as human-readable strings. Fields new to the report are not
/// regressions; fields that left it are ignored.
pub fn regressions(old: &Value, new: &Value) -> Vec<String> {
    let classes = |report: &Value| -> BTreeMap<FieldKey, ShardClass> {
        let mut m = BTreeMap::new();
        for ty in report["types"].as_array().into_iter().flatten() {
            let Some(tname) = ty["name"].as_str() else {
                continue;
            };
            for f in ty["fields"].as_array().into_iter().flatten() {
                let (Some(fname), Some(class)) = (f["name"].as_str(), f["class"].as_str()) else {
                    continue;
                };
                if let Some(c) = ShardClass::from_str(class) {
                    m.insert((tname.to_string(), fname.to_string()), c);
                }
            }
        }
        m
    };
    let old = classes(old);
    let new = classes(new);
    let mut out = Vec::new();
    for (key, nc) in &new {
        if let Some(oc) = old.get(key) {
            if nc.rank() > oc.rank() {
                out.push(format!(
                    "{}::{} regressed {} -> {}",
                    key.0,
                    key.1,
                    oc.as_str(),
                    nc.as_str()
                ));
            }
        }
    }
    out
}

/// Whether `text` contains `word` delimited by non-identifier characters.
fn mentions_word(text: &str, word: &str) -> bool {
    // `Box<[` is a pattern, not a word; match it literally.
    if word.chars().any(|c| !c.is_alphanumeric() && c != '_') {
        return text.contains(word);
    }
    let bytes = text.as_bytes();
    let mut from = 0;
    while let Some(pos) = text[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let left_ok = start == 0 || !is_ident_char(bytes[start - 1]);
        let right_ok = end >= bytes.len() || !is_ident_char(bytes[end]);
        if left_ok && right_ok {
            return true;
        }
        from = end;
    }
    false
}

fn is_ident_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Reads the field declarations out of every brace-bodied, non-test
/// struct in the model.
fn collect_structs(model: &Model) -> Vec<StructInfo> {
    let mut out = Vec::new();
    for file in &model.files {
        for item in &file.parsed.items {
            if item.kind != ItemKind::Struct || item.cfg_test {
                continue;
            }
            let Some((from, to)) = item.body_tokens else {
                continue;
            };
            let fields = parse_fields(&file.parsed, from, to);
            if fields.is_empty() {
                continue;
            }
            out.push(StructInfo {
                name: item.name.clone(),
                file: file.rel.clone(),
                crate_name: file.crate_name.clone(),
                fields,
                line: item.line,
            });
        }
    }
    out
}

/// Reads every non-test enum as a pseudo-struct whose single synthetic
/// "field" type is the whole variant body. That is all the replication
/// fixpoint needs: an enum wrapping `MeaTracker` in a variant payload
/// (e.g. `PodTracker::Mea(MeaTracker)`) carries replication through to
/// the payload type, exactly like a struct field would.
fn collect_enums(model: &Model) -> Vec<StructInfo> {
    let mut out = Vec::new();
    for file in &model.files {
        for item in &file.parsed.items {
            if item.kind != ItemKind::Enum || item.cfg_test {
                continue;
            }
            let Some((from, to)) = item.body else {
                continue;
            };
            let ty = file.parsed.src[from..to].trim().to_string();
            if ty.is_empty() {
                continue;
            }
            out.push(StructInfo {
                name: item.name.clone(),
                file: file.rel.clone(),
                crate_name: file.crate_name.clone(),
                fields: vec![FieldInfo {
                    name: "<variants>".to_string(),
                    ty,
                    line: item.line,
                }],
                line: item.line,
            });
        }
    }
    out
}

/// Parses `name: Type,` declarations from a struct body token range.
pub(crate) fn parse_fields(pf: &ParsedFile, from: usize, to: usize) -> Vec<FieldInfo> {
    let src = &pf.src;
    let toks = &pf.tokens;
    let mut fields = Vec::new();
    let mut i = from;
    while i < to.min(toks.len()) {
        let t = &toks[i];
        if matches!(t.kind, TokenKind::DocOuter | TokenKind::DocInner) {
            i += 1;
            continue;
        }
        if t.is_punct(src, "#") {
            i += 1;
            if toks.get(i).is_some_and(|t| t.is_punct(src, "[")) {
                i = matching(src, toks, i, "[", "]") + 1;
            }
            continue;
        }
        if t.is_ident(src, "pub") {
            i += 1;
            if toks.get(i).is_some_and(|t| t.is_punct(src, "(")) {
                i = matching(src, toks, i, "(", ")") + 1;
            }
            continue;
        }
        if t.kind == TokenKind::Ident && toks.get(i + 1).is_some_and(|n| n.is_punct(src, ":")) {
            let name = t.text(src).to_string();
            let line = t.line;
            // The type runs to the next comma at bracket depth zero.
            let ty_from = i + 2;
            let mut depth = 0i32;
            let mut j = ty_from;
            while j < to.min(toks.len()) {
                let tj = &toks[j];
                let txt = tj.text(src);
                match txt {
                    "<" | "(" | "[" => depth += 1,
                    "<<" => depth += 2,
                    ">" | ")" | "]" => depth -= 1,
                    "," if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            let ty = if j > ty_from && ty_from < toks.len() {
                let a = toks[ty_from].start;
                let b = toks[(j - 1).min(toks.len() - 1)].end;
                src[a..b].trim().to_string()
            } else {
                String::new()
            };
            fields.push(FieldInfo { name, ty, line });
            i = j + 1;
            continue;
        }
        i += 1;
    }
    fields
}

/// Names of workspace functions whose signature takes `&mut self`.
fn collect_mut_self_fns(model: &Model) -> HashSet<String> {
    let mut out = HashSet::new();
    for (fi, ii, item) in model.fns() {
        let pf = &model.files[fi].parsed;
        let (from, to) = signature_tokens(pf, ii, item);
        let toks = &pf.tokens;
        let src = &pf.src;
        for i in from..to.min(toks.len()) {
            // `&mut self` receivers, and by-value `mut self` receivers
            // (`fn run(mut self, …)`) — both mutate the receiver.
            if toks[i].is_ident(src, "self") && i > from && toks[i - 1].is_ident(src, "mut") {
                let before = (i > from + 1).then(|| toks[i - 2].text(src));
                if matches!(before, Some("&") | Some("(") | Some(",")) {
                    out.insert(item.name.clone());
                    break;
                }
            }
        }
    }
    out
}

/// Token range of a function's signature: from its head to its body
/// opener (or span end for bodyless trait methods).
fn signature_tokens(pf: &ParsedFile, _ii: usize, item: &Item) -> (usize, usize) {
    let toks = &pf.tokens;
    let from = toks.partition_point(|t| t.start < item.span.0);
    let to = match item.body_tokens {
        Some((body_from, _)) => body_from.saturating_sub(1),
        None => toks.partition_point(|t| t.start < item.span.1),
    };
    (from, to)
}

/// Index of the token closing the group opened at `open`.
fn matching(src: &str, toks: &[Token], open: usize, op: &str, cl: &str) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < toks.len() {
        if toks[j].is_punct(src, op) {
            depth += 1;
        } else if toks[j].is_punct(src, cl) {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    toks.len().saturating_sub(1)
}

/// Direct field effects of one function body.
fn direct_effects(
    model: &Model,
    fi: usize,
    _ii: usize,
    item: &Item,
    fields_by_type: &HashMap<&str, &StructInfo>,
    mut_self_fns: &HashSet<String>,
) -> FnEffects {
    let mut eff = FnEffects::default();
    let pf = &model.files[fi].parsed;
    let Some((from, to)) = item.body_tokens else {
        return eff;
    };
    let src = &pf.src;
    let toks = &pf.tokens;

    // Receiver table: name → struct type.
    let mut receivers: HashMap<String, String> = HashMap::new();
    if let Some(ty) = item.qual.strip_suffix(&format!("::{}", item.name)) {
        if fields_by_type.contains_key(ty) {
            receivers.insert("self".to_string(), ty.to_string());
        }
    }
    let (sig_from, sig_to) = signature_tokens(pf, 0, item);
    collect_typed_bindings(src, toks, sig_from, sig_to, fields_by_type, &mut receivers);
    collect_typed_bindings(src, toks, from, to, fields_by_type, &mut receivers);

    let mut i = from;
    while i < to.min(toks.len()) {
        let t = &toks[i];
        if t.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        let name = t.text(src);
        let Some(ty) = receivers.get(name) else {
            i += 1;
            continue;
        };
        // Must be a receiver use: `name . …`, not itself a field of
        // something else (`other.name`) or a path segment (`name::`).
        if i > from && (toks[i - 1].is_punct(src, ".") || toks[i - 1].is_punct(src, "::")) {
            i += 1;
            continue;
        }
        if !toks.get(i + 1).is_some_and(|n| n.is_punct(src, ".")) {
            i += 1;
            continue;
        }
        let borrowed_mut =
            i >= from + 2 && toks[i - 1].is_ident(src, "mut") && toks[i - 2].is_punct(src, "&");
        let (key, write, consumed) = walk_chain(src, toks, i, to, ty, fields_by_type, mut_self_fns);
        if let Some(key) = key {
            if write || borrowed_mut {
                eff.writes.insert(key);
            } else {
                eff.reads.insert(key);
            }
        }
        i = consumed.max(i + 1);
    }
    eff
}

/// Walks one `recv.a.b…` chain starting at the receiver token. Returns
/// the first resolved `(type, field)` key, whether the chain's terminal
/// operation writes, and the index to resume scanning at.
fn walk_chain(
    src: &str,
    toks: &[Token],
    recv: usize,
    to: usize,
    recv_ty: &str,
    fields_by_type: &HashMap<&str, &StructInfo>,
    mut_self_fns: &HashSet<String>,
) -> (Option<FieldKey>, bool, usize) {
    let mut key: Option<FieldKey> = None;
    let mut j = recv; // index of the last consumed chain token
    loop {
        // Expect `.` then a segment.
        if !(toks.get(j + 1).is_some_and(|t| t.is_punct(src, ".")) && j + 2 < to.min(toks.len())) {
            return (key, false, j + 1);
        }
        let seg = &toks[j + 2];
        if seg.kind != TokenKind::Ident {
            // Tuple index (`self.0`) or similar: treat as an untyped read.
            return (key, false, j + 3);
        }
        let seg_text = seg.text(src);
        if toks.get(j + 3).is_some_and(|t| t.is_punct(src, "(")) {
            // Terminal method call.
            let write = MUTATING_METHODS.contains(&seg_text) || mut_self_fns.contains(seg_text);
            if key.is_none() {
                // A method call directly on the receiver (`self.step()`):
                // when the method mutates, the receiver binding itself is
                // written, but there is no field to attribute — the call
                // graph carries the callee's own effects instead.
                return (None, false, j + 3);
            }
            return (key, write, j + 3);
        }
        // Field segment.
        if key.is_none() {
            let known = fields_by_type
                .get(recv_ty)
                .is_some_and(|s| s.fields.iter().any(|f| f.name == seg_text));
            if !known {
                return (None, false, j + 3);
            }
            key = Some((recv_ty.to_string(), seg_text.to_string()));
        }
        j += 2;
        // Skip indexing suffixes: `…[idx]` (possibly chained).
        while toks.get(j + 1).is_some_and(|t| t.is_punct(src, "[")) {
            j = matching(src, toks, j + 1, "[", "]");
        }
        let Some(next) = toks.get(j + 1) else {
            return (key, false, j + 1);
        };
        let nt = next.text(src);
        match nt {
            "." => continue,
            "=" => return (key, true, j + 2),
            "+=" | "-=" => return (key, true, j + 2),
            "*" | "/" | "%" | "&" | "|" | "^" | "<<" => {
                // Compound assignment split across tokens (`*=`, `<<=`, …).
                if toks.get(j + 2).is_some_and(|t| t.is_punct(src, "=")) {
                    return (key, true, j + 3);
                }
                return (key, false, j + 2);
            }
            _ => return (key, false, j + 1),
        }
    }
}

/// Records `name → type` bindings visible in a token range: parameters
/// (`name: &mut Type`) and lets (`let [mut] name: Type` /
/// `let [mut] name = Type::new(…)` / `let [mut] name = Type { … }`).
fn collect_typed_bindings(
    src: &str,
    toks: &[Token],
    from: usize,
    to: usize,
    fields_by_type: &HashMap<&str, &StructInfo>,
    out: &mut HashMap<String, String>,
) {
    let to = to.min(toks.len());
    let mut i = from;
    while i < to {
        let t = &toks[i];
        // `let [mut] name = <path> …`
        if t.is_ident(src, "let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident(src, "mut")) {
                j += 1;
            }
            if let Some(name_tok) = toks.get(j).filter(|t| t.kind == TokenKind::Ident) {
                let name = name_tok.text(src).to_string();
                if toks.get(j + 1).is_some_and(|t| t.is_punct(src, ":")) {
                    if let Some(ty) = type_path_at(src, toks, j + 2, to, fields_by_type) {
                        out.insert(name, ty);
                    }
                } else if toks.get(j + 1).is_some_and(|t| t.is_punct(src, "=")) {
                    if let Some(ty) = init_type_at(src, toks, j + 2, to, fields_by_type) {
                        out.insert(name, ty);
                    }
                }
            }
            i += 1;
            continue;
        }
        // Parameter-style `name: [&] [mut] Type` (also matches generic
        // bounds like `T: Clone`, which resolve to no known struct).
        if t.kind == TokenKind::Ident
            && toks.get(i + 1).is_some_and(|n| n.is_punct(src, ":"))
            && !(i > 0 && toks[i - 1].is_punct(src, "."))
        {
            if let Some(ty) = type_path_at(src, toks, i + 2, to, fields_by_type) {
                out.insert(t.text(src).to_string(), ty);
            }
        }
        i += 1;
    }
}

/// Resolves the struct named by a type position: skips `&`, lifetimes and
/// `mut`, then reads a path and returns its last segment when it names a
/// known struct.
fn type_path_at(
    src: &str,
    toks: &[Token],
    mut i: usize,
    to: usize,
    fields_by_type: &HashMap<&str, &StructInfo>,
) -> Option<String> {
    while i < to {
        let t = toks.get(i)?;
        if t.is_punct(src, "&") || t.kind == TokenKind::Lifetime || t.is_ident(src, "mut") {
            i += 1;
            continue;
        }
        break;
    }
    let mut last: Option<String> = None;
    while i < to {
        let t = toks.get(i)?;
        if t.kind == TokenKind::Ident {
            last = Some(t.text(src).to_string());
            i += 1;
            if toks.get(i).is_some_and(|t| t.is_punct(src, "::")) {
                i += 1;
                continue;
            }
        }
        break;
    }
    last.filter(|ty| fields_by_type.contains_key(ty.as_str()))
}

/// Resolves the struct type produced by an initializer expression:
/// `Type { … }`, `Type::new(…)` (any associated fn), or a plain path.
fn init_type_at(
    src: &str,
    toks: &[Token],
    i: usize,
    to: usize,
    fields_by_type: &HashMap<&str, &StructInfo>,
) -> Option<String> {
    // Collect leading path segments.
    let mut segs: Vec<String> = Vec::new();
    let mut j = i;
    while j < to {
        let t = toks.get(j)?;
        if t.kind != TokenKind::Ident {
            break;
        }
        segs.push(t.text(src).to_string());
        j += 1;
        if toks.get(j).is_some_and(|t| t.is_punct(src, "::")) {
            j += 1;
            continue;
        }
        break;
    }
    let next = toks.get(j);
    let candidate = match next {
        Some(t) if t.is_punct(src, "{") => segs.last().cloned(),
        Some(t) if t.is_punct(src, "(") && segs.len() >= 2 => segs.get(segs.len() - 2).cloned(),
        _ => None,
    };
    candidate.filter(|ty| fields_by_type.contains_key(ty.as_str()))
}

/// Fixpoint of the replication relation: a type inside a container field
/// is replicated; every struct-typed field of a replicated type is too.
fn compute_replicated(structs: &[StructInfo], enums: &[StructInfo]) -> BTreeSet<String> {
    let names: BTreeSet<&str> = structs
        .iter()
        .chain(enums)
        .map(|s| s.name.as_str())
        .collect();
    let all = || structs.iter().chain(enums);
    let mut replicated: BTreeSet<String> = BTreeSet::new();
    for s in all() {
        for f in &s.fields {
            if CONTAINER_TYPES.iter().any(|c| mentions_word(&f.ty, c)) {
                for &n in &names {
                    if mentions_word(&f.ty, n) {
                        replicated.insert(n.to_string());
                    }
                }
            }
        }
    }
    loop {
        let mut changed = false;
        for s in all() {
            if !replicated.contains(&s.name) {
                continue;
            }
            for f in &s.fields {
                for &n in &names {
                    if mentions_word(&f.ty, n) && replicated.insert(n.to_string()) {
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    replicated
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    /// Builds a miniature workspace on disk and returns its root.
    fn mini_workspace(tag: &str, files: &[(&str, &str)]) -> PathBuf {
        let root =
            std::env::temp_dir().join(format!("mempod-effects-{tag}-{}", std::process::id()));
        if root.exists() {
            std::fs::remove_dir_all(&root).expect("stale fixture removed");
        }
        for (rel, content) in files {
            let p = root.join(rel);
            std::fs::create_dir_all(p.parent().expect("parent")).expect("mkdir");
            std::fs::write(p, content).expect("write");
        }
        root
    }

    fn sim_crate(lib_extra: &str, simulator: &str) -> Vec<(String, String)> {
        vec![
            (
                "crates/sim/Cargo.toml".to_string(),
                "[package]\nname = \"mempod-sim\"\n".to_string(),
            ),
            (
                "crates/sim/src/lib.rs".to_string(),
                format!("pub mod simulator;\n{lib_extra}"),
            ),
            (
                "crates/sim/src/simulator.rs".to_string(),
                simulator.to_string(),
            ),
        ]
    }

    fn analyze_src(simulator: &str, tag: &str) -> EffectReport {
        let files: Vec<(String, String)> = sim_crate("", simulator);
        let files: Vec<(&str, &str)> = files
            .iter()
            .map(|(a, b)| (a.as_str(), b.as_str()))
            .collect();
        let root = mini_workspace(tag, &files);
        let model = Model::build(&root).expect("model");
        let report = analyze(&model);
        std::fs::remove_dir_all(&root).ok();
        report
    }

    #[test]
    fn direct_reads_and_writes_are_attributed() {
        let src = "pub struct Simulator { counter: u64, log: Vec<u64>, name: String }\n\
             impl Simulator {\n\
               pub fn run(&mut self) { self.counter += 1; self.log.push(self.counter); let n = self.name.len(); let _ = n; }\n\
             }\n";
        let report = analyze_src(src, "direct");
        let eff = report
            .direct
            .values()
            .find(|e| !e.reads.is_empty() || !e.writes.is_empty())
            .expect("run has effects");
        let k = |f: &str| ("Simulator".to_string(), f.to_string());
        assert!(eff.writes.contains(&k("counter")), "{eff:?}");
        assert!(eff.writes.contains(&k("log")), "push mutates: {eff:?}");
        assert!(eff.reads.contains(&k("name")), "{eff:?}");
        // `self.counter` read inside push(...) arguments is also a read.
        assert!(eff.reads.contains(&k("counter")), "{eff:?}");
    }

    #[test]
    fn local_bindings_and_mut_self_callees_count_as_writes() {
        let src = "pub struct Engine { stall: u64, tag: u64 }\n\
             impl Engine {\n\
               pub fn bump(&mut self) { self.stall += 1; }\n\
               pub fn peek(&self) -> u64 { self.tag }\n\
             }\n\
             pub struct Simulator { dummy: u64 }\n\
             impl Simulator {\n\
               pub fn run(&mut self) {\n\
                 let mut eng = Engine { stall: 0, tag: 0 };\n\
                 eng.bump();\n\
                 let _ = eng.tag;\n\
                 eng.stall = 9;\n\
               }\n\
             }\n";
        let report = analyze_src(src, "locals");
        // `bump` also writes stall (via `self`), so pick `run` by its
        // unique pairing: reads eng.tag *and* writes eng.stall.
        let k = |f: &str| ("Engine".to_string(), f.to_string());
        let run = report
            .direct
            .values()
            .find(|e| e.writes.contains(&k("stall")) && e.reads.contains(&k("tag")))
            .expect("run writes eng.stall and reads eng.tag through the local binding");
        assert!(run.writes.contains(&k("stall")));
        // Transitive: run calls bump, so the summary must contain bump's
        // write even without the direct `eng.stall = 9` line.
        let sums: Vec<&FnEffects> = report.summary.values().collect();
        assert!(
            sums.iter().any(|e| e
                .writes
                .contains(&("Engine".to_string(), "stall".to_string()))),
            "summary propagation"
        );
    }

    #[test]
    fn classifier_splits_tick_epoch_and_replicated() {
        let src = "pub struct Channel { queue: Vec<u64>, served: u64 }\n\
             impl Channel {\n\
               pub fn enqueue(&mut self) { self.queue.push(1); self.served += 1; }\n\
             }\n\
             pub struct Mem { channels: Vec<Channel> }\n\
             pub struct Simulator { mem: Mem, stall: u64, epoch_count: u64, frozen: u64 }\n\
             impl Simulator {\n\
               pub fn run(&mut self) { self.stall += 1; self.observe(); }\n\
               fn observe(&mut self) { self.epoch_count += 1; }\n\
             }\n";
        let report = analyze_src(src, "classify");
        let classes = report.classes();
        let get = |t: &str, f: &str| classes[&(t.to_string(), f.to_string())];
        assert_eq!(get("Simulator", "stall"), ShardClass::CrossShard);
        assert_eq!(
            get("Simulator", "epoch_count"),
            ShardClass::EpochBarrierOnly
        );
        assert_eq!(get("Simulator", "frozen"), ShardClass::ShardLocal);
        // Channel sits inside Vec<Channel>: replicated, so its tick
        // writes stay shard-local.
        assert!(
            report.replicated.contains("Channel"),
            "{:?}",
            report.replicated
        );
        assert_eq!(get("Channel", "queue"), ShardClass::ShardLocal);
        assert_eq!(get("Channel", "served"), ShardClass::ShardLocal);
    }

    #[test]
    fn replication_flows_through_enum_variant_payloads() {
        // Tracker sits behind an enum (like PodTracker wrapping
        // MeaTracker), which sits in a replicated Pod: the fixpoint must
        // carry replication through the variant payload.
        let src = "pub struct Tracker { hits: u64 }\n\
             impl Tracker {\n\
               pub fn record(&mut self) { self.hits += 1; }\n\
             }\n\
             pub enum PodTracker { Real(Tracker), Off }\n\
             pub struct Pod { tracker: PodTracker }\n\
             pub struct Simulator { pods: Vec<Pod>, t: Tracker }\n\
             impl Simulator {\n\
               pub fn run(&mut self) { self.t.record(); }\n\
             }\n";
        let report = analyze_src(src, "enumrep");
        assert!(report.replicated.contains("Pod"), "{:?}", report.replicated);
        assert!(
            report.replicated.contains("Tracker"),
            "enum payload must inherit replication: {:?}",
            report.replicated
        );
        let classes = report.classes();
        assert_eq!(
            classes[&("Tracker".to_string(), "hits".to_string())],
            ShardClass::ShardLocal
        );
    }

    #[test]
    fn shared_handles_are_cross_shard_regardless_of_writers() {
        let src = "pub struct Simulator { progress: Option<Arc<AtomicU64>>, quiet: u64 }\n\
             impl Simulator {\n\
               pub fn run(&self) { let _ = self.progress.is_some(); }\n\
             }\n";
        let report = analyze_src(src, "shared");
        let classes = report.classes();
        assert_eq!(
            classes[&("Simulator".to_string(), "progress".to_string())],
            ShardClass::CrossShard
        );
        assert_eq!(
            classes[&("Simulator".to_string(), "quiet".to_string())],
            ShardClass::ShardLocal
        );
    }

    #[test]
    fn compound_assignment_and_indexing_are_writes() {
        let src = "pub struct Simulator { bits: u64, per_pod: Vec<u64> }\n\
             impl Simulator {\n\
               pub fn run(&mut self) { self.bits <<= 1; self.per_pod[3] += 2; }\n\
             }\n";
        let report = analyze_src(src, "compound");
        let eff = report
            .direct
            .values()
            .find(|e| !e.writes.is_empty())
            .expect("writes found");
        assert!(
            eff.writes
                .contains(&("Simulator".to_string(), "bits".to_string())),
            "{eff:?}"
        );
        assert!(
            eff.writes
                .contains(&("Simulator".to_string(), "per_pod".to_string())),
            "{eff:?}"
        );
    }

    #[test]
    fn report_json_shape_and_regression_detection() {
        let src = "pub struct Simulator { a: u64, b: u64 }\n\
             impl Simulator {\n\
               pub fn run(&mut self) { self.a += 1; }\n\
             }\n";
        let report = analyze_src(src, "json");
        let j = report.to_json();
        assert_eq!(j["check"].as_str(), Some("effects"));
        assert_eq!(j["types"][0]["name"].as_str(), Some("Simulator"));
        let fields = j["types"][0]["fields"].as_array().expect("fields");
        assert_eq!(fields.len(), 2);
        assert!(regressions(&j, &j).is_empty(), "self-compare is clean");

        // Flip `b` (shard-local) to cross-shard in a doctored new report.
        let mut doctored = j.clone();
        let txt = serde_json::to_string(doctored.clone()).expect("render");
        let txt = txt.replacen("shard-local", "cross-shard", 1);
        doctored = serde_json::from_str(&txt).expect("parse");
        let regs = regressions(&j, &doctored);
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert!(regs[0].contains("cross-shard"), "{regs:?}");
    }

    #[test]
    fn field_parsing_handles_attrs_docs_and_generics() {
        let pf = ParsedFile::parse(
            "pub struct S {\n\
               /// Doc.\n\
               #[serde(skip)]\n\
               pub owners: HashMap<u64, (u8, u8)>,\n\
               pub(crate) lanes: BTreeMap<i64, VecDeque<usize>>,\n\
               plain: u64,\n\
             }\n",
        );
        let item = pf
            .items
            .iter()
            .find(|i| i.kind == ItemKind::Struct)
            .expect("struct");
        let (from, to) = item.body_tokens.expect("body");
        let fields = parse_fields(&pf, from, to);
        let names: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["owners", "lanes", "plain"]);
        assert!(fields[0].unordered());
        assert!(!fields[1].unordered());
        assert_eq!(fields[2].ty, "u64");
    }
}
