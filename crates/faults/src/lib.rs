//! Deterministic, seed-driven fault-injection plans.
//!
//! Every fault decision here is a pure function of the plan seed and the
//! simulated coordinates of the event being perturbed — frames and
//! admission time for migrations, channel index and time window for DRAM
//! faults. Nothing reads wall clock or mutable state, so a plan produces
//! identical faults on every replay and at every shard count: the sharded
//! event loop asks the same questions at the same simulated points
//! regardless of how the work is partitioned.
//!
//! The split of responsibilities with the engine is deliberate: **the plan
//! decides outcomes, the engine discovers causes and timing.** A
//! [`MigrationFaultSpec`] says how many attempts fail and whether the
//! migration dies permanently; the engine works out *when* each abort lands
//! and *why* (a conflicting write parked on the migrating page, or a
//! transient datapath failure), both of which are shard-count-invariant.

use mempod_types::fault::PPM;
use mempod_types::{ChannelFaultKind, FaultConfig, FrameId, MigrationFaultSpec, Picos};

/// Domain-separation salt for migration fault draws.
const MIG_SALT: u64 = 0x9E37_79B9_7F4A_7C15;
/// Domain-separation salt for channel fault draws.
const CHAN_SALT: u64 = 0xC2B2_AE3D_27D4_EB4F;

/// The splitmix64 finalizer: a cheap, well-mixed 64-bit hash. Chaining it
/// over the coordinates of an event gives every decision an independent,
/// reproducible draw.
#[must_use]
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// A fault plan derived from a [`FaultConfig`]; cheap to copy and query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    cfg: FaultConfig,
}

impl FaultPlan {
    /// Wraps a configuration into a queryable plan.
    pub fn new(cfg: FaultConfig) -> Self {
        FaultPlan { cfg }
    }

    /// The underlying configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Decides, at admission, whether the migration `frame_a <-> frame_b`
    /// enqueued at `at` is faulted — and if so, how many attempts abort and
    /// whether it dies permanently. Pure in `(seed, frame_a, frame_b, at)`.
    pub fn migration_spec(
        &self,
        frame_a: FrameId,
        frame_b: FrameId,
        at: Picos,
    ) -> Option<MigrationFaultSpec> {
        if self.cfg.migration_abort_ppm == 0 {
            return None;
        }
        let h = mix64(mix64(mix64(self.cfg.seed ^ MIG_SALT ^ frame_a.0) ^ frame_b.0) ^ at.as_ps());
        if h % PPM >= u64::from(self.cfg.migration_abort_ppm) {
            return None;
        }
        // Geometric draw from the high bits (independent of the fire
        // decision, which consumed the low bits): each extra failed attempt
        // needs another set bit, so retries usually succeed quickly.
        let max_retries = self.cfg.migration_max_retries;
        let mut failed = 1u32;
        let mut bits = h >> 32;
        while failed <= max_retries && bits & 1 == 1 {
            failed += 1;
            bits >>= 1;
        }
        Some(MigrationFaultSpec {
            failed_attempts: failed,
            permanent: failed > max_retries,
        })
    }

    /// Simulated-time backoff before retry attempt `attempt` (1-based count
    /// of failures so far): `base * 2^(attempt-1)`, saturating, capped.
    pub fn backoff_after(&self, attempt: u32) -> Picos {
        backoff_after(
            self.cfg.migration_backoff,
            self.cfg.migration_backoff_cap,
            attempt,
        )
    }

    /// The channel-fault stream for one global channel index.
    pub fn channel_stream(&self, channel: u32) -> ChannelFaultStream {
        ChannelFaultStream {
            seed: self.cfg.seed,
            channel,
            ppm: self.cfg.channel_fault_ppm,
            window_ps: self.cfg.channel_window.as_ps().max(1),
        }
    }
}

/// Exponential backoff in simulated time: `base * 2^(attempt-1)`,
/// saturating, capped at `cap`.
#[must_use]
pub fn backoff_after(base: Picos, cap: Picos, attempt: u32) -> Picos {
    let exp = attempt.saturating_sub(1).min(20);
    Picos(base.as_ps().saturating_mul(1u64 << exp).min(cap.as_ps()))
}

/// One fired channel fault: which decision window it belongs to and what
/// perturbation to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelFault {
    /// Decision-window index (`t / window`).
    pub slot: u64,
    /// End of the window, when window-scoped perturbations (stuck banks)
    /// release.
    pub slot_end: Picos,
    /// The perturbation.
    pub kind: ChannelFaultKind,
}

/// A per-channel fault stream: divides simulated time into fixed windows
/// and draws at most one fault per window, purely from
/// `(seed, channel, window index)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelFaultStream {
    seed: u64,
    channel: u32,
    ppm: u32,
    window_ps: u64,
}

impl ChannelFaultStream {
    /// The fault (if any) active in the window containing simulated time
    /// `t`. Pure: every query for the same window returns the same answer.
    pub fn window_at(&self, t: Picos) -> Option<ChannelFault> {
        if self.ppm == 0 {
            return None;
        }
        let slot = t.as_ps() / self.window_ps;
        let h = mix64(mix64(mix64(self.seed ^ CHAN_SALT) ^ u64::from(self.channel)) ^ slot);
        if h % PPM >= u64::from(self.ppm) {
            return None;
        }
        let kind = match (h >> 32) % 3 {
            0 => {
                // 50 ns .. 1.6 µs blackout in 50 ns steps.
                let steps = (h >> 34) % 32;
                ChannelFaultKind::LatencySpike(Picos(50_000 * (1 + steps)))
            }
            1 => {
                // Raw bank index; the channel interprets it mod its banks.
                let bank = (h >> 40) & 0xFFFF;
                ChannelFaultKind::StuckBank(u32::try_from(bank).unwrap_or(0))
            }
            _ => {
                let k = 1 + ((h >> 40) % 4);
                ChannelFaultKind::RefreshStorm(u32::try_from(k).unwrap_or(1))
            }
        };
        Some(ChannelFault {
            slot,
            slot_end: Picos(slot.saturating_add(1).saturating_mul(self.window_ps)),
            kind,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(abort_ppm: u32, retries: u32) -> FaultPlan {
        let mut cfg = FaultConfig::quiet(0xFEED_F00D);
        cfg.migration_abort_ppm = abort_ppm;
        cfg.migration_max_retries = retries;
        cfg.channel_fault_ppm = 50_000;
        cfg.channel_window = Picos::from_us(1);
        FaultPlan::new(cfg)
    }

    #[test]
    fn migration_draws_are_deterministic() {
        let p = plan(100_000, 2);
        for i in 0..200u64 {
            let a = FrameId(i * 3);
            let b = FrameId(i * 7 + 1);
            let at = Picos::from_ns(i * 11);
            assert_eq!(p.migration_spec(a, b, at), p.migration_spec(a, b, at));
        }
    }

    #[test]
    fn migration_rate_is_calibrated() {
        // 10% nominal rate over 20k independent draws: expect ~2000 fires,
        // allow a generous +-25% band (binomial sigma is ~42).
        let p = plan(100_000, 2);
        let fired = (0..20_000u64)
            .filter(|&i| {
                p.migration_spec(FrameId(i), FrameId(i + 1_000_000), Picos::from_ns(i * 13))
                    .is_some()
            })
            .count();
        assert!((1_500..=2_500).contains(&fired), "fired {fired}/20000");
    }

    #[test]
    fn zero_rate_never_fires() {
        let p = plan(0, 2);
        assert!(p
            .migration_spec(FrameId(1), FrameId(2), Picos::from_ns(3))
            .is_none());
        let quiet = FaultPlan::new(FaultConfig::quiet(9));
        assert!(quiet
            .channel_stream(0)
            .window_at(Picos::from_us(5))
            .is_none());
    }

    #[test]
    fn zero_retries_makes_every_fault_permanent() {
        let p = plan(1_000_000, 0); // fires on every migration
        for i in 0..100u64 {
            let spec = p
                .migration_spec(FrameId(i), FrameId(i + 50), Picos::from_ns(i))
                .expect("ppm=1e6 always fires");
            assert_eq!(spec.failed_attempts, 1);
            assert!(spec.permanent);
        }
    }

    #[test]
    fn failed_attempts_respect_the_retry_budget() {
        let p = plan(1_000_000, 3);
        let mut saw_transient = false;
        let mut saw_permanent = false;
        for i in 0..2_000u64 {
            let spec = p
                .migration_spec(FrameId(i), FrameId(i + 9), Picos::from_ns(i * 7))
                .expect("always fires");
            assert!(
                (1..=4).contains(&spec.failed_attempts),
                "{spec:?} out of range"
            );
            assert_eq!(spec.permanent, spec.failed_attempts > 3);
            saw_transient |= !spec.permanent;
            saw_permanent |= spec.permanent;
        }
        assert!(saw_transient, "geometric draw should mostly recover");
        assert!(saw_permanent, "some draws should exhaust 3 retries");
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let base = Picos::from_ns(500);
        let cap = Picos::from_us(3);
        assert_eq!(backoff_after(base, cap, 1), Picos::from_ns(500));
        assert_eq!(backoff_after(base, cap, 2), Picos::from_ns(1000));
        assert_eq!(backoff_after(base, cap, 3), Picos::from_ns(2000));
        assert_eq!(backoff_after(base, cap, 4), cap);
        assert_eq!(backoff_after(base, cap, 40), cap, "exponent saturates");
    }

    #[test]
    fn channel_windows_are_stable_within_and_differ_across() {
        let p = plan(0, 0);
        let s = p.channel_stream(3);
        // Every query inside one window agrees.
        let w0 = s.window_at(Picos::from_ns(10));
        for off in [0u64, 100, 999_999] {
            assert_eq!(s.window_at(Picos(off)), w0);
        }
        // Over many windows the 5% rate fires sometimes, not always.
        let fired = (0..4_000u64)
            .filter(|&w| s.window_at(Picos(w * 1_000_000)).is_some())
            .count();
        assert!((100..=400).contains(&fired), "fired {fired}/4000");
        // All three kinds appear over enough windows.
        let mut spikes = 0;
        let mut stuck = 0;
        let mut storms = 0;
        for w in 0..40_000u64 {
            match s.window_at(Picos(w * 1_000_000)).map(|f| f.kind) {
                Some(ChannelFaultKind::LatencySpike(extra)) => {
                    assert!(extra >= Picos::from_ns(50) && extra <= Picos::from_ns(1600));
                    spikes += 1;
                }
                Some(ChannelFaultKind::StuckBank(_)) => stuck += 1,
                Some(ChannelFaultKind::RefreshStorm(k)) => {
                    assert!((1..=4).contains(&k));
                    storms += 1;
                }
                None => {}
            }
        }
        assert!(spikes > 0 && stuck > 0 && storms > 0);
    }

    #[test]
    fn channel_streams_are_channel_separated() {
        let p = plan(0, 0);
        let a = p.channel_stream(0);
        let b = p.channel_stream(1);
        let differs = (0..2_000u64)
            .any(|w| a.window_at(Picos(w * 1_000_000)) != b.window_at(Picos(w * 1_000_000)));
        assert!(differs, "channels must draw independent fault streams");
    }

    #[test]
    fn slot_end_bounds_the_window() {
        let p = plan(0, 0);
        let s = p.channel_stream(2);
        for w in 0..4_000u64 {
            if let Some(f) = s.window_at(Picos(w * 1_000_000 + 17)) {
                assert_eq!(f.slot, w);
                assert_eq!(f.slot_end, Picos((w + 1) * 1_000_000));
            }
        }
    }
}
