//! Bounded interleaving models of the simulator's four concurrency
//! protocols, explored by `mempod_sync::model` (only with
//! `--features model-check`).
//!
//! Each model is a focused re-statement of a real protocol in
//! `crates/sim` against the facade primitives, with the protocol's
//! safety property asserted on every explored schedule:
//!
//! 1. **Shard barrier** — N workers crossing generation barriers; nobody
//!    passes barrier `g` before every worker finished its generation-`g`
//!    work (the property the sharded driver's per-batch fork/join
//!    provides).
//! 2. **Watchdog cancel vs. completion** — cooperative cancellation
//!    polled at batch boundaries racing job completion; the outcome is
//!    always coherent (done means all batches ran; cancelled means the
//!    partial count sits on a batch boundary).
//! 3. **Shard panic → sequential degradation** — a worker dies holding
//!    the results lock; the driver recovers the poisoned lock and
//!    recomputes the missing slot exactly once.
//! 4. **Progress-board poison recovery** — a worker panics between two
//!    board updates; readers recover and the counters still reconcile.
//!
//! The `suite_report` test re-runs all four, requires ≥ 1,000 explored
//! schedules in total with zero violations, and writes
//! `model_check.report.json` at the repo root (a CI artifact).

#![cfg(feature = "model-check")]

use mempod_sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use mempod_sync::model::{self, ExploreOpts, Outcome};
use mempod_sync::{Arc, Condvar, Mutex};

/// Generation barrier in the style of the sharded driver's per-batch
/// rendezvous: last arriver flips the generation and wakes the rest.
#[derive(Debug, Default)]
struct GenBarrier {
    state: Mutex<(usize, u64)>, // (arrived, generation)
    cv: Condvar,
}

impl GenBarrier {
    fn wait(&self, n: usize) {
        let mut g = self.state.lock().expect("barrier state unpoisoned");
        let gen = g.1;
        g.0 += 1;
        if g.0 == n {
            g.0 = 0;
            g.1 += 1;
            drop(g);
            self.cv.notify_all();
        } else {
            let _g = self
                .cv
                .wait_while(g, |s| s.1 == gen)
                .expect("barrier state unpoisoned");
        }
    }
}

const BARRIER_WORKERS: usize = 3;
const BARRIER_GENERATIONS: usize = 2;

fn barrier_model() {
    let barrier = Arc::new(GenBarrier::default());
    let entered: Arc<Vec<AtomicUsize>> = Arc::new(
        (0..BARRIER_GENERATIONS)
            .map(|_| AtomicUsize::new(0))
            .collect(),
    );
    let mut workers = Vec::new();
    for _ in 0..BARRIER_WORKERS {
        let barrier = Arc::clone(&barrier);
        let entered = Arc::clone(&entered);
        workers.push(model::spawn(move || {
            for gen in 0..BARRIER_GENERATIONS {
                // "Generation work": count this worker's contribution.
                entered[gen].fetch_add(1, Ordering::Relaxed);
                barrier.wait(BARRIER_WORKERS);
                // Barrier property: every worker's generation-`gen` work
                // happened before anyone proceeds past the barrier.
                assert_eq!(
                    entered[gen].load(Ordering::Relaxed),
                    BARRIER_WORKERS,
                    "worker passed barrier {gen} before the generation completed"
                );
            }
        }));
    }
    for w in workers {
        w.join().expect("barrier worker");
    }
    for gen in 0..BARRIER_GENERATIONS {
        assert_eq!(entered[gen].load(Ordering::Relaxed), BARRIER_WORKERS);
    }
}

const JOB_BATCHES: u64 = 3;
const BATCH_REQUESTS: u64 = 4;
const STATE_RUNNING: u8 = 0;
const STATE_DONE: u8 = 1;
const STATE_CANCELLED: u8 = 2;

/// Watchdog cancellation racing job completion, shaped like
/// `run_jobs_core` + the simulator's batch-boundary cancel poll: the job
/// checks its token only between batches, the watchdog trips the token
/// at an arbitrary point, and the join-side conversion (done + tripped
/// token => still done; cancelled => partial on a batch boundary) must
/// hold on every schedule.
fn watchdog_model() {
    let cancel = Arc::new(AtomicBool::new(false));
    let state = Arc::new(AtomicU8::new(STATE_RUNNING));
    let done = Arc::new(AtomicU64::new(0));

    let (c2, s2, d2) = (Arc::clone(&cancel), Arc::clone(&state), Arc::clone(&done));
    let job = model::spawn(move || {
        for _ in 0..JOB_BATCHES {
            // Batch-boundary poll, exactly like the simulator loops: the
            // token is never checked mid-batch.
            if c2.load(Ordering::Acquire) {
                s2.store(STATE_CANCELLED, Ordering::Release);
                return;
            }
            d2.fetch_add(BATCH_REQUESTS, Ordering::Relaxed);
        }
        s2.store(STATE_DONE, Ordering::Release);
    });

    let c3 = Arc::clone(&cancel);
    let watchdog = model::spawn(move || {
        // The watchdog's decision is one store; the explorer slides it to
        // every point of the job's execution.
        c3.store(true, Ordering::Release);
    });

    job.join().expect("job worker");
    watchdog.join().expect("watchdog");

    let finished = state.load(Ordering::Acquire);
    let partial = done.load(Ordering::Relaxed);
    match finished {
        STATE_DONE => {
            assert_eq!(
                partial,
                JOB_BATCHES * BATCH_REQUESTS,
                "done means every batch ran"
            );
        }
        STATE_CANCELLED => {
            assert!(
                cancel.load(Ordering::Acquire),
                "cancelled without a tripped token"
            );
            assert_eq!(
                partial % BATCH_REQUESTS,
                0,
                "partial progress must sit on a batch boundary"
            );
            assert!(partial < JOB_BATCHES * BATCH_REQUESTS);
        }
        other => panic!("job never reached a terminal state: {other}"),
    }
}

const SHARDS: usize = 2;

/// Shard-panic handoff: worker 0 dies holding the results lock (poisoning
/// it); the driver notices at join, recovers the lock, and degrades to a
/// sequential recompute of the missing slot — exactly once.
fn degradation_model() {
    let results: Arc<Mutex<Vec<Option<u32>>>> = Arc::new(Mutex::new(vec![None; SHARDS]));

    let r0 = Arc::clone(&results);
    let faulty = model::spawn(move || {
        let mut g = r0.lock_recovering();
        g[0] = Some(1);
        // Injected fault while holding the lock: the guard's unwind drop
        // poisons it.
        panic!("[deliberate] injected shard fault");
    });
    let r1 = Arc::clone(&results);
    let healthy = model::spawn(move || {
        // Index-keyed slots: recovery is safe, same as the runner's
        // result board.
        r1.lock_recovering()[1] = Some(2);
    });

    let fault = faulty.join();
    assert!(fault.is_err(), "injected fault must surface at join");
    healthy.join().expect("healthy shard");

    // Degrade path: recompute the panicked shard's slot sequentially.
    let mut degrades = 0u32;
    if fault.is_err() {
        let mut g = results.lock_recovering();
        g[0] = Some(1);
        degrades += 1;
    }
    assert_eq!(degrades, 1, "degradation must run exactly once");
    let g = results.lock_recovering();
    assert_eq!(*g, vec![Some(1), Some(2)]);
}

/// Progress board whose writer panics between two updates under the
/// lock; the join-side recovery books the dead job as failed and the
/// counters reconcile on every schedule.
#[derive(Debug, Default)]
struct Board {
    started: u32,
    finished: u32,
    failed: u32,
}

fn poison_recovery_model() {
    let board = Arc::new(Mutex::new(Board::default()));

    let b2 = Arc::clone(&board);
    let dying = model::spawn(move || {
        let mut g = b2.lock_recovering();
        g.started += 1;
        // Fault between the two board updates: `finished` never happens.
        panic!("[deliberate] worker died mid-update");
    });
    let b3 = Arc::clone(&board);
    let good = model::spawn(move || {
        b3.lock_recovering().started += 1;
        // Separate critical sections so other threads interleave.
        b3.lock_recovering().finished += 1;
    });

    assert!(dying.join().is_err());
    good.join().expect("good worker");
    // Recovery: the dead job is accounted as failed.
    {
        let mut g = board.lock_recovering();
        g.failed += 1;
    }
    let g = board.lock_recovering();
    assert_eq!(g.started, 2);
    assert_eq!(
        g.started,
        g.finished + g.failed,
        "board counters must reconcile after recovery"
    );
}

struct ModelRun {
    name: &'static str,
    outcome: Outcome,
    floor: u64,
}

fn run_all(budget_scale: u64) -> Vec<ModelRun> {
    let opts = |max_schedules: u64| ExploreOpts {
        max_schedules: max_schedules * budget_scale,
        max_steps: 10_000,
    };
    vec![
        ModelRun {
            name: "shard-barrier-generations",
            outcome: model::explore(&opts(2_000), barrier_model),
            floor: 1_500,
        },
        ModelRun {
            name: "watchdog-cancel-vs-completion",
            outcome: model::explore(&opts(1_000), watchdog_model),
            floor: 30,
        },
        ModelRun {
            name: "shard-panic-degradation",
            outcome: model::explore(&opts(1_000), degradation_model),
            floor: 15,
        },
        ModelRun {
            name: "progress-board-poison-recovery",
            outcome: model::explore(&opts(1_000), poison_recovery_model),
            floor: 35,
        },
    ]
}

#[test]
fn barrier_protocol_holds_on_every_schedule() {
    let opts = ExploreOpts {
        max_schedules: 1_000,
        max_steps: 10_000,
    };
    let out = model::explore(&opts, barrier_model);
    out.assert_ok("shard-barrier-generations");
    assert!(out.schedules == 1_000, "budget-capped run: {out:?}");
}

#[test]
fn watchdog_cancellation_is_coherent_on_every_schedule() {
    let out = model::explore(&ExploreOpts::default(), watchdog_model);
    out.assert_ok("watchdog-cancel-vs-completion");
    assert!(
        out.exhausted,
        "watchdog model should be fully explorable: {out:?}"
    );
}

#[test]
fn shard_panic_degradation_recovers_on_every_schedule() {
    let out = model::explore(&ExploreOpts::default(), degradation_model);
    out.assert_ok("shard-panic-degradation");
    assert!(
        out.exhausted,
        "degradation model should be fully explorable: {out:?}"
    );
}

#[test]
fn progress_board_recovery_reconciles_on_every_schedule() {
    let out = model::explore(&ExploreOpts::default(), poison_recovery_model);
    out.assert_ok("progress-board-poison-recovery");
    assert!(
        out.exhausted,
        "poison-recovery model should be fully explorable: {out:?}"
    );
}

/// Aggregate gate + CI artifact: ≥ 1,000 schedules across the suite,
/// zero violations, and a machine-readable report for the workflow to
/// upload.
#[test]
fn suite_report() {
    let runs = run_all(1);
    let mut total = 0u64;
    let mut entries = Vec::new();
    for r in &runs {
        r.outcome.assert_ok(r.name);
        eprintln!(
            "MODEL {} schedules={} pruned={} truncated={} exhausted={} depth={}",
            r.name,
            r.outcome.schedules,
            r.outcome.pruned,
            r.outcome.truncated,
            r.outcome.exhausted,
            r.outcome.max_depth
        );
        assert!(
            r.outcome.schedules >= r.floor,
            "model '{}' explored {} schedules, below its floor {}",
            r.name,
            r.outcome.schedules,
            r.floor
        );
        total += r.outcome.schedules;
        entries.push(format!(
            concat!(
                "    {{\n",
                "      \"model\": \"{}\",\n",
                "      \"schedules\": {},\n",
                "      \"pruned\": {},\n",
                "      \"truncated\": {},\n",
                "      \"exhausted\": {},\n",
                "      \"max_depth\": {},\n",
                "      \"violations\": 0\n",
                "    }}"
            ),
            r.name,
            r.outcome.schedules,
            r.outcome.pruned,
            r.outcome.truncated,
            r.outcome.exhausted,
            r.outcome.max_depth,
        ));
    }
    assert!(
        total >= 1_000,
        "interleaving suite explored only {total} schedules in total"
    );
    let report = format!(
        concat!(
            "{{\n",
            "  \"suite\": \"mempod-sync interleaving models\",\n",
            "  \"total_schedules\": {},\n",
            "  \"models\": [\n{}\n  ]\n",
            "}}\n"
        ),
        total,
        entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../model_check.report.json");
    std::fs::write(path, report).expect("write model_check.report.json");
}
