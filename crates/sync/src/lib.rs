//! Synchronization facade for the MemPod suite.
//!
//! Every pipeline crate that needs a lock, an atomic, or a thread handle
//! imports it from here instead of `std::sync` / `std::thread` (the
//! `sync-primitive-outside-facade` audit rule enforces this). The facade
//! has two personalities:
//!
//! * **Normal builds** (default): transparent newtypes over the std
//!   primitives. Every method is a one-line `#[inline]` delegation, so
//!   the facade costs nothing — the simulator's hot paths compile to the
//!   same code they did against `std::sync` directly.
//! * **`model-check` builds** (the `model-check` cargo feature): every
//!   facade operation first announces itself to the bounded interleaving
//!   explorer in [`model`] — if one is driving the current thread — and
//!   blocks until the explorer's deterministic scheduler grants it. The
//!   scheduler permutes these switch points across threads (with
//!   sleep-set pruning and a schedule budget), records acquisition
//!   order, atomic orderings, and condvar park/unpark edges per
//!   schedule, and detects deadlocks and lost wakeups. Outside an
//!   explorer run the instrumented facade falls back to plain std
//!   behavior, so ordinary tests still pass with the feature enabled.
//!
//! Two deliberate deviations from `std::sync`:
//!
//! * [`Mutex::lock_recovering`] recovers from poisoning (the runner's
//!   progress board and result slots are index-keyed, so a panicking
//!   writer cannot leave them half-updated in a way later readers would
//!   misread; see `crates/sim/src/runner.rs`).
//! * [`Condvar`] is simulated entirely by the scheduler under
//!   `model-check`, which is what makes lost-wakeup bugs show up as
//!   deterministic deadlocks instead of flaky hangs.

pub mod atomic;
mod mutex;
pub mod thread;

#[cfg(feature = "model-check")]
pub mod model;

pub use mutex::{Condvar, Mutex, MutexGuard};

/// Shared-ownership handle, re-exported so facade users need no
/// `std::sync` import. `Arc` itself performs no blocking or ordered
/// operation the explorer would need to interleave (its refcounts are
/// opaque to the program), so it passes through unwrapped.
pub use std::sync::Arc;

/// Re-exported poison error so callers can pattern-match lock results
/// without importing `std::sync`.
pub use std::sync::{LockResult, PoisonError};
