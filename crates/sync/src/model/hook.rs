//! Thread-side instrumentation hooks: the bridge between facade
//! operations and the explorer's scheduler.
//!
//! Every facade operation calls one of these before (or, for releases,
//! after) its physical effect. When the calling thread belongs to an
//! explorer run, the hook announces the operation and blocks until the
//! deterministic scheduler grants it — that handshake is the switch
//! point the explorer permutes. Outside a run the hooks are no-ops, so
//! `model-check` builds still behave like std for ordinary tests.

use std::cell::RefCell;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use super::{Control, Pending, Status};

/// How an atomic operation touches its cell, for the dependency
/// relation behind sleep-set pruning (two loads commute; anything
/// involving a store or RMW does not).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AtomicKind {
    /// Pure load.
    Load,
    /// Pure store.
    Store,
    /// Read-modify-write (`swap`, `fetch_add`, …).
    Rmw,
}

/// Panic payload used to unwind model threads when a run is torn down
/// (deadlock found, budget hit). Never escapes the explorer: thread
/// wrappers catch and classify it as "aborted", not "panicked".
pub(crate) struct AbortRun;

struct Ctx {
    ctrl: Arc<Control>,
    tid: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// Binds the current OS thread to an explorer run as model thread
/// `tid`.
pub(crate) fn install(ctrl: Arc<Control>, tid: usize) {
    CTX.with(|c| *c.borrow_mut() = Some(Ctx { ctrl, tid }));
}

pub(crate) fn current() -> Option<(Arc<Control>, usize)> {
    CTX.with(|c| {
        c.borrow()
            .as_ref()
            .map(|ctx| (Arc::clone(&ctx.ctrl), ctx.tid))
    })
}

/// Whether the current thread is driven by an explorer scheduler.
pub(crate) fn in_model_run() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

/// Announces `op` and blocks until the scheduler grants it.
///
/// `in_drop` announcements (guard releases) return silently when the
/// run is aborting — panicking inside a `Drop` that may itself run
/// during an unwind would abort the process. Every other announcement
/// unwinds with [`AbortRun`] on abort so free-running threads cannot
/// keep executing model code concurrently.
fn announce(op: Pending, in_drop: bool) {
    let Some((ctrl, tid)) = current() else { return };
    let mut st = ctrl.lock_state();
    if st.abort {
        drop(st);
        if in_drop {
            return;
        }
        std::panic::panic_any(AbortRun);
    }
    st.assign_names(&op);
    st.threads[tid].status = Status::Announced(op);
    ctrl.cv.notify_all();
    loop {
        st = ctrl.wait_state(st);
        if st.abort {
            drop(st);
            if in_drop {
                return;
            }
            std::panic::panic_any(AbortRun);
        }
        if matches!(st.threads[tid].status, Status::Running) {
            return;
        }
    }
}

/// Switch point for an atomic operation; records its ordering.
pub(crate) fn atomic_op(obj: usize, kind: AtomicKind, label: &'static str, ordering: Ordering) {
    announce(
        Pending::AtomicOp {
            obj,
            kind,
            label,
            ordering,
        },
        false,
    );
}

/// Switch point for a mutex acquisition; blocks while the logical
/// holder differs.
pub(crate) fn lock_acquire(obj: usize) {
    announce(Pending::Lock { obj }, false);
}

/// Switch point for a mutex release (called from guard `Drop`, after
/// the physical release).
pub(crate) fn lock_release(obj: usize, poison: bool) {
    announce(Pending::Unlock { obj, poison }, true);
}

/// Switch point for a condvar wait: atomically releases the logical
/// lock, parks this thread, and returns only once a notify and a lock
/// regrant have both happened.
pub(crate) fn condvar_wait(cv: usize, lock: usize) {
    announce(Pending::Wait { cv, lock }, false);
}

/// Switch point for a condvar notify; wakes the scheduler-chosen
/// waiter(s), recording the park/unpark edge.
pub(crate) fn condvar_notify(cv: usize, all: bool) {
    announce(Pending::Notify { cv, all }, false);
}

/// Switch point for joining model thread `target`; enabled once it has
/// finished.
pub(crate) fn join(target: usize) {
    announce(Pending::Join { target }, false);
}

/// First announcement of a freshly spawned model thread, making thread
/// startup itself a schedulable event.
pub(crate) fn begin() {
    announce(Pending::Begin, false);
}
