//! Bounded interleaving explorer: a miniature, dependency-free model
//! checker for code written against the facade primitives.
//!
//! # How it works
//!
//! [`explore`] runs a model closure repeatedly. Each run spawns real OS
//! threads (via [`spawn`]) but serializes them: every facade operation
//! announces itself to a controller and blocks until granted, so exactly
//! one model thread makes progress at a time and the grant order *is*
//! the schedule. The controller records every decision point (which
//! threads had an operation enabled, which was chosen); after the run,
//! unexplored alternatives become new runs that replay the common prefix
//! and diverge at the decision. Depth-first repetition enumerates every
//! interleaving of facade operations up to the schedule budget.
//!
//! Two standard model-checking ingredients keep that tractable:
//!
//! * **Sleep sets** (Godefroid): after exploring thread `t` at a
//!   decision, `t` is put to sleep for the sibling branches and stays
//!   asleep until some dependent operation executes. This soundly skips
//!   schedules that only commute independent operations — no deadlock or
//!   assertion failure is missed for safety properties.
//! * **Budgets**: `max_schedules` bounds the number of runs,
//!   `max_steps` bounds the length of any one run, so exploration
//!   terminates even on models with unbounded loops.
//!
//! Blocking is fully simulated: a condvar wait parks the thread inside
//! the scheduler, and only a notify grant unparks it (no spurious
//! wakeups, FIFO order). A notify that finds no waiter is recorded as
//! exactly that — which is why a lost-wakeup bug shows up here as a
//! deterministic [`ViolationKind::Deadlock`] rather than a flaky hang.
//!
//! A deadlocked run, a panicking model (failed assertion), or an
//! exhausted budget tears the run down by waking every blocked thread
//! with an abort payload and joining it, so one bad schedule cannot wedge
//! the test process.

pub(crate) mod hook;

use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{
    Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, PoisonError,
};

use hook::{AbortRun, AtomicKind};

/// A logical operation a model thread has announced and is blocked on.
#[derive(Debug, Clone)]
pub(crate) enum Pending {
    /// First announcement of a spawned thread: makes startup schedulable.
    Begin,
    /// A facade atomic operation.
    AtomicOp {
        obj: usize,
        kind: AtomicKind,
        label: &'static str,
        ordering: Ordering,
    },
    /// Mutex acquisition; enabled while the logical holder is vacant.
    Lock { obj: usize },
    /// Mutex release (announced from guard drop, after the physical
    /// release).
    Unlock { obj: usize, poison: bool },
    /// Condvar wait: atomically releases `lock` and parks on `cv`.
    Wait { cv: usize, lock: usize },
    /// Lock reacquisition of a notified waiter; enabled when `lock` is
    /// free.
    Reacquire { cv: usize, lock: usize },
    /// Condvar notify; wakes the FIFO-first waiter (or all of them).
    Notify { cv: usize, all: bool },
    /// Join of model thread `target`; enabled once it has finished.
    Join { target: usize },
}

impl Pending {
    /// Objects this operation touches, with the display prefix used to
    /// assign stable small names in traces.
    fn objs_with_prefix(&self) -> Vec<(usize, &'static str)> {
        match self {
            Pending::Begin | Pending::Join { .. } => Vec::new(),
            Pending::AtomicOp { obj, .. } => vec![(*obj, "a")],
            Pending::Lock { obj } | Pending::Unlock { obj, .. } => vec![(*obj, "m")],
            Pending::Wait { cv, lock } | Pending::Reacquire { cv, lock } => {
                vec![(*cv, "cv"), (*lock, "m")]
            }
            Pending::Notify { cv, .. } => vec![(*cv, "cv")],
        }
    }
}

/// Scheduler-visible state of one model thread.
#[derive(Debug)]
pub(crate) enum Status {
    /// Executing model code; the controller waits for its next
    /// announcement.
    Running,
    /// Blocked in `announce`, waiting for the grant.
    Announced(Pending),
    /// Parked on a condvar until some notify selects it.
    SleepingCv { cv: usize, lock: usize },
    /// Returned or unwound; `panicked` excludes explorer-initiated
    /// aborts.
    Finished { panicked: bool, msg: Option<String> },
}

#[derive(Debug)]
pub(crate) struct ThreadSlot {
    pub(crate) status: Status,
}

#[derive(Debug, Default)]
struct LockState {
    holder: Option<usize>,
}

/// Shared scheduler state, guarded by [`Control::m`].
#[derive(Debug, Default)]
pub(crate) struct SchedState {
    pub(crate) threads: Vec<ThreadSlot>,
    pub(crate) abort: bool,
    locks: HashMap<usize, LockState>,
    /// FIFO waiter queues per condvar.
    cv_queues: HashMap<usize, Vec<usize>>,
    /// First-touch small names for trace readability (`m0`, `cv1`, `a2`).
    names: HashMap<usize, String>,
    next_name: u32,
    trace: Vec<String>,
    /// OS handles of spawned model threads, joined at teardown.
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

impl SchedState {
    /// Assigns trace names to any not-yet-seen objects of `op`.
    pub(crate) fn assign_names(&mut self, op: &Pending) {
        for (obj, prefix) in op.objs_with_prefix() {
            if !self.names.contains_key(&obj) {
                let name = format!("{prefix}{}", self.next_name);
                self.next_name += 1;
                self.names.insert(obj, name);
            }
        }
    }

    fn display(&self, obj: usize) -> String {
        self.names
            .get(&obj)
            .cloned()
            .unwrap_or_else(|| format!("o{obj:x}"))
    }
}

/// The mutex+condvar pair every model thread and the controller
/// rendezvous on.
#[derive(Debug)]
pub(crate) struct Control {
    m: StdMutex<SchedState>,
    cv: StdCondvar,
}

impl Control {
    fn new() -> Self {
        Control {
            m: StdMutex::new(SchedState::default()),
            cv: StdCondvar::new(),
        }
    }

    /// Locks the scheduler state (recovering from poisoning — a
    /// panicking model thread must not wedge the controller).
    pub(crate) fn lock_state(&self) -> StdMutexGuard<'_, SchedState> {
        self.m.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// One wait on the rendezvous condvar.
    pub(crate) fn wait_state<'a>(
        &'a self,
        guard: StdMutexGuard<'a, SchedState>,
    ) -> StdMutexGuard<'a, SchedState> {
        self.cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
    }
}

/// Exploration budgets.
#[derive(Debug, Clone)]
pub struct ExploreOpts {
    /// Maximum number of distinct schedules to run.
    pub max_schedules: u64,
    /// Maximum scheduling decisions within a single run (guards against
    /// models that loop forever).
    pub max_steps: usize,
}

impl Default for ExploreOpts {
    fn default() -> Self {
        ExploreOpts {
            max_schedules: 5_000,
            max_steps: 10_000,
        }
    }
}

/// What went wrong on the offending schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// Some thread remained blocked with no enabled operation anywhere
    /// (includes lost wakeups, which park a waiter forever).
    Deadlock,
    /// The model closure itself panicked — a failed assertion under this
    /// schedule.
    AssertionFailed,
    /// Replay diverged from the recorded prefix; the model is
    /// nondeterministic (e.g. branches on wall-clock time or randomness).
    Divergence,
}

/// A schedule under which the model misbehaved.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Classification of the failure.
    pub kind: ViolationKind,
    /// Human-readable description (stuck-thread table or panic message).
    pub detail: String,
    /// Per-step operation log of the offending run.
    pub trace: Vec<String>,
    /// Thread ids in grant order — replaying these choices reproduces
    /// the failure deterministically.
    pub schedule: Vec<usize>,
}

/// Aggregate result of an exploration.
#[derive(Debug)]
pub struct Outcome {
    /// Completed schedules actually run (excludes sleep-set-pruned
    /// redundant runs).
    pub schedules: u64,
    /// Runs cut short by sleep-set pruning (their interleavings are
    /// covered by counted schedules).
    pub pruned: u64,
    /// Schedules that hit `max_steps` before finishing.
    pub truncated: u64,
    /// Whether every non-redundant schedule was explored within budget.
    pub exhausted: bool,
    /// Deepest run, in scheduling decisions.
    pub max_depth: usize,
    /// First failure found, if any (exploration stops at the first).
    pub violation: Option<Violation>,
    /// Operation log of the first completed schedule, for inspection.
    pub sample_trace: Vec<String>,
}

impl Outcome {
    /// Panics with the offending schedule and trace if the exploration
    /// found a violation.
    pub fn assert_ok(&self, model: &str) {
        if let Some(v) = &self.violation {
            panic!(
                "model '{model}' violated: {:?} — {}\nschedule (thread grant order): {:?}\ntrace:\n  {}",
                v.kind,
                v.detail,
                v.schedule,
                v.trace.join("\n  "),
            );
        }
    }
}

/// Handle to a thread spawned with [`spawn`]; joining is a scheduling
/// switch point.
pub struct JoinHandle<T> {
    tid: usize,
    slot: ResultSlot<T>,
}

impl<T> fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JoinHandle")
            .field("tid", &self.tid)
            .finish_non_exhaustive()
    }
}

type ResultSlot<T> = Arc<StdMutex<Option<Result<T, String>>>>;

impl<T> JoinHandle<T> {
    /// Waits (as a scheduled operation) for the thread to finish.
    ///
    /// # Errors
    ///
    /// Returns the panic message if the thread panicked, mirroring
    /// `std::thread::JoinHandle::join`'s `Err` case.
    pub fn join(self) -> Result<T, String> {
        hook::join(self.tid);
        self.slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
            .expect("joined model thread left no result")
    }
}

/// Spawns a model thread inside the current explorer run.
///
/// # Panics
///
/// Panics if called outside a closure being driven by [`explore`] —
/// models must create all their threads through the explorer so it can
/// schedule them.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let (ctrl, _) = hook::current().expect("model::spawn called outside an explorer run");
    let tid = {
        let mut st = ctrl.lock_state();
        st.threads.push(ThreadSlot {
            status: Status::Running,
        });
        st.threads.len() - 1
    };
    let slot: ResultSlot<T> = Arc::new(StdMutex::new(None));
    let slot2 = Arc::clone(&slot);
    let ctrl2 = Arc::clone(&ctrl);
    let os = std::thread::Builder::new()
        .name(format!("model-t{tid}"))
        .spawn(move || {
            hook::install(Arc::clone(&ctrl2), tid);
            let res = catch_unwind(AssertUnwindSafe(|| {
                hook::begin();
                f()
            }));
            let (val, panicked, msg) = classify(res);
            *slot2.lock().unwrap_or_else(PoisonError::into_inner) = Some(match val {
                Some(v) => Ok(v),
                None => Err(msg.clone().unwrap_or_else(|| "panicked".to_string())),
            });
            finish(&ctrl2, tid, panicked, msg);
        })
        .expect("spawn model thread");
    ctrl.lock_state().os_handles.push(os);
    JoinHandle { tid, slot }
}

/// Explores interleavings of `f` and reports what was found.
///
/// `f` is run once per schedule and must be deterministic apart from
/// scheduling: same facade operations, same spawns, given the same grant
/// order (nondeterminism is detected and reported as
/// [`ViolationKind::Divergence`]). Exploration stops at the first
/// violation or when the budget is spent.
pub fn explore<F: Fn() + Sync>(opts: &ExploreOpts, f: F) -> Outcome {
    install_quiet_panic_hook();
    let mut frontier: Vec<Vec<ForcedChoice>> = vec![Vec::new()];
    let mut out = Outcome {
        schedules: 0,
        pruned: 0,
        truncated: 0,
        exhausted: true,
        max_depth: 0,
        violation: None,
        sample_trace: Vec::new(),
    };
    while let Some(forced) = frontier.pop() {
        if out.schedules >= opts.max_schedules {
            out.exhausted = false;
            break;
        }
        let run = run_once(&f, &forced, opts.max_steps);
        out.max_depth = out.max_depth.max(run.decisions.len());
        let schedule: Vec<usize> = run.decisions.iter().map(|d| d.chosen).collect();
        let mut stop = false;
        match run.end {
            RunEnd::Pruned => out.pruned += 1,
            RunEnd::Complete => {
                out.schedules += 1;
                if out.sample_trace.is_empty() {
                    out.sample_trace.clone_from(&run.trace);
                }
            }
            RunEnd::StepLimit => {
                out.schedules += 1;
                out.truncated += 1;
            }
            RunEnd::Deadlock(detail) => {
                out.schedules += 1;
                out.violation = Some(Violation {
                    kind: ViolationKind::Deadlock,
                    detail,
                    trace: run.trace.clone(),
                    schedule,
                });
                stop = true;
            }
            RunEnd::MainPanicked(detail) => {
                out.schedules += 1;
                out.violation = Some(Violation {
                    kind: ViolationKind::AssertionFailed,
                    detail,
                    trace: run.trace.clone(),
                    schedule,
                });
                stop = true;
            }
            RunEnd::Divergence(detail) => {
                out.violation = Some(Violation {
                    kind: ViolationKind::Divergence,
                    detail,
                    trace: run.trace.clone(),
                    schedule,
                });
                stop = true;
            }
        }
        if stop {
            out.exhausted = false;
            break;
        }
        expand(&mut frontier, &forced, &run.decisions);
    }
    if !frontier.is_empty() {
        out.exhausted = false;
    }
    out
}

/// Silences panic output from (a) explorer-initiated aborts and (b)
/// deliberate model panics — faults a model injects on purpose, marked
/// by `[deliberate]` in the message. A fault-injection model panics on
/// every schedule; printing thousands of expected backtraces would bury
/// real failures. Genuine assertion failures still print and are still
/// reported as [`ViolationKind::AssertionFailed`].
fn install_quiet_panic_hook() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            if payload.downcast_ref::<AbortRun>().is_some() {
                return;
            }
            let msg = payload
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| payload.downcast_ref::<String>().map(String::as_str));
            if msg.is_some_and(|m| m.contains("[deliberate]")) {
                return;
            }
            prev(info);
        }));
    });
}

/// One forced scheduling choice during prefix replay.
struct ForcedChoice {
    tid: usize,
    /// Threads put to sleep at this decision because sibling branches
    /// starting with them were already queued (Godefroid sleep sets).
    born_sleep: Vec<usize>,
}

/// A decision point recorded during a run.
struct Decision {
    enabled: Vec<usize>,
    chosen: usize,
    /// Sleep set in force when the decision was made (after applying
    /// `born_sleep`); alternatives in it are redundant and not queued.
    sleep_before: Vec<usize>,
}

enum RunEnd {
    Complete,
    Pruned,
    StepLimit,
    Deadlock(String),
    MainPanicked(String),
    Divergence(String),
}

struct RunOutput {
    end: RunEnd,
    decisions: Vec<Decision>,
    trace: Vec<String>,
}

/// Queues the unexplored sibling branches of `decisions` beyond the
/// already-forced prefix, deepest decision on top (depth-first order).
fn expand(frontier: &mut Vec<Vec<ForcedChoice>>, forced: &[ForcedChoice], decisions: &[Decision]) {
    for d in forced.len()..decisions.len() {
        let dec = &decisions[d];
        // Threads already covered at this decision: the branch just
        // executed plus each sibling queued before (they sleep in
        // later siblings until a dependent operation runs).
        let mut prior = vec![dec.chosen];
        let mut alts: Vec<Vec<ForcedChoice>> = Vec::new();
        for &alt in &dec.enabled {
            if prior.contains(&alt) || dec.sleep_before.contains(&alt) {
                continue;
            }
            let mut child: Vec<ForcedChoice> = (0..d)
                .map(|i| ForcedChoice {
                    tid: decisions[i].chosen,
                    born_sleep: if i < forced.len() {
                        forced[i].born_sleep.clone()
                    } else {
                        Vec::new()
                    },
                })
                .collect();
            child.push(ForcedChoice {
                tid: alt,
                born_sleep: prior.clone(),
            });
            alts.push(child);
            prior.push(alt);
        }
        // Reverse so the first alternative is popped first.
        for child in alts.into_iter().rev() {
            frontier.push(child);
        }
    }
}

/// Runs `f` once under the schedule prefix `forced`, then default
/// (lowest enabled, sleep-respecting) choices.
fn run_once<F: Fn() + Sync>(f: &F, forced: &[ForcedChoice], max_steps: usize) -> RunOutput {
    let ctrl = Arc::new(Control::new());
    ctrl.lock_state().threads.push(ThreadSlot {
        status: Status::Running,
    });
    std::thread::scope(|s| {
        let ctrl_main = Arc::clone(&ctrl);
        let main_h = s.spawn(move || {
            hook::install(Arc::clone(&ctrl_main), 0);
            let res = catch_unwind(AssertUnwindSafe(f));
            let (_, panicked, msg) = classify(res.map(|_| ()));
            finish(&ctrl_main, 0, panicked, msg);
        });
        let out = controller(&ctrl, forced, max_steps);
        // Teardown: wake every blocked thread with the abort flag set so
        // it unwinds, then join everything this run spawned.
        ctrl.lock_state().abort = true;
        ctrl.cv.notify_all();
        let _ = main_h.join();
        loop {
            let handles: Vec<_> = {
                let mut st = ctrl.lock_state();
                st.os_handles.drain(..).collect()
            };
            if handles.is_empty() {
                break;
            }
            for h in handles {
                let _ = h.join();
            }
        }
        out
    })
}

/// The deterministic scheduler for one run.
fn controller(ctrl: &Control, forced: &[ForcedChoice], max_steps: usize) -> RunOutput {
    let mut decisions: Vec<Decision> = Vec::new();
    let mut sleep: Vec<usize> = Vec::new();
    loop {
        let mut st = ctrl.lock_state();
        while st
            .threads
            .iter()
            .any(|t| matches!(t.status, Status::Running))
        {
            st = ctrl.wait_state(st);
        }
        let main_panic = match &st.threads[0].status {
            Status::Finished {
                panicked: true,
                msg,
            } => Some(msg.clone().unwrap_or_default()),
            _ => None,
        };
        if st
            .threads
            .iter()
            .all(|t| matches!(t.status, Status::Finished { .. }))
        {
            let end = match main_panic {
                Some(msg) => RunEnd::MainPanicked(msg),
                None => RunEnd::Complete,
            };
            return RunOutput {
                end,
                decisions,
                trace: st.trace.clone(),
            };
        }
        let enabled: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(tid, t)| match &t.status {
                Status::Announced(p) => is_enabled(&st, *tid, p),
                _ => false,
            })
            .map(|(tid, _)| tid)
            .collect();
        if enabled.is_empty() {
            // Threads remain but nothing can make progress. If the main
            // thread's assertion already failed, report that as the root
            // cause rather than the stuck children it abandoned.
            let end = match main_panic {
                Some(msg) => RunEnd::MainPanicked(msg),
                None => RunEnd::Deadlock(describe_stuck(&st)),
            };
            return RunOutput {
                end,
                decisions,
                trace: st.trace.clone(),
            };
        }
        if decisions.len() >= max_steps {
            return RunOutput {
                end: RunEnd::StepLimit,
                decisions,
                trace: st.trace.clone(),
            };
        }
        let depth = decisions.len();
        let chosen = if depth < forced.len() {
            for &t in &forced[depth].born_sleep {
                if !sleep.contains(&t) {
                    sleep.push(t);
                }
            }
            let c = forced[depth].tid;
            if !enabled.contains(&c) || sleep.contains(&c) {
                return RunOutput {
                    end: RunEnd::Divergence(format!(
                        "replay step {depth} chose t{c} but it is {} — model must be \
                         deterministic apart from scheduling",
                        if sleep.contains(&c) {
                            "asleep"
                        } else {
                            "not enabled"
                        }
                    )),
                    decisions,
                    trace: st.trace.clone(),
                };
            }
            c
        } else {
            match enabled.iter().copied().find(|t| !sleep.contains(t)) {
                Some(c) => c,
                None => {
                    // Every enabled thread sleeps: this continuation is
                    // covered by an already-explored sibling branch.
                    return RunOutput {
                        end: RunEnd::Pruned,
                        decisions,
                        trace: st.trace.clone(),
                    };
                }
            }
        };
        decisions.push(Decision {
            enabled: enabled.clone(),
            chosen,
            sleep_before: sleep.clone(),
        });
        let executed = apply_grant(&mut st, chosen);
        // A sleeping thread wakes only when a dependent operation runs —
        // until then, running it would just commute with what happened.
        sleep.retain(|&t| match &st.threads[t].status {
            Status::Announced(p) => !dependent(&desc_of(p), &executed),
            _ => false,
        });
        ctrl.cv.notify_all();
        drop(st);
    }
}

/// Dependency footprint of an operation: the objects it touches and
/// whether it writes them.
struct OpDesc {
    objs: Vec<(usize, bool)>,
    always_dep: bool,
}

fn desc_of(p: &Pending) -> OpDesc {
    match p {
        // Spawns and joins order thread lifetimes; treat as dependent
        // with everything rather than model them precisely.
        Pending::Begin | Pending::Join { .. } => OpDesc {
            objs: Vec::new(),
            always_dep: true,
        },
        Pending::AtomicOp { obj, kind, .. } => OpDesc {
            objs: vec![(*obj, !matches!(kind, AtomicKind::Load))],
            always_dep: false,
        },
        Pending::Lock { obj } | Pending::Unlock { obj, .. } => OpDesc {
            objs: vec![(*obj, true)],
            always_dep: false,
        },
        Pending::Wait { cv, lock } | Pending::Reacquire { cv, lock } => OpDesc {
            objs: vec![(*cv, true), (*lock, true)],
            always_dep: false,
        },
        Pending::Notify { cv, .. } => OpDesc {
            objs: vec![(*cv, true)],
            always_dep: false,
        },
    }
}

fn dependent(a: &OpDesc, b: &OpDesc) -> bool {
    if a.always_dep || b.always_dep {
        return true;
    }
    a.objs
        .iter()
        .any(|(oa, wa)| b.objs.iter().any(|(ob, wb)| oa == ob && (*wa || *wb)))
}

fn is_enabled(st: &SchedState, tid: usize, p: &Pending) -> bool {
    match p {
        Pending::Lock { obj } | Pending::Reacquire { lock: obj, .. } => match st.locks.get(obj) {
            Some(l) => l.holder.is_none(),
            None => true,
        },
        Pending::Join { target } => matches!(st.threads[*target].status, Status::Finished { .. }),
        // The waiter holds the lock until the wait is granted.
        Pending::Wait { lock, .. } => match st.locks.get(lock) {
            Some(l) => l.holder == Some(tid),
            None => false,
        },
        _ => true,
    }
}

/// Applies the granted operation's logical effects, records the trace
/// line, and returns its dependency footprint.
fn apply_grant(st: &mut SchedState, tid: usize) -> OpDesc {
    let p = match &st.threads[tid].status {
        Status::Announced(p) => p.clone(),
        other => unreachable!("granting t{tid} while {other:?}"),
    };
    let desc = desc_of(&p);
    match &p {
        Pending::Begin => {
            st.trace.push(format!("t{tid} begin"));
            st.threads[tid].status = Status::Running;
        }
        Pending::AtomicOp {
            obj,
            label,
            ordering,
            ..
        } => {
            let name = st.display(*obj);
            st.trace
                .push(format!("t{tid} {label}({ordering:?}) {name}"));
            st.threads[tid].status = Status::Running;
        }
        Pending::Lock { obj } => {
            st.locks.entry(*obj).or_default().holder = Some(tid);
            let name = st.display(*obj);
            st.trace.push(format!("t{tid} lock {name}"));
            st.threads[tid].status = Status::Running;
        }
        Pending::Unlock { obj, poison } => {
            st.locks.entry(*obj).or_default().holder = None;
            let name = st.display(*obj);
            let tag = if *poison { " (poisoning)" } else { "" };
            st.trace.push(format!("t{tid} unlock {name}{tag}"));
            st.threads[tid].status = Status::Running;
        }
        Pending::Wait { cv, lock } => {
            st.locks.entry(*lock).or_default().holder = None;
            st.cv_queues.entry(*cv).or_default().push(tid);
            let cv_name = st.display(*cv);
            let lock_name = st.display(*lock);
            st.trace.push(format!(
                "t{tid} wait {cv_name} releasing {lock_name} (parked)"
            ));
            st.threads[tid].status = Status::SleepingCv {
                cv: *cv,
                lock: *lock,
            };
        }
        Pending::Reacquire { cv, lock } => {
            st.locks.entry(*lock).or_default().holder = Some(tid);
            let cv_name = st.display(*cv);
            let lock_name = st.display(*lock);
            st.trace.push(format!(
                "t{tid} reacquire {lock_name} after {cv_name} (unparked)"
            ));
            st.threads[tid].status = Status::Running;
        }
        Pending::Notify { cv, all } => {
            let queue = st.cv_queues.entry(*cv).or_default();
            let take = if *all {
                queue.len()
            } else {
                queue.len().min(1)
            };
            let woken: Vec<usize> = queue.drain(..take).collect();
            for &w in &woken {
                let lock = match st.threads[w].status {
                    Status::SleepingCv { lock, .. } => lock,
                    ref other => unreachable!("notified t{w} while {other:?}"),
                };
                st.threads[w].status = Status::Announced(Pending::Reacquire { cv: *cv, lock });
            }
            let cv_name = st.display(*cv);
            let verb = if *all { "notify_all" } else { "notify_one" };
            let target = if woken.is_empty() {
                "no waiters".to_string()
            } else {
                format!(
                    "unpark {}",
                    woken
                        .iter()
                        .map(|w| format!("t{w}"))
                        .collect::<Vec<_>>()
                        .join(",")
                )
            };
            st.trace
                .push(format!("t{tid} {verb} {cv_name} -> {target}"));
            st.threads[tid].status = Status::Running;
        }
        Pending::Join { target } => {
            st.trace.push(format!("t{tid} join t{target}"));
            st.threads[tid].status = Status::Running;
        }
    }
    desc
}

fn describe_stuck(st: &SchedState) -> String {
    let mut parts = Vec::new();
    for (tid, t) in st.threads.iter().enumerate() {
        let what = match &t.status {
            Status::Running => "running".to_string(),
            Status::Announced(p) => format!("blocked at {}", pending_label(st, p)),
            Status::SleepingCv { cv, .. } => {
                format!("parked on {} awaiting a notify", st.display(*cv))
            }
            Status::Finished { panicked, .. } => {
                format!("finished{}", if *panicked { " (panicked)" } else { "" })
            }
        };
        parts.push(format!("t{tid}: {what}"));
    }
    format!("no runnable thread — {}", parts.join("; "))
}

fn pending_label(st: &SchedState, p: &Pending) -> String {
    match p {
        Pending::Begin => "begin".to_string(),
        Pending::AtomicOp {
            obj,
            label,
            ordering,
            ..
        } => format!("{label}({ordering:?}) {}", st.display(*obj)),
        Pending::Lock { obj } => format!("lock {}", st.display(*obj)),
        Pending::Unlock { obj, .. } => format!("unlock {}", st.display(*obj)),
        Pending::Wait { cv, lock } => {
            format!("wait {} releasing {}", st.display(*cv), st.display(*lock))
        }
        Pending::Reacquire { cv, lock } => {
            format!("reacquire {} after {}", st.display(*lock), st.display(*cv))
        }
        Pending::Notify { cv, all } => format!(
            "{} {}",
            if *all { "notify_all" } else { "notify_one" },
            st.display(*cv)
        ),
        Pending::Join { target } => format!("join t{target}"),
    }
}

fn finish(ctrl: &Control, tid: usize, panicked: bool, msg: Option<String>) {
    let mut st = ctrl.lock_state();
    st.trace.push(format!(
        "t{tid} finished{}",
        if panicked { " (panicked)" } else { "" }
    ));
    st.threads[tid].status = Status::Finished { panicked, msg };
    ctrl.cv.notify_all();
}

/// Splits a `catch_unwind` result into value / real-panic flag / message,
/// treating explorer-initiated aborts as neither value nor panic.
fn classify<T>(res: std::thread::Result<T>) -> (Option<T>, bool, Option<String>) {
    match res {
        Ok(v) => (Some(v), false, None),
        Err(payload) => {
            if payload.downcast_ref::<AbortRun>().is_some() {
                (None, false, Some("aborted by the explorer".to_string()))
            } else if let Some(s) = payload.downcast_ref::<&str>() {
                (None, true, Some((*s).to_string()))
            } else if let Some(s) = payload.downcast_ref::<String>() {
                (None, true, Some(s.clone()))
            } else {
                (None, true, Some("non-string panic payload".to_string()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomic::AtomicU64;
    use crate::{Condvar, Mutex};

    #[test]
    fn counter_increments_survive_every_interleaving() {
        let out = explore(&ExploreOpts::default(), || {
            let n = Arc::new(Mutex::new(0u32));
            let mut workers = Vec::new();
            for _ in 0..2 {
                let n2 = Arc::clone(&n);
                workers.push(spawn(move || {
                    let mut g = n2.lock().expect("unpoisoned");
                    *g += 1;
                }));
            }
            for w in workers {
                w.join().expect("worker");
            }
            assert_eq!(*n.lock().expect("unpoisoned"), 2);
        });
        out.assert_ok("mutex counter");
        assert!(out.exhausted, "tiny model must fit the budget: {out:?}");
        assert!(out.schedules >= 2, "expected real branching: {out:?}");
        assert_eq!(out.truncated, 0);
    }

    #[test]
    fn independent_threads_prune_redundant_schedules() {
        let out = explore(&ExploreOpts::default(), || {
            let a = Arc::new(Mutex::new(0u32));
            let b = Arc::new(Mutex::new(0u32));
            let a2 = Arc::clone(&a);
            let t1 = spawn(move || *a2.lock().expect("unpoisoned") += 1);
            let b2 = Arc::clone(&b);
            let t2 = spawn(move || *b2.lock().expect("unpoisoned") += 1);
            t1.join().expect("t1");
            t2.join().expect("t2");
            assert_eq!(*a.lock().expect("unpoisoned"), 1);
            assert_eq!(*b.lock().expect("unpoisoned"), 1);
        });
        out.assert_ok("independent locks");
        assert!(out.exhausted);
        assert!(
            out.pruned > 0,
            "disjoint-lock interleavings should hit the sleep set: {out:?}"
        );
    }

    #[test]
    fn ab_ba_lock_order_deadlock_is_found() {
        let out = explore(&ExploreOpts::default(), || {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t1 = spawn(move || {
                let _ga = a2.lock().expect("unpoisoned");
                let _gb = b2.lock().expect("unpoisoned");
            });
            let (a3, b3) = (Arc::clone(&a), Arc::clone(&b));
            let t2 = spawn(move || {
                let _gb = b3.lock().expect("unpoisoned");
                let _ga = a3.lock().expect("unpoisoned");
            });
            let _ = t1.join();
            let _ = t2.join();
        });
        let v = out
            .violation
            .expect("AB/BA ordering must deadlock somewhere");
        assert_eq!(v.kind, ViolationKind::Deadlock);
        assert!(v.detail.contains("blocked at lock"), "detail: {}", v.detail);
    }

    #[test]
    fn lost_wakeup_shows_up_as_a_deterministic_deadlock() {
        let out = explore(&ExploreOpts::default(), || {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let p2 = Arc::clone(&pair);
            let consumer = spawn(move || {
                let (m, cv) = &*p2;
                // BUG under test: flag checked in one critical section,
                // wait entered in another — the producer can slip
                // between them and its notify finds no waiter.
                let ready = *m.lock().expect("unpoisoned");
                if !ready {
                    let g = m.lock().expect("unpoisoned");
                    let _g = cv.wait(g).expect("unpoisoned");
                }
            });
            let p3 = Arc::clone(&pair);
            let producer = spawn(move || {
                let (m, cv) = &*p3;
                *m.lock().expect("unpoisoned") = true;
                cv.notify_one();
            });
            let _ = consumer.join();
            let _ = producer.join();
        });
        let v = out
            .violation
            .expect("lost wakeup must park the consumer forever");
        assert_eq!(v.kind, ViolationKind::Deadlock);
        assert!(v.detail.contains("parked"), "detail: {}", v.detail);
        assert!(
            v.trace.iter().any(|l| l.contains("no waiters")),
            "trace should show the notify missing its waiter:\n{}",
            v.trace.join("\n")
        );
    }

    #[test]
    fn unsynchronized_read_modify_write_loses_an_update() {
        let out = explore(&ExploreOpts::default(), || {
            let n = Arc::new(AtomicU64::new(0));
            let mut workers = Vec::new();
            for _ in 0..2 {
                let n2 = Arc::clone(&n);
                workers.push(spawn(move || {
                    // BUG under test: load+store instead of fetch_add.
                    let v = n2.load(Ordering::Relaxed);
                    n2.store(v + 1, Ordering::Relaxed);
                }));
            }
            for w in workers {
                w.join().expect("worker");
            }
            assert_eq!(
                n.load(Ordering::Relaxed),
                2,
                "[deliberate] lost update is the expected counterexample"
            );
        });
        let v = out.violation.expect("some schedule loses an update");
        assert_eq!(v.kind, ViolationKind::AssertionFailed);
    }

    #[test]
    fn schedule_budget_is_respected() {
        let opts = ExploreOpts {
            max_schedules: 3,
            max_steps: 10_000,
        };
        let out = explore(&opts, || {
            let n = Arc::new(AtomicU64::new(0));
            let mut workers = Vec::new();
            for _ in 0..3 {
                let n2 = Arc::clone(&n);
                workers.push(spawn(move || {
                    n2.fetch_add(1, Ordering::Relaxed);
                }));
            }
            for w in workers {
                w.join().expect("worker");
            }
        });
        out.assert_ok("budgeted");
        assert_eq!(out.schedules, 3);
        assert!(!out.exhausted, "3 schedules cannot cover 3 threads");
    }
}
