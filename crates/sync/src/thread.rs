//! Facade thread handles: re-exports of `std::thread`'s spawning and
//! join types, so pipeline crates need no `std::thread` import (the
//! `sync-primitive-outside-facade` audit rule covers `std::thread` too).
//!
//! These stay passthrough even under `model-check`: explorer models
//! spawn their threads through [`crate::model::spawn`], whose handles
//! make `join` a scheduler switch point. Production code keeps
//! `std::thread::scope`'s structured-concurrency guarantees unchanged —
//! the explorer proves the *protocols* (barrier, watchdog, degradation,
//! poison recovery) on focused models rather than intercepting OS
//! threads wholesale.

pub use std::thread::{
    available_parallelism, scope, sleep, spawn, yield_now, Builder, JoinHandle, Scope,
    ScopedJoinHandle,
};
