//! Facade atomics: transparent newtypes over `std::sync::atomic`.
//!
//! In normal builds every method inlines to the std operation with the
//! caller's ordering. Under the `model-check` feature each operation is
//! a scheduler switch point and its ordering is recorded in the schedule
//! trace — the explorer interleaves logical operations (sequentially
//! consistent exploration); it does not simulate weak-memory
//! reorderings, which is what the `atomic-ordering-mismatch` audit rule
//! covers statically instead.

pub use std::sync::atomic::Ordering;

#[cfg(feature = "model-check")]
use crate::model::hook::{self, AtomicKind};

macro_rules! facade_atomic {
    ($name:ident, $std:ty, $prim:ty) => {
        /// Facade atomic delegating to the std type of the same name.
        #[derive(Debug, Default)]
        pub struct $name {
            inner: $std,
        }

        impl $name {
            /// A new atomic holding `v`.
            #[inline]
            pub const fn new(v: $prim) -> Self {
                Self {
                    inner: <$std>::new(v),
                }
            }

            #[cfg(feature = "model-check")]
            fn announce(&self, kind: AtomicKind, op: &'static str, ordering: Ordering) {
                hook::atomic_op(self as *const Self as usize, kind, op, ordering);
            }

            /// Loads the value.
            #[inline]
            pub fn load(&self, ordering: Ordering) -> $prim {
                #[cfg(feature = "model-check")]
                self.announce(
                    AtomicKind::Load,
                    concat!(stringify!($name), "::load"),
                    ordering,
                );
                self.inner.load(ordering)
            }

            /// Stores `v`.
            #[inline]
            pub fn store(&self, v: $prim, ordering: Ordering) {
                #[cfg(feature = "model-check")]
                self.announce(
                    AtomicKind::Store,
                    concat!(stringify!($name), "::store"),
                    ordering,
                );
                self.inner.store(v, ordering);
            }

            /// Swaps in `v`, returning the previous value.
            #[inline]
            pub fn swap(&self, v: $prim, ordering: Ordering) -> $prim {
                #[cfg(feature = "model-check")]
                self.announce(
                    AtomicKind::Rmw,
                    concat!(stringify!($name), "::swap"),
                    ordering,
                );
                self.inner.swap(v, ordering)
            }

            /// Consumes the atomic, returning the inner value.
            #[inline]
            pub fn into_inner(self) -> $prim {
                self.inner.into_inner()
            }
        }
    };
}

macro_rules! facade_atomic_arith {
    ($name:ident, $prim:ty) => {
        impl $name {
            /// Adds `v`, returning the previous value.
            #[inline]
            pub fn fetch_add(&self, v: $prim, ordering: Ordering) -> $prim {
                #[cfg(feature = "model-check")]
                self.announce(
                    AtomicKind::Rmw,
                    concat!(stringify!($name), "::fetch_add"),
                    ordering,
                );
                self.inner.fetch_add(v, ordering)
            }

            /// Subtracts `v`, returning the previous value.
            #[inline]
            pub fn fetch_sub(&self, v: $prim, ordering: Ordering) -> $prim {
                #[cfg(feature = "model-check")]
                self.announce(
                    AtomicKind::Rmw,
                    concat!(stringify!($name), "::fetch_sub"),
                    ordering,
                );
                self.inner.fetch_sub(v, ordering)
            }
        }
    };
}

facade_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);
facade_atomic!(AtomicU8, std::sync::atomic::AtomicU8, u8);
facade_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
facade_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

facade_atomic_arith!(AtomicU8, u8);
facade_atomic_arith!(AtomicU64, u64);
facade_atomic_arith!(AtomicUsize, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomics_pass_through() {
        let b = AtomicBool::new(false);
        assert!(!b.load(Ordering::Acquire));
        b.store(true, Ordering::Release);
        assert!(b.swap(false, Ordering::AcqRel));
        assert!(!b.into_inner());

        let n = AtomicU64::new(5);
        assert_eq!(n.fetch_add(3, Ordering::Relaxed), 5);
        assert_eq!(n.fetch_sub(1, Ordering::Relaxed), 8);
        assert_eq!(n.load(Ordering::Relaxed), 7);

        let u = AtomicUsize::new(0);
        assert_eq!(u.fetch_add(1, Ordering::Relaxed), 0);
        let s = AtomicU8::new(2);
        s.store(3, Ordering::Release);
        assert_eq!(s.load(Ordering::Acquire), 3);
    }
}
