//! Facade [`Mutex`] and [`Condvar`].
//!
//! Normal builds delegate to `std::sync` with the same poisoning
//! semantics (`lock` returns a `LockResult`; a guard dropped during a
//! panic poisons the lock). Under `model-check`, acquisition, release,
//! wait, and notify are scheduler switch points; condvar blocking is
//! simulated entirely by the explorer so a notify with no waiter is a
//! recorded no-op — exactly the lost-wakeup shape the models assert
//! against.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{LockResult, PoisonError};

#[cfg(feature = "model-check")]
use crate::model::hook;

/// Facade mutex; see the module docs.
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// A new unlocked mutex holding `t`.
    #[inline]
    pub const fn new(t: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(t),
        }
    }

    #[cfg(feature = "model-check")]
    pub(crate) fn obj_id(&self) -> usize {
        self as *const Self as usize
    }

    /// Acquires the lock, blocking the calling thread until it is free.
    ///
    /// # Errors
    ///
    /// Returns a [`PoisonError`] wrapping the guard if another thread
    /// panicked while holding this lock; the data stays accessible via
    /// [`PoisonError::into_inner`].
    #[inline]
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        #[cfg(feature = "model-check")]
        hook::lock_acquire(self.obj_id());
        // Under an explorer run the scheduler only grants the
        // acquisition once the logical holder has physically released,
        // so this inner lock never blocks against a descheduled holder.
        match self.inner.lock() {
            Ok(g) => Ok(MutexGuard {
                lock: self,
                inner: Some(g),
            }),
            Err(p) => Err(PoisonError::new(MutexGuard {
                lock: self,
                inner: Some(p.into_inner()),
            })),
        }
    }

    /// Acquires the lock, recovering from poisoning.
    ///
    /// The runner's result slots and progress board are index-keyed —
    /// a panicking writer cannot leave them in a state later readers
    /// would misread — so recovery is safe there and every facade call
    /// site documents why it is at its own use.
    #[inline]
    pub fn lock_recovering(&self) -> MutexGuard<'_, T> {
        self.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Whether a holder panicked while holding this lock.
    #[inline]
    pub fn is_poisoned(&self) -> bool {
        self.inner.is_poisoned()
    }

    /// Consumes the mutex, returning the inner value (recovering from
    /// poisoning, which cannot invalidate the value itself).
    #[inline]
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex")
            .field("poisoned", &self.is_poisoned())
            .finish_non_exhaustive()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

/// RAII guard for [`Mutex`]; releases (and, mid-panic, poisons) the
/// lock on drop.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    /// `None` only transiently while a condvar wait has taken the inner
    /// guard; a guard in that state releases nothing on drop.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard surrendered to a wait")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard surrendered to a wait")
    }
}

impl<T: fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(g) = self.inner.take() {
            // Physically release before announcing, so any waiter the
            // scheduler grants next finds the std mutex free.
            drop(g);
            #[cfg(feature = "model-check")]
            hook::lock_release(self.lock.obj_id(), std::thread::panicking());
        }
    }
}

/// Facade condition variable; see the module docs.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// A new condition variable.
    #[inline]
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    #[cfg(feature = "model-check")]
    fn obj_id(&self) -> usize {
        self as *const Self as usize
    }

    /// Releases `guard`'s lock and blocks until notified, then
    /// reacquires the lock.
    ///
    /// # Errors
    ///
    /// Propagates lock poisoning on reacquisition, like
    /// [`Mutex::lock`].
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        #[cfg(feature = "model-check")]
        if hook::in_model_run() {
            return self.model_wait(guard);
        }
        let lock = guard.lock;
        let mut guard = guard;
        let std_guard = guard
            .inner
            .take()
            .expect("guard surrendered to a wait twice");
        drop(guard); // inner already taken: drops without releasing
        match self.inner.wait(std_guard) {
            Ok(g) => Ok(MutexGuard {
                lock,
                inner: Some(g),
            }),
            Err(p) => Err(PoisonError::new(MutexGuard {
                lock,
                inner: Some(p.into_inner()),
            })),
        }
    }

    /// Scheduler-simulated wait: physically release, announce the wait
    /// (which atomically releases the logical lock, parks this thread,
    /// and — once notified and granted — logically reacquires), then
    /// physically relock.
    #[cfg(feature = "model-check")]
    fn model_wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let lock = guard.lock;
        let mut guard = guard;
        drop(
            guard
                .inner
                .take()
                .expect("guard surrendered to a wait twice"),
        );
        drop(guard);
        hook::condvar_wait(self.obj_id(), lock.obj_id());
        match lock.inner.lock() {
            Ok(g) => Ok(MutexGuard {
                lock,
                inner: Some(g),
            }),
            Err(p) => Err(PoisonError::new(MutexGuard {
                lock,
                inner: Some(p.into_inner()),
            })),
        }
    }

    /// Blocks until `pred` returns `false` (re-checked after every
    /// wakeup, so it is spurious-wakeup safe by construction).
    ///
    /// # Errors
    ///
    /// Propagates lock poisoning, like [`Mutex::lock`].
    pub fn wait_while<'a, T, F>(
        &self,
        mut guard: MutexGuard<'a, T>,
        mut pred: F,
    ) -> LockResult<MutexGuard<'a, T>>
    where
        F: FnMut(&mut T) -> bool,
    {
        while pred(&mut *guard) {
            guard = self.wait(guard)?;
        }
        Ok(guard)
    }

    /// Wakes one waiter (the longest-waiting one, deterministically,
    /// under the explorer; whichever the OS picks otherwise).
    #[inline]
    pub fn notify_one(&self) {
        #[cfg(feature = "model-check")]
        hook::condvar_notify(self.obj_id(), false);
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    #[inline]
    pub fn notify_all(&self) {
        #[cfg(feature = "model-check")]
        hook::condvar_notify(self.obj_id(), true);
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip_and_debug() {
        let m = Mutex::new(7u32);
        {
            let mut g = m.lock().expect("unpoisoned");
            *g += 1;
        }
        assert_eq!(*m.lock_recovering(), 8);
        assert!(!m.is_poisoned());
        assert!(format!("{m:?}").contains("poisoned"));
        assert_eq!(m.into_inner(), 8);
    }

    #[test]
    fn poisoned_lock_recovers_with_the_data_intact() {
        let m = std::sync::Arc::new(Mutex::new(vec![1, 2]));
        let m2 = std::sync::Arc::clone(&m);
        let panicked = std::thread::spawn(move || {
            let mut g = m2.lock_recovering();
            g.push(3);
            panic!("poison the lock mid-update");
        })
        .join();
        assert!(panicked.is_err());
        assert!(m.is_poisoned());
        assert!(m.lock().is_err(), "plain lock surfaces the poison");
        assert_eq!(*m.lock_recovering(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wait_while_sees_the_notify() {
        let pair = std::sync::Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = std::sync::Arc::clone(&pair);
        let waker = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            *m.lock_recovering() = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let g = cv
            .wait_while(m.lock_recovering(), |ready| !*ready)
            .expect("unpoisoned");
        assert!(*g);
        drop(g);
        waker.join().expect("waker");
    }
}
