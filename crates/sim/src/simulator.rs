//! The simulation event loop.
//!
//! The simulator is event-driven and **never advances the memory system
//! past the trace frontier**: channels drain only up to the current
//! request's arrival, so foreground and injected traffic contend exactly
//! when they would in the machine. Anything that must wait for an unknown
//! completion time is *deferred* and woken by that completion:
//!
//! * a triggered `Migration` becomes a state machine — its 2×N reads are
//!   injected (background priority), the write-backs launch when the last
//!   read completes, and the two involved pages stay blocked until the last
//!   write completes (paper §4.3/§6.2);
//! * a foreground access to a blocked page parks on the migration and is
//!   dispatched at its release;
//! * a metadata-cache miss injects one read to the backing store in fast
//!   memory (paper §6.3.3); the access parks on the fetch.
//!
//! The engine state machine itself lives in [`crate::shard`]; this module
//! drives it along one of two paths that produce **bit-identical** reports:
//!
//! * **sequential** — one [`Shard`] over the whole memory system, advanced
//!   request by request (the reference semantics; forced via
//!   [`Simulator::run_reference`]);
//! * **sharded** — the system split into per-pod/per-channel residue
//!   classes ([`MemorySystem::into_shards`]) that tick independently
//!   between deterministic barriers. The main thread admits requests and
//!   routes work items to shards by frame residue; shards pump their own
//!   channels over the shared global arrival grid; barriers merge telemetry
//!   in timestamp-then-shard-id order and feed the epoch driver. Because a
//!   shard count is only accepted when frames, pages, channels, and
//!   migration domains of one residue class never interact with another's
//!   ([`Simulator::effective_shards`]), every per-channel scheduling
//!   decision is the one the sequential engine would have made.
//!
//! AMMAT = foreground stall (completion − original arrival, including all
//! gating) / original request count — the paper's fixed-denominator
//! formulation (§6.2). Injected traffic contributes through contention and
//! blocking, not through its own queueing time.

use std::time::Instant;

use mempod_core::{build_manager, MemoryManager, Migration};
use mempod_dram::{ChannelProbe, Interleave, MemorySystem, SystemStats};
use mempod_faults::FaultPlan;
use mempod_sync::atomic::{AtomicBool, AtomicU64, Ordering};
use mempod_sync::{thread, Arc};
use mempod_telemetry::span::{exec_span_id, request_span_id};
use mempod_telemetry::{
    EpochSnapshot, EventKind, Log2Histogram, PhaseClock, SpanName, SpanRecord, Telemetry, SPAN_NONE,
};
use mempod_trace::Trace;
use mempod_types::convert::{u32_from_u64, u64_from_usize, usize_from_u32, usize_from_u64};
use mempod_types::{EngineError, MigrationFaultSpec, Picos};

use crate::config::{SimConfig, SimError};
use crate::metrics::SimReport;
use crate::provenance::ProvenanceLedger;
use crate::shard::{gcd, Shard, ShardSet, Waiter, WorkItem};

/// Consecutive metadata-cache misses that qualify as a burst event.
const META_MISS_BURST_MIN: u64 = 8;
/// Stalled refreshes per snapshot window that qualify as a refresh-stall
/// event.
const REFRESH_STALL_EVENT_MIN: u64 = 16;
/// Progress-counter flush granularity (requests per `fetch_add`).
const PROGRESS_BATCH: u64 = 4096;
/// Arrival-grid ticks per sharded barrier interval. Large enough to
/// amortize the fork/join cost over thousands of channel decisions, small
/// enough that telemetry merges and the epoch driver stay responsive.
const BATCH_TICKS: usize = 4096;

/// A merged snapshot of engine state for the epoch driver, built at
/// barriers (or per request on the sequential path, where the "merge" is
/// over one shard). Keeping the driver off live engine references is what
/// lets the same snapshot code serve both paths.
struct EngineView {
    total_stall: Picos,
    injected_meta: u64,
    /// Migrations entered into the engine (sum of shard `migs` lengths).
    migrations_entered: u64,
    stats: SystemStats,
    probe: Option<ChannelProbe>,
}

/// Merges the observable state of `shards` into one [`EngineView`].
fn engine_view(shards: &[Shard]) -> EngineView {
    let mut view = EngineView {
        total_stall: Picos::ZERO,
        injected_meta: 0,
        migrations_entered: 0,
        stats: SystemStats::default(),
        probe: None,
    };
    for s in shards {
        view.total_stall += s.total_stall;
        view.injected_meta += s.injected_meta;
        view.migrations_entered += u64_from_usize(s.migs.len());
        view.stats.merge(&s.mem.stats());
        if let Some(p) = s.mem.probe_summary() {
            view.probe
                .get_or_insert_with(ChannelProbe::default)
                .merge(&p);
        }
    }
    view
}

/// Pull-based epoch snapshot driver.
///
/// Keeps the previous boundary's cumulative statistics and, whenever the
/// request stream crosses one or more epoch boundaries, diffs the current
/// cumulative values against them to produce one [`EpochSnapshot`]
/// covering the whole gap (sparse traces can skip thousands of epochs at
/// once; emitting one snapshot per gap keeps telemetry O(requests), not
/// O(simulated time)). Nothing here touches the per-access hot path — the
/// driver only ever *reads* counters the simulation already maintained,
/// handed over as an [`EngineView`] built at the same point the sequential
/// loop would have polled them.
struct EpochDriver {
    len: Picos,
    next_boundary: Picos,
    prev_requests: u64,
    prev_migrations: u64,
    prev_bytes_moved: u64,
    prev_per_pod_bytes: Vec<u64>,
    prev_fast: u64,
    prev_slow: u64,
    prev_row_hits: u64,
    prev_row_refs: u64,
    prev_refreshes: u64,
    prev_meta: u64,
    prev_manager: Vec<(&'static str, u64)>,
    prev_depth: Log2Histogram,
    prev_stalled_refreshes: u64,
    prev_high_water: u64,
}

impl EpochDriver {
    /// A driver snapshotting every `len` of simulated time (`None` if the
    /// configured epoch is zero — nothing to key snapshots off).
    fn new(len: Picos) -> Option<Self> {
        (len.as_ps() > 0).then(|| EpochDriver {
            len,
            next_boundary: len,
            prev_requests: 0,
            prev_migrations: 0,
            prev_bytes_moved: 0,
            prev_per_pod_bytes: Vec::new(),
            prev_fast: 0,
            prev_slow: 0,
            prev_row_hits: 0,
            prev_row_refs: 0,
            prev_refreshes: 0,
            prev_meta: 0,
            prev_manager: Vec::new(),
            prev_depth: Log2Histogram::new(),
            prev_stalled_refreshes: 0,
            prev_high_water: 0,
        })
    }

    /// Whether `now` has reached the next epoch boundary — i.e. whether
    /// [`observe`](EpochDriver::observe) would snapshot. Callers check this
    /// before building an [`EngineView`] so the per-request cost stays one
    /// comparison.
    fn crosses(&self, now: Picos) -> bool {
        now >= self.next_boundary
    }

    /// Emits one snapshot if `now` has crossed the next epoch boundary.
    fn observe(
        &mut self,
        now: Picos,
        requests_so_far: u64,
        mgr: &dyn MemoryManager,
        view: &mut EngineView,
        tel: &mut Telemetry,
    ) {
        if !self.crosses(now) {
            return;
        }
        let len = self.len.as_ps();
        let crossed = (now.as_ps() - self.next_boundary.as_ps()) / len + 1;
        let boundary = Picos(self.next_boundary.as_ps() + (crossed - 1) * len);
        self.next_boundary = boundary + self.len;
        // Boundaries are exact multiples of the epoch length.
        let epoch = boundary.as_ps() / len;
        self.snapshot_at(epoch, boundary, crossed, requests_so_far, mgr, view, tel);
    }

    /// Emits a final snapshot covering the partial window since the last
    /// boundary, if anything happened in it. The partial window is labelled
    /// with the in-progress epoch index, so epochs stay strictly increasing
    /// even when a full-boundary snapshot fired just before the trace ended.
    fn finalize(
        &mut self,
        end: Picos,
        requests_so_far: u64,
        mgr: &dyn MemoryManager,
        view: &mut EngineView,
        tel: &mut Telemetry,
    ) {
        if requests_so_far == self.prev_requests && view.migrations_entered == self.prev_migrations
        {
            return;
        }
        let epoch = self.next_boundary.as_ps() / self.len.as_ps();
        let last_boundary = self.next_boundary.saturating_sub(self.len);
        self.snapshot_at(
            epoch,
            end.max(last_boundary),
            1,
            requests_so_far,
            mgr,
            view,
            tel,
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn snapshot_at(
        &mut self,
        epoch: u64,
        boundary: Picos,
        epochs_elapsed: u64,
        requests_so_far: u64,
        mgr: &dyn MemoryManager,
        view: &mut EngineView,
        tel: &mut Telemetry,
    ) {
        let mut snap = EpochSnapshot::empty(epoch, boundary.as_ps());
        snap.epochs_elapsed = epochs_elapsed;

        snap.requests = requests_so_far;
        snap.requests_delta = requests_so_far - self.prev_requests;
        self.prev_requests = requests_so_far;
        snap.ammat_ps_so_far =
            (requests_so_far > 0).then(|| view.total_stall.as_ps() as f64 / requests_so_far as f64);

        let mig = mgr.migration_stats();
        snap.migrations = mig.migrations;
        snap.migrations_delta = mig.migrations - self.prev_migrations;
        self.prev_migrations = mig.migrations;
        snap.bytes_moved_delta = mig.bytes_moved - self.prev_bytes_moved;
        self.prev_bytes_moved = mig.bytes_moved;
        self.prev_per_pod_bytes.resize(mig.per_pod_bytes.len(), 0);
        snap.per_pod_bytes_delta = mig
            .per_pod_bytes
            .iter()
            .zip(self.prev_per_pod_bytes.iter())
            .map(|(now, prev)| now - prev)
            .collect();
        self.prev_per_pod_bytes.copy_from_slice(&mig.per_pod_bytes);

        let stats = view.stats;
        let total = stats.total();
        snap.fast_requests_delta = stats.fast.requests() - self.prev_fast;
        snap.slow_requests_delta = stats.slow.requests() - self.prev_slow;
        self.prev_fast = stats.fast.requests();
        self.prev_slow = stats.slow.requests();
        let served = snap.fast_requests_delta + snap.slow_requests_delta;
        snap.fast_service_fraction =
            (served > 0).then(|| snap.fast_requests_delta as f64 / served as f64);
        let row_refs = total.row_hits + total.row_misses + total.row_conflicts;
        let ref_delta = row_refs - self.prev_row_refs;
        snap.row_hit_rate = (ref_delta > 0)
            .then(|| (total.row_hits - self.prev_row_hits) as f64 / ref_delta as f64);
        self.prev_row_hits = total.row_hits;
        self.prev_row_refs = row_refs;
        snap.refreshes_delta = total.refreshes - self.prev_refreshes;
        self.prev_refreshes = total.refreshes;

        snap.meta_miss_delta = view.injected_meta - self.prev_meta;
        self.prev_meta = view.injected_meta;

        // Manager counters are reported as per-window deltas, matched by
        // name against the previous poll.
        let mut mc = Vec::new();
        mgr.telemetry_counters(&mut mc);
        for &(name, value) in &mc {
            let prev = self
                .prev_manager
                .iter()
                .find(|(n, _)| *n == name)
                .map_or(0, |&(_, v)| v);
            snap.manager.insert(name.to_string(), value - prev);
        }
        self.prev_manager = mc;

        if let Some(probe) = view.probe.take() {
            let window = probe.depth.diff(&self.prev_depth);
            snap.queue_depth_p50 = window.value_at_quantile(0.50);
            snap.queue_depth_p99 = window.value_at_quantile(0.99);
            snap.queue_depth_max = window.max();
            self.prev_depth = probe.depth;

            let stall_delta = probe.stalled_refreshes - self.prev_stalled_refreshes;
            self.prev_stalled_refreshes = probe.stalled_refreshes;
            if stall_delta >= REFRESH_STALL_EVENT_MIN {
                tel.event(
                    boundary.as_ps(),
                    EventKind::RefreshStall {
                        refreshes: stall_delta,
                        epoch,
                    },
                );
            }
        }

        let high_water = u64_from_usize(total.max_queue_depth);
        if high_water > self.prev_high_water {
            self.prev_high_water = high_water;
            tel.event(
                boundary.as_ps(),
                EventKind::QueueDepthHighWater {
                    depth: high_water,
                    epoch,
                },
            );
        }

        tel.snapshot(snap);
    }
}

/// A configured simulator, ready to run one trace.
///
/// See the crate-level example. A `Simulator` is single-use: [`run`]
/// consumes it (manager and memory state are not reusable across traces).
/// Attach telemetry with [`with_telemetry`] to get per-epoch snapshots and
/// a JSONL event stream; attach a progress counter with [`with_progress`]
/// for live sweep monitoring; request a sharded run with [`with_shards`]
/// (the result is bit-identical to the sequential path by construction).
///
/// [`run`]: Simulator::run
/// [`with_telemetry`]: Simulator::with_telemetry
/// [`with_progress`]: Simulator::with_progress
/// [`with_shards`]: Simulator::with_shards
pub struct Simulator {
    cfg: SimConfig,
    mgr: Box<dyn MemoryManager>,
    mem: MemorySystem,
    tel: Telemetry,
    progress: Option<Arc<AtomicU64>>,
    /// Requested shard count (1 = sequential; clamped by
    /// [`Simulator::effective_shards`]).
    shards: u32,
    /// Run shard phases serially on the calling thread (exact per-shard
    /// busy timing for [`PhaseClock`]; bit-identical results).
    serial_shards: bool,
    phase_clock: Option<Arc<PhaseClock>>,
    /// Cooperative cancellation token (the runner watchdog's hard-timeout
    /// lever): when set, admission stops, in-flight work drains, and the
    /// partial report comes back flagged `faults.cancelled`.
    cancel: Option<Arc<AtomicBool>>,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("manager", &self.cfg.manager)
            .field("geometry", &self.cfg.mgr.geometry)
            .field("shards", &self.shards)
            .finish()
    }
}

impl Simulator {
    /// Builds a simulator.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the configuration is invalid for the chosen
    /// manager (e.g. non-integral fast:slow ratio for THM/CAMEO).
    pub fn new(cfg: SimConfig) -> Result<Self, SimError> {
        let layout = cfg.layout();
        Self::with_layout(cfg, layout)
    }

    /// Builds a simulator over an explicit memory layout (e.g. to override
    /// the channel interleaving); the layout must describe the same frame
    /// counts as `cfg.layout()` would.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] under the same conditions as [`Simulator::new`].
    ///
    /// # Panics
    ///
    /// Panics if the layout's frame counts disagree with the configuration.
    pub fn with_layout(cfg: SimConfig, layout: mempod_dram::MemLayout) -> Result<Self, SimError> {
        cfg.validate()?;
        assert_eq!(
            layout.total_frames(),
            cfg.layout().total_frames(),
            "layout must cover the configured geometry"
        );
        let mgr = build_manager(cfg.manager, &cfg.mgr);
        let mem = MemorySystem::new(layout);
        Ok(Simulator {
            cfg,
            mgr,
            mem,
            tel: Telemetry::disabled(),
            progress: None,
            shards: 1,
            serial_shards: false,
            phase_clock: None,
            cancel: None,
        })
    }

    /// Attaches telemetry: per-epoch snapshots (keyed off the configured
    /// epoch length), structured events and DRAM channel probes. The run's
    /// retained snapshots come back in [`SimReport::timeline`]; the full
    /// stream goes to the telemetry's sink as JSONL.
    #[must_use]
    pub fn with_telemetry(mut self, tel: Telemetry) -> Self {
        self.tel = tel;
        self
    }

    /// Attaches a live progress counter, incremented (in batches) as trace
    /// requests are admitted. Another thread may read it at any time — this
    /// is what the parallel runner's per-job heartbeat polls.
    #[must_use]
    pub fn with_progress(mut self, counter: Arc<AtomicU64>) -> Self {
        self.progress = Some(counter);
        self
    }

    /// Requests a sharded run over (at most) `shards` residue classes.
    ///
    /// The count actually used is [`Simulator::effective_shards`] — the
    /// largest divisor of `shards` for which sharding is provably
    /// transparent; the report is bit-identical to the sequential path at
    /// any accepted count.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    #[must_use]
    pub fn with_shards(mut self, shards: u32) -> Self {
        assert!(shards >= 1, "shard count must be at least 1");
        self.shards = shards;
        self
    }

    /// Runs shard phases serially on the calling thread instead of on
    /// worker threads. Results are bit-identical (shards are disjoint); the
    /// point is measurement: serial phases give [`PhaseClock`] exact
    /// per-shard busy times on machines with fewer cores than shards,
    /// where a worker's wall time would include preemption by its
    /// siblings.
    #[must_use]
    pub fn with_serial_shards(mut self, serial: bool) -> Self {
        self.serial_shards = serial;
        self
    }

    /// Attaches a [`PhaseClock`] that accumulates admission time and
    /// per-barrier shard busy times for the sharded path (strictly
    /// observability; the sequential path ignores it).
    #[must_use]
    pub fn with_phase_clock(mut self, clock: Arc<PhaseClock>) -> Self {
        self.phase_clock = Some(clock);
        self
    }

    /// Attaches a cooperative cancellation token. When another thread sets
    /// it, the run stops admitting trace requests at the next arrival,
    /// drains everything already in flight (so no request is lost), and
    /// returns a partial report with `faults.cancelled` set and `requests`
    /// reduced to the admitted count. This is the lever behind the parallel
    /// runner's hard per-job timeout
    /// ([`try_run_jobs_with_watchdog`](crate::try_run_jobs_with_watchdog)).
    #[must_use]
    pub fn with_cancel(mut self, token: Arc<AtomicBool>) -> Self {
        self.cancel = Some(token);
        self
    }

    /// The active fault plan, if the configuration carries one with any
    /// non-zero rate or injected panic.
    fn fault_plan(&self) -> Option<FaultPlan> {
        self.cfg
            .faults
            .as_ref()
            .filter(|f| f.is_active())
            .map(|f| FaultPlan::new(*f))
    }

    /// The shard count a [`run`](Simulator::run) will actually use: the
    /// largest divisor of the requested count for which the residue-class
    /// partition is provably transparent.
    ///
    /// `shard_of(frame) = frame % S` is sound iff every interaction stays
    /// within one residue class:
    ///
    /// * channels — with page-frame interleaving, a fast frame `f` maps to
    ///   channel `f % fast_channels`, so `S` must divide `fast_channels`
    ///   (when the fast tier holds frames), and likewise `slow_channels`;
    ///   a slow frame's channel index shifts by `fast_frames`, so when both
    ///   tiers exist `S` must also divide `fast_frames`. Line-striped
    ///   interleaving spreads one page over all channels — never sharded;
    /// * migrations and blocking — a manager's swaps must stay within one
    ///   residue class, which [`MemoryManager::migration_domains`] attests:
    ///   `S` must divide the domain count, except for the `u32::MAX`
    ///   "unconstrained" sentinel (static placements that never migrate);
    /// * metadata fetches — the backing-store hash is pod-local, so domain
    ///   divisibility covers it; layouts with fewer fast frames than pods
    ///   fall back to a global hash and are never sharded.
    pub fn effective_shards(&self) -> u32 {
        if self.shards <= 1 {
            return 1;
        }
        let layout = self.mem.layout();
        if layout.interleave != Interleave::PageFrame {
            return 1;
        }
        let pods = u64::from(self.cfg.mgr.geometry.pods());
        if layout.fast_frames > 0 && layout.fast_frames < pods {
            return 1; // metadata backing store falls back to a global hash
        }
        let mut g = u64::from(self.shards);
        if layout.fast_frames > 0 {
            g = gcd(g, u64::from(layout.fast_channels));
        }
        if layout.slow_frames > 0 {
            g = gcd(g, u64::from(layout.slow_channels));
        }
        if layout.fast_frames > 0 && layout.slow_frames > 0 {
            g = gcd(g, layout.fast_frames);
        }
        let domains = self.mgr.migration_domains();
        if domains != u32::MAX {
            g = gcd(g, u64::from(domains));
        }
        u32::try_from(g.max(1)).unwrap_or(1)
    }

    /// Runs the trace to completion and reports metrics.
    ///
    /// Dispatches to the sequential loop (the default) or, when
    /// [`with_shards`](Simulator::with_shards) resolved to more than one
    /// effective shard, to the sharded loop — the two produce bit-identical
    /// reports.
    ///
    /// With the `debug-invariants` feature enabled, an
    /// [`InvariantAuditor`](mempod_audit::InvariantAuditor) checks the
    /// manager's remap/segment invariants, the DRAM channels' monotonic
    /// simulated time, and migration-count conservation between the
    /// manager's tracker and this engine at sampled epoch boundaries, and
    /// panics at the end of the run if any invariant was violated.
    pub fn run(mut self, trace: &Trace) -> SimReport {
        let shards = self.effective_shards();
        if self.tel.is_enabled() {
            self.mem.attach_probes();
        }
        self.attach_channel_faults();
        if shards <= 1 {
            self.run_sequential(trace)
        } else {
            self.run_sharded(trace, shards)
        }
    }

    /// Runs the sequential reference path regardless of any configured
    /// shard count — the ground truth the sharded path's differential
    /// tests and benchmarks compare against.
    #[cfg(any(test, feature = "reference-sim"))]
    pub fn run_reference(mut self, trace: &Trace) -> SimReport {
        if self.tel.is_enabled() {
            self.mem.attach_probes();
        }
        self.attach_channel_faults();
        self.run_sequential(trace)
    }

    /// Attaches per-channel fault streams before the system is (possibly)
    /// sharded: streams are keyed by global channel index and travel with
    /// their channels through `into_shards`, so every shard count draws
    /// exactly the same fault windows.
    fn attach_channel_faults(&mut self) {
        if let Some(plan) = self.fault_plan() {
            if plan.config().channel_fault_ppm > 0 {
                self.mem.attach_faults(&plan);
            }
        }
    }

    /// The sequential event loop: one shard over the whole memory system,
    /// advanced request by request.
    fn run_sequential(mut self, trace: &Trace) -> SimReport {
        let mut report = SimReport::new(trace.name(), self.cfg.manager);
        report.requests = trace.len() as u64;
        #[cfg(feature = "debug-invariants")]
        let mut auditor = mempod_audit::InvariantAuditor::new(
            format!("{} on {}", self.cfg.manager, trace.name()),
            8,
        );

        let telemetry_on = self.tel.is_enabled();
        let events_wanted = self.tel.wants_events();
        let mut driver = if telemetry_on {
            EpochDriver::new(self.cfg.mgr.epoch)
        } else {
            None
        };
        let mut requests_so_far = 0u64;
        let mut miss_run = 0u64;
        let mut progress_batch = 0u64;

        let plan = self.fault_plan();
        let mut faulted_migrations = 0u64;
        let mut cancelled = false;

        let span_cfg = self.tel.span_config();
        let mut ledger = telemetry_on
            .then(|| ProvenanceLedger::new(self.mem.layout().fast_frames, self.cfg.mgr.epoch));

        let pods = self.cfg.mgr.geometry.pods();
        let mut eng = Shard::new(self.mem, pods, events_wanted, span_cfg.is_some());
        if let Some(p) = &plan {
            eng.backoff_base = p.config().migration_backoff;
            eng.backoff_cap = p.config().migration_backoff_cap;
        }

        for req in trace.requests() {
            // Deterministic cancellation: the token is polled only at
            // progress-batch boundaries, so a cancelled run always stops
            // after a whole number of batches (`requests` a multiple of
            // PROGRESS_BATCH) regardless of when the watchdog's store
            // lands mid-batch — and the flushed progress counter equals
            // the partial request count exactly.
            if requests_so_far.is_multiple_of(PROGRESS_BATCH)
                && self
                    .cancel
                    .as_ref()
                    .is_some_and(|c| c.load(Ordering::Acquire))
            {
                cancelled = true;
                break;
            }
            eng.pump(req.arrival);
            if events_wanted {
                eng.flush_events_into(&mut self.tel);
            }
            if let Some(d) = driver.as_mut() {
                if d.crosses(req.arrival) {
                    let mut view = engine_view(std::slice::from_ref(&eng));
                    d.observe(
                        req.arrival,
                        requests_so_far,
                        &*self.mgr,
                        &mut view,
                        &mut self.tel,
                    );
                }
            }

            let outcome = self.mgr.on_access(req);
            if telemetry_on {
                if outcome.meta_miss {
                    miss_run += 1;
                } else if miss_run > 0 {
                    if miss_run >= META_MISS_BURST_MIN {
                        self.tel.event(
                            req.arrival.as_ps(),
                            EventKind::MetaMissBurst { len: miss_run },
                        );
                    }
                    miss_run = 0;
                }
            }
            #[cfg(feature = "debug-invariants")]
            let crossed_boundary = !outcome.migrations.is_empty();
            for (m, spec) in decide_migration_faults(
                self.mgr.as_mut(),
                plan.as_ref(),
                outcome.migrations,
                req.arrival,
                &mut faulted_migrations,
            ) {
                if let Some(ldg) = ledger.as_mut() {
                    for pong in ldg.record(&m, req.arrival, spec.is_some_and(|s| s.permanent)) {
                        self.tel.event(
                            req.arrival.as_ps(),
                            EventKind::PagePingPong {
                                page: pong.page,
                                round_trip_ps: pong.round_trip_ps,
                                trips: pong.trips,
                            },
                        );
                    }
                }
                eng.enqueue_migration(m, req.arrival, spec);
            }
            #[cfg(feature = "debug-invariants")]
            if crossed_boundary && auditor.should_sample() {
                self.mgr.audit_invariants(&mut auditor);
                eng.mem.audit_invariants(&mut auditor);
                auditor.check_conserved(
                    "migrations: manager tracker vs engine",
                    self.mgr.migration_stats().migrations,
                    eng.migs.len() as u64,
                );
            }

            let w = Waiter {
                arrival: req.arrival,
                issue: req.arrival + outcome.stall,
                frame: outcome.frame,
                line: outcome.line_in_page,
                kind: req.kind,
                needs_meta: outcome.meta_miss,
                page: req.addr.page(),
                span: request_span(
                    span_cfg,
                    req.addr.page().0,
                    outcome.line_in_page,
                    req.arrival,
                ),
            };
            eng.admit(req.addr.page(), w);
            requests_so_far += 1;
            if self.progress.is_some() {
                progress_batch += 1;
                if progress_batch == PROGRESS_BATCH {
                    if let Some(p) = &self.progress {
                        p.fetch_add(PROGRESS_BATCH, Ordering::Relaxed);
                    }
                    progress_batch = 0;
                }
            }
            eng.maybe_prune(req.arrival);
            if events_wanted {
                eng.flush_events_into(&mut self.tel);
            }
        }

        // Flush: completions may spawn write phases and parked accesses.
        eng.pump(Picos::MAX);
        if events_wanted {
            eng.flush_events_into(&mut self.tel);
        }
        if let Some(p) = &self.progress {
            p.fetch_add(progress_batch, Ordering::Relaxed);
        }
        if telemetry_on && miss_run >= META_MISS_BURST_MIN {
            self.tel.event(
                trace.duration().as_ps(),
                EventKind::MetaMissBurst { len: miss_run },
            );
        }
        if let Some(d) = driver.as_mut() {
            let mut view = engine_view(std::slice::from_ref(&eng));
            d.finalize(
                trace.duration(),
                requests_so_far,
                &*self.mgr,
                &mut view,
                &mut self.tel,
            );
        }
        assert!(eng.owners_empty(), "requests lost in the memory system");
        debug_assert!(eng.migs.iter().all(|e| e.done && e.waiters.is_empty()));
        #[cfg(feature = "debug-invariants")]
        {
            // End-of-run pass: every invariant is checked at least once even
            // if no epoch boundary was sampled.
            self.mgr.audit_invariants(&mut auditor);
            eng.mem.audit_invariants(&mut auditor);
            auditor.check_conserved(
                "migrations: manager tracker vs engine",
                self.mgr.migration_stats().migrations,
                eng.migs.len() as u64,
            );
            auditor.assert_clean();
        }

        report.total_stall = eng.total_stall;
        report.duration = trace.duration();
        report.migration = self.mgr.migration_stats().clone();
        report.meta_cache = self.mgr.meta_cache_stats();
        report.injected_migration_requests = eng.injected_migration;
        report.injected_meta_requests = eng.injected_meta;
        report.mem_stats = eng.mem.stats();
        report.faults.migration_faults = faulted_migrations;
        report.faults.migration_retries = eng.fault_retries;
        report.faults.migration_aborts = eng.fault_aborts;
        report.faults.channel_faults = report.mem_stats.total().faults_injected;
        report.provenance = ledger.as_ref().map(ProvenanceLedger::summary);
        if cancelled {
            report.faults.cancelled = true;
            report.requests = requests_so_far;
        }
        self.tel.flush();
        report.timeline = self.tel.ring.drain();
        report
    }

    /// The sharded event loop: admission on this thread, shard phases
    /// between barriers, telemetry merged deterministically at each
    /// barrier.
    fn run_sharded(mut self, trace: &Trace, n: u32) -> SimReport {
        let mut report = SimReport::new(trace.name(), self.cfg.manager);
        report.requests = trace.len() as u64;
        #[cfg(feature = "debug-invariants")]
        let mut auditor = mempod_audit::InvariantAuditor::new(
            format!("{} on {} ({n} shards)", self.cfg.manager, trace.name()),
            8,
        );

        let telemetry_on = self.tel.is_enabled();
        let events_wanted = self.tel.wants_events();
        let mut driver = if telemetry_on {
            EpochDriver::new(self.cfg.mgr.epoch)
        } else {
            None
        };
        let mut requests_so_far = 0u64;
        let mut miss_run = 0u64;
        let mut progress_batch = 0u64;

        let plan = self.fault_plan();
        let mut faulted_migrations = 0u64;
        let mut cancelled = false;

        let span_cfg = self.tel.span_config();
        let mut ledger = telemetry_on
            .then(|| ProvenanceLedger::new(self.mem.layout().fast_frames, self.cfg.mgr.epoch));

        let pods = self.cfg.mgr.geometry.pods();
        let nu = u64::from(n);
        // Leave a fresh (never-run) system in `self.mem` so `self` stays
        // whole: the degrade path below rebuilds a sequential run from the
        // configuration if a shard worker panics.
        let layout = *self.mem.layout();
        let mem = std::mem::replace(&mut self.mem, MemorySystem::new(layout));
        let mut set = ShardSet {
            shards: mem
                .into_shards(n)
                .into_iter()
                .map(|mem| Shard::new(mem, pods, events_wanted, span_cfg.is_some()))
                .collect(),
        };
        if let Some(p) = &plan {
            for sh in &mut set.shards {
                sh.backoff_base = p.config().migration_backoff;
                sh.backoff_cap = p.config().migration_backoff_cap;
            }
            if let Some(wp) = p.config().worker_panic {
                set.shards[usize_from_u32(wp.shard % n)].panic_at_batch = Some(wp.batch);
            }
        }
        let shards = &mut set.shards;

        let serial = self.serial_shards;
        let clock = self.phase_clock.clone();
        // Observability-only: wall-clock phase accounting for the scaling
        // benchmark; nothing simulated ever reads it.
        let mut admit_start = clock.as_ref().map(|_| Instant::now());

        let mut arrivals: Vec<Picos> = Vec::with_capacity(BATCH_TICKS + 1);
        let mut work: Vec<Vec<(u32, WorkItem)>> = (0..n).map(|_| Vec::new()).collect();
        let mut main_events: Vec<(u64, EventKind)> = Vec::new();
        let exec_spans = span_cfg.is_some_and(|sc| sc.exec_spans);
        let mut exec_seq = 0u64;
        #[cfg(feature = "debug-invariants")]
        let mut batch_migrated = false;

        for req in trace.requests() {
            // Deterministic cancellation: poll only while the arrival
            // batch is empty — i.e. at barrier boundaries — so a
            // cancelled sharded run always stops between whole barrier
            // intervals, never mid-batch, matching the sequential path's
            // progress-batch quantization.
            if arrivals.is_empty()
                && self
                    .cancel
                    .as_ref()
                    .is_some_and(|c| c.load(Ordering::Acquire))
            {
                cancelled = true;
                break;
            }
            let crossing = driver.as_ref().is_some_and(|d| d.crosses(req.arrival));
            if crossing && !(arrivals.is_empty() && requests_so_far == 0) {
                // Pre-pump round: bring every shard to this arrival so the
                // epoch snapshot observes exactly the state the sequential
                // loop (pump, then observe) would have. The next batch
                // re-pumps to the same horizon, which is a no-op.
                arrivals.push(req.arrival);
                if let Err(shard) = barrier(
                    shards,
                    &mut arrivals,
                    &mut work,
                    serial,
                    clock.as_deref(),
                    &mut admit_start,
                    &mut self.tel,
                    &mut main_events,
                    events_wanted,
                    exec_spans.then_some(&mut exec_seq),
                ) {
                    let flushed = requests_so_far - progress_batch;
                    return self.degrade(trace, shard, flushed, req.arrival);
                }
            }
            if let Some(d) = driver.as_mut().filter(|_| crossing) {
                let mut view = engine_view(shards);
                d.observe(
                    req.arrival,
                    requests_so_far,
                    &*self.mgr,
                    &mut view,
                    &mut self.tel,
                );
            }

            let tick = u32_from_u64(u64_from_usize(arrivals.len()));
            arrivals.push(req.arrival);

            let outcome = self.mgr.on_access(req);
            if telemetry_on {
                if outcome.meta_miss {
                    miss_run += 1;
                } else if miss_run > 0 {
                    if miss_run >= META_MISS_BURST_MIN && events_wanted {
                        main_events.push((
                            req.arrival.as_ps(),
                            EventKind::MetaMissBurst { len: miss_run },
                        ));
                    }
                    miss_run = 0;
                }
            }
            #[cfg(feature = "debug-invariants")]
            {
                batch_migrated |= !outcome.migrations.is_empty();
            }
            for (m, spec) in decide_migration_faults(
                self.mgr.as_mut(),
                plan.as_ref(),
                outcome.migrations,
                req.arrival,
                &mut faulted_migrations,
            ) {
                if let Some(ldg) = ledger.as_mut() {
                    for pong in ldg.record(&m, req.arrival, spec.is_some_and(|s| s.permanent)) {
                        if events_wanted {
                            main_events.push((
                                req.arrival.as_ps(),
                                EventKind::PagePingPong {
                                    page: pong.page,
                                    round_trip_ps: pong.round_trip_ps,
                                    trips: pong.trips,
                                },
                            ));
                        }
                    }
                }
                let s = usize_from_u64(m.frame_a.0 % nu);
                work[s].push((tick, WorkItem::Migrate(m, spec)));
            }

            let w = Waiter {
                arrival: req.arrival,
                issue: req.arrival + outcome.stall,
                frame: outcome.frame,
                line: outcome.line_in_page,
                kind: req.kind,
                needs_meta: outcome.meta_miss,
                page: req.addr.page(),
                span: request_span(
                    span_cfg,
                    req.addr.page().0,
                    outcome.line_in_page,
                    req.arrival,
                ),
            };
            let s = usize_from_u64(outcome.frame.0 % nu);
            work[s].push((
                tick,
                WorkItem::Admit {
                    page: req.addr.page(),
                    w,
                },
            ));
            requests_so_far += 1;
            if self.progress.is_some() {
                progress_batch += 1;
                if progress_batch == PROGRESS_BATCH {
                    if let Some(p) = &self.progress {
                        p.fetch_add(PROGRESS_BATCH, Ordering::Relaxed);
                    }
                    progress_batch = 0;
                }
            }

            if arrivals.len() >= BATCH_TICKS {
                if let Err(shard) = barrier(
                    shards,
                    &mut arrivals,
                    &mut work,
                    serial,
                    clock.as_deref(),
                    &mut admit_start,
                    &mut self.tel,
                    &mut main_events,
                    events_wanted,
                    exec_spans.then_some(&mut exec_seq),
                ) {
                    let flushed = requests_so_far - progress_batch;
                    return self.degrade(trace, shard, flushed, req.arrival);
                }
                #[cfg(feature = "debug-invariants")]
                if batch_migrated && auditor.should_sample() {
                    self.mgr.audit_invariants(&mut auditor);
                    for sh in shards.iter() {
                        sh.mem.audit_invariants(&mut auditor);
                    }
                    auditor.check_conserved(
                        "migrations: manager tracker vs engine",
                        self.mgr.migration_stats().migrations,
                        shards.iter().map(|sh| sh.migs.len() as u64).sum::<u64>(),
                    );
                }
                #[cfg(feature = "debug-invariants")]
                {
                    batch_migrated = false;
                }
            }
        }

        // Final round: every shard pumps to the end of time so completions
        // can spawn write phases and parked accesses.
        arrivals.push(Picos::MAX);
        if let Err(shard) = barrier(
            shards,
            &mut arrivals,
            &mut work,
            serial,
            clock.as_deref(),
            &mut admit_start,
            &mut self.tel,
            &mut main_events,
            events_wanted,
            exec_spans.then_some(&mut exec_seq),
        ) {
            let flushed = requests_so_far - progress_batch;
            return self.degrade(trace, shard, flushed, trace.duration());
        }

        if let Some(p) = &self.progress {
            p.fetch_add(progress_batch, Ordering::Relaxed);
        }
        if telemetry_on && miss_run >= META_MISS_BURST_MIN {
            self.tel.event(
                trace.duration().as_ps(),
                EventKind::MetaMissBurst { len: miss_run },
            );
        }
        if let Some(d) = driver.as_mut() {
            let mut view = engine_view(shards);
            d.finalize(
                trace.duration(),
                requests_so_far,
                &*self.mgr,
                &mut view,
                &mut self.tel,
            );
        }
        for sh in shards.iter() {
            assert!(sh.owners_empty(), "requests lost in the memory system");
        }
        debug_assert!(shards
            .iter()
            .all(|sh| sh.migs.iter().all(|e| e.done && e.waiters.is_empty())));
        #[cfg(feature = "debug-invariants")]
        {
            // End-of-run pass: every invariant is checked at least once even
            // if no batch boundary was sampled.
            self.mgr.audit_invariants(&mut auditor);
            for sh in shards.iter() {
                sh.mem.audit_invariants(&mut auditor);
            }
            auditor.check_conserved(
                "migrations: manager tracker vs engine",
                self.mgr.migration_stats().migrations,
                shards.iter().map(|sh| sh.migs.len() as u64).sum::<u64>(),
            );
            auditor.assert_clean();
        }

        report.total_stall = shards
            .iter()
            .fold(Picos::ZERO, |acc, sh| acc + sh.total_stall);
        report.duration = trace.duration();
        report.migration = self.mgr.migration_stats().clone();
        report.meta_cache = self.mgr.meta_cache_stats();
        report.injected_migration_requests = shards.iter().map(|sh| sh.injected_migration).sum();
        report.injected_meta_requests = shards.iter().map(|sh| sh.injected_meta).sum();
        let mut stats = SystemStats::default();
        for sh in shards.iter() {
            stats.merge(&sh.mem.stats());
        }
        report.mem_stats = stats;
        report.faults.migration_faults = faulted_migrations;
        report.faults.migration_retries = shards.iter().map(|sh| sh.fault_retries).sum();
        report.faults.migration_aborts = shards.iter().map(|sh| sh.fault_aborts).sum();
        report.faults.channel_faults = report.mem_stats.total().faults_injected;
        report.provenance = ledger.as_ref().map(ProvenanceLedger::summary);
        if cancelled {
            report.faults.cancelled = true;
            report.requests = requests_so_far;
        }
        self.tel.flush();
        report.timeline = self.tel.ring.drain();
        report
    }

    /// Recovers from a shard-worker panic by restarting the whole trace on
    /// the sequential reference path — the ground truth the sharded run
    /// would have reproduced bit for bit. The panicked run's partial engine
    /// state is discarded; the manager and memory system are rebuilt from
    /// the configuration, so the degraded report is exactly what a
    /// sequential run would have produced, flagged with the panic.
    ///
    /// Progress already flushed to the live counter is compensated with a
    /// `fetch_sub` before the rerun re-counts from zero. Telemetry emitted
    /// before the panic stays in the sink (it faithfully observed the
    /// prefix); the rerun's stream follows the [`EventKind::ShardPanic`] /
    /// [`EventKind::DegradedToSequential`] markers.
    fn degrade(mut self, trace: &Trace, shard: u32, flushed_progress: u64, t: Picos) -> SimReport {
        let cause = EngineError::ShardWorkerPanicked { shard };
        eprintln!("warning: {cause}; degrading to the sequential reference path");
        let t = t.min(trace.duration());
        self.tel.event(t.as_ps(), EventKind::ShardPanic { shard });
        self.tel
            .event(t.as_ps(), EventKind::DegradedToSequential { shard });
        if let Some(p) = &self.progress {
            p.fetch_sub(flushed_progress, Ordering::Relaxed);
        }
        // `self.mem` holds a fresh, never-run replacement system over the
        // same layout (see `run_sharded`), so rebuilding validates.
        let layout = *self.mem.layout();
        let mut sim = match Simulator::with_layout(self.cfg.clone(), layout) {
            Ok(sim) => sim,
            Err(e) => {
                // Unreachable: the config validated when `self` was built.
                // Recovery path, so degrade once more instead of panicking.
                eprintln!("warning: cannot rebuild simulator after shard panic: {e}");
                let mut report = SimReport::new(trace.name(), self.cfg.manager);
                report.faults.shard_panics = 1;
                report.faults.degraded_to_sequential = true;
                return report;
            }
        };
        sim.tel = std::mem::replace(&mut self.tel, Telemetry::disabled());
        sim.progress = self.progress.clone();
        sim.cancel = self.cancel.clone();
        let mut report = sim.run(trace);
        report.faults.shard_panics += 1;
        report.faults.degraded_to_sequential = true;
        report
    }
}

/// The sampled request-service span id for one admission, or [`SPAN_NONE`]
/// when span tracing is off or the request is unsampled.
///
/// The identity mixes the request's *pre-translation* coordinates (page,
/// line offset, arrival) — values both event-loop paths see identically
/// before any sharding decision — so every shard count (and the sequential
/// reference) derives and samples the same span ids without coordination.
fn request_span(
    cfg: Option<mempod_telemetry::SpanConfig>,
    page: u64,
    line: u32,
    arrival: Picos,
) -> u64 {
    match cfg {
        Some(sc) => {
            let id = request_span_id(page, u64::from(line), arrival.as_ps());
            if sc.sample_request(id) {
                id
            } else {
                SPAN_NONE
            }
        }
        None => SPAN_NONE,
    }
}

/// Decides fault outcomes for one batch of committed migrations (on the
/// main thread, so every shard count sees identical verdicts) and rolls
/// the permanently-doomed ones back out of the manager's map in reverse
/// commit order. Returns `(migration, spec)` pairs in commit order for the
/// engine, which models the doomed attempts' timing but never moves their
/// data.
fn decide_migration_faults(
    mgr: &mut dyn MemoryManager,
    plan: Option<&FaultPlan>,
    migrations: Vec<Migration>,
    at: Picos,
    faulted: &mut u64,
) -> Vec<(Migration, Option<MigrationFaultSpec>)> {
    let decided: Vec<(Migration, Option<MigrationFaultSpec>)> = migrations
        .into_iter()
        .map(|m| {
            let spec = plan.and_then(|p| p.migration_spec(m.frame_a, m.frame_b, at));
            if spec.is_some() {
                *faulted += 1;
            }
            (m, spec)
        })
        .collect();
    for (m, spec) in decided.iter().rev() {
        if spec.is_some_and(|s| s.permanent) {
            let _ = mgr.rollback_migration(m);
        }
    }
    decided
}

/// One barrier: run the accumulated batch on every shard, merge the
/// buffered telemetry deterministically, and reset the batch.
///
/// With `exec_seq` set (execution-span tracing on), the barrier also emits
/// one [`SpanName::ShardBatch`] span per shard covering this batch's
/// simulated window (aux = work items routed to the shard) plus one
/// [`SpanName::Barrier`] marker, all in *simulated* time — wall clock
/// never reaches the event stream. The final flush batch (horizon
/// [`Picos::MAX`]) is skipped: it has no finite window to draw.
///
/// # Errors
///
/// Returns the index of the first (lowest-numbered) shard whose worker
/// panicked; the batch state is left as-is for the caller's degrade path
/// to inspect (and discard).
#[allow(clippy::too_many_arguments)]
fn barrier(
    shards: &mut [Shard],
    arrivals: &mut Vec<Picos>,
    work: &mut [Vec<(u32, WorkItem)>],
    serial: bool,
    clock: Option<&PhaseClock>,
    admit_start: &mut Option<Instant>,
    tel: &mut Telemetry,
    main_events: &mut Vec<(u64, EventKind)>,
    events_wanted: bool,
    exec_seq: Option<&mut u64>,
) -> Result<(), u32> {
    if arrivals.is_empty() {
        return Ok(());
    }
    if let (Some(c), Some(t0)) = (clock, admit_start.as_ref()) {
        c.record_admission(elapsed_ns(t0));
    }
    let window = exec_seq.map(|seq| {
        *seq += 1;
        (
            *seq,
            arrivals.first().map_or(0, |p| p.as_ps()),
            arrivals.last().map_or(0, |p| p.as_ps()),
            work.iter().map(Vec::len).collect::<Vec<usize>>(),
        )
    });
    run_batch(shards, arrivals, work, serial, clock)?;
    if let Some((seq, start, end, counts)) = window.filter(|&(_, _, end, _)| end != u64::MAX) {
        let exec_span = |id: u64, name: SpanName, start_ps: u64, shard: u32, aux: u64| SpanRecord {
            id,
            parent: SPAN_NONE,
            name,
            start_ps,
            end_ps: end,
            pod: None,
            frame: 0,
            shard,
            aux,
        };
        for (i, count) in counts.into_iter().enumerate() {
            let rec = exec_span(
                exec_span_id(u64_from_usize(i), seq),
                SpanName::ShardBatch,
                start,
                u32_from_u64(u64_from_usize(i)),
                u64_from_usize(count),
            );
            main_events.push((end, EventKind::Span(rec)));
        }
        let nshards = u64_from_usize(shards.len());
        let rec = exec_span(
            exec_span_id(nshards, seq),
            SpanName::Barrier,
            end,
            u32_from_u64(nshards),
            seq,
        );
        main_events.push((end, EventKind::Span(rec)));
    }
    if events_wanted {
        merge_events(tel, shards, main_events);
    }
    arrivals.clear();
    if let Some(t0) = admit_start.as_mut() {
        // Observability-only: wall-clock origin of the next admission
        // phase; never feeds simulated state.
        *t0 = Instant::now();
    }
    Ok(())
}

/// Runs one batch of ticks on every shard — on worker threads by default,
/// or serially on the calling thread when exact per-shard busy times are
/// wanted (shards are disjoint, so the results are identical either way).
///
/// # Errors
///
/// A worker panic (injected or real) is contained here — joined on the
/// threaded path, caught on the serial path — and reported as the index of
/// the first affected shard instead of unwinding through the barrier.
fn run_batch(
    shards: &mut [Shard],
    arrivals: &[Picos],
    work: &mut [Vec<(u32, WorkItem)>],
    serial: bool,
    clock: Option<&PhaseClock>,
) -> Result<(), u32> {
    let timed = clock.is_some();
    let mut panicked: Option<u32> = None;
    let busys: Vec<u64> = if serial || shards.len() == 1 {
        shards
            .iter_mut()
            .zip(work.iter_mut())
            .enumerate()
            .map(|(i, (s, w))| {
                // Observability-only: wall-clock busy-time measurement for
                // the phase clock; never feeds simulated state.
                let t0 = timed.then(Instant::now);
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    s.run_ticks(arrivals, w);
                }));
                if outcome.is_err() && panicked.is_none() {
                    panicked = Some(u32_from_u64(u64_from_usize(i)));
                }
                w.clear();
                t0.as_ref().map_or(0, elapsed_ns)
            })
            .collect()
    } else {
        thread::scope(|scope| {
            let handles: Vec<_> = shards
                .iter_mut()
                .zip(work.iter_mut())
                .map(|(s, w)| {
                    scope.spawn(move || {
                        // Observability-only: per-worker wall-clock busy
                        // time; accurate when cores >= shards, summarized
                        // by the phase clock either way.
                        let t0 = timed.then(Instant::now);
                        s.run_ticks(arrivals, w);
                        w.clear();
                        t0.as_ref().map_or(0, elapsed_ns)
                    })
                })
                .collect();
            handles
                .into_iter()
                .enumerate()
                .map(|(i, h)| match h.join() {
                    Ok(ns) => ns,
                    Err(_) => {
                        // Explicitly joining captures the unwind, so the
                        // scope does not re-raise it; the barrier reports
                        // the shard instead.
                        if panicked.is_none() {
                            panicked = Some(u32_from_u64(u64_from_usize(i)));
                        }
                        0
                    }
                })
                .collect()
        })
    };
    if let Some(shard) = panicked {
        return Err(shard);
    }
    if let Some(c) = clock {
        c.record_interval(&busys);
    }
    Ok(())
}

/// Nanoseconds elapsed since `t0`, saturating.
fn elapsed_ns(t0: &Instant) -> u64 {
    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Drains every shard's event buffer (plus the admission thread's, merged
/// last) through [`Telemetry::emit_merged`], then hands the emptied
/// buffers back so their capacity is reused.
fn merge_events(
    tel: &mut Telemetry,
    shards: &mut [Shard],
    main_events: &mut Vec<(u64, EventKind)>,
) {
    let mut bufs: Vec<Vec<(u64, EventKind)>> = Vec::with_capacity(shards.len() + 1);
    for s in shards.iter_mut() {
        bufs.push(std::mem::take(&mut s.events));
    }
    bufs.push(std::mem::take(main_events));
    tel.emit_merged(&mut bufs);
    let mut it = bufs.into_iter();
    for s in shards.iter_mut() {
        if let Some(buf) = it.next() {
            s.events = buf;
        }
    }
    if let Some(buf) = it.next() {
        *main_events = buf;
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use mempod_core::ManagerKind;
    use mempod_trace::{TraceGenerator, WorkloadSpec};
    use mempod_types::SystemConfig;

    fn demo_trace(n: usize) -> Trace {
        TraceGenerator::new(WorkloadSpec::hotcold_demo(), 42)
            .take_requests(n, &SystemConfig::tiny().geometry)
    }

    fn run(kind: ManagerKind, n: usize) -> SimReport {
        let cfg = SimConfig::new(SystemConfig::tiny(), kind);
        Simulator::new(cfg).expect("valid").run(&demo_trace(n))
    }

    #[test]
    fn every_manager_completes_a_short_trace() {
        for kind in ManagerKind::all() {
            let r = run(kind, 3_000);
            assert_eq!(r.requests, 3_000, "{kind}");
            assert!(r.ammat_ps().expect("has requests") > 0.0, "{kind}");
        }
    }

    #[test]
    fn hbm_only_beats_ddr_only() {
        let hbm = run(ManagerKind::HbmOnly, 5_000);
        let ddr = run(ManagerKind::DdrOnly, 5_000);
        assert!(
            hbm.ammat_ps() < ddr.ammat_ps(),
            "hbm={:?} ddr={:?}",
            hbm.ammat_ps(),
            ddr.ammat_ps()
        );
    }

    #[test]
    fn mempod_improves_on_no_migration_for_hot_cold() {
        // Long enough to amortize the warm-up epochs in which the hot set
        // migrates up (cumulative AMMAT includes that transient).
        let pod = run(ManagerKind::MemPod, 300_000);
        let tlm = run(ManagerKind::NoMigration, 300_000);
        assert!(pod.migration.migrations > 0);
        assert!(
            pod.ammat_ps() < tlm.ammat_ps(),
            "mempod={:?} tlm={:?}",
            pod.ammat_ps(),
            tlm.ammat_ps()
        );
    }

    #[test]
    fn migration_traffic_is_accounted() {
        let r = run(ManagerKind::MemPod, 40_000);
        assert_eq!(r.injected_migration_requests, r.migration.migrations * 128);
        assert_eq!(r.migration.bytes_moved, r.migration.migrations * 4096);
    }

    #[test]
    fn cameo_moves_most_data() {
        let cameo = run(ManagerKind::Cameo, 20_000);
        let pod = run(ManagerKind::MemPod, 20_000);
        assert!(cameo.migration.migrations > pod.migration.migrations * 2);
    }

    #[test]
    fn fast_service_fraction_grows_under_mempod() {
        let pod = run(ManagerKind::MemPod, 40_000);
        let tlm = run(ManagerKind::NoMigration, 40_000);
        assert!(
            pod.mem_stats.fast_service_fraction() > tlm.mem_stats.fast_service_fraction(),
            "pod={} tlm={}",
            pod.mem_stats.fast_service_fraction(),
            tlm.mem_stats.fast_service_fraction()
        );
    }

    #[test]
    fn meta_cache_adds_overhead() {
        let mut sys = SystemConfig::tiny();
        let free = Simulator::new(SimConfig::new(sys.clone(), ManagerKind::MemPod))
            .unwrap()
            .run(&demo_trace(20_000));
        sys.metadata_cache_bytes = Some(16 << 10);
        let cached = Simulator::new(SimConfig::new(sys, ManagerKind::MemPod))
            .unwrap()
            .run(&demo_trace(20_000));
        assert!(cached.injected_meta_requests > 0);
        assert!(cached.meta_cache.expect("stats").lookups > 0);
        assert!(
            cached.ammat_ps() > free.ammat_ps(),
            "cached={:?} free={:?}",
            cached.ammat_ps(),
            free.ammat_ps()
        );
    }

    #[test]
    fn deterministic_given_same_inputs() {
        let a = run(ManagerKind::Thm, 10_000);
        let b = run(ManagerKind::Thm, 10_000);
        assert_eq!(a.total_stall, b.total_stall);
        assert_eq!(a.migration.migrations, b.migration.migrations);
    }

    fn run_with_memory_sink(
        kind: ManagerKind,
        n: usize,
    ) -> (SimReport, Arc<mempod_sync::Mutex<Vec<String>>>) {
        let sink = mempod_telemetry::MemorySink::new();
        let lines = sink.handle();
        let cfg = SimConfig::new(SystemConfig::tiny(), kind);
        let report = Simulator::new(cfg)
            .expect("valid")
            .with_telemetry(Telemetry::with_sink(Box::new(sink)))
            .run(&demo_trace(n));
        (report, lines)
    }

    #[test]
    fn telemetry_run_populates_epoch_timeline() {
        let (report, _) = run_with_memory_sink(ManagerKind::MemPod, 40_000);
        assert!(
            !report.timeline.is_empty(),
            "a 40k-request hotcold trace spans multiple 50us epochs"
        );
        let last = report.timeline.last().expect("non-empty");
        // Cumulative fields are consistent with the report.
        assert!(last.requests <= report.requests);
        assert!(last.ammat_ps_so_far.is_some());
        // The probe was attached, so queue-depth percentiles exist in at
        // least one window with traffic.
        assert!(report
            .timeline
            .iter()
            .any(|s| s.queue_depth_p50.is_some() && s.queue_depth_p99.is_some()));
        // Percentile ordering holds wherever both are present.
        for s in &report.timeline {
            if let (Some(p50), Some(p99)) = (s.queue_depth_p50, s.queue_depth_p99) {
                assert!(p50 <= p99, "p50={p50} p99={p99}");
            }
        }
        // Epochs advance strictly.
        for w in report.timeline.windows(2) {
            assert!(w[0].epoch < w[1].epoch);
        }
        // MemPod migrated, and the timeline saw it happen.
        let migs: u64 = report.timeline.iter().map(|s| s.migrations_delta).sum();
        assert_eq!(migs, report.migration.migrations);
        let pod_bytes: u64 = report
            .timeline
            .iter()
            .flat_map(|s| s.per_pod_bytes_delta.iter().copied())
            .sum();
        assert_eq!(pod_bytes, report.migration.bytes_moved);
    }

    #[test]
    fn telemetry_sink_receives_migration_and_epoch_events() {
        let (report, lines) = run_with_memory_sink(ManagerKind::MemPod, 40_000);
        assert!(report.migration.migrations > 0);
        let lines = lines.lock().expect("sink mutex");
        // Events are externally tagged: {"kind":{"MigrationStart":{...}}}.
        let kind_count = |k: &str| {
            lines
                .iter()
                .filter(|l| l.contains(&format!("\"kind\":{{\"{k}\"")))
                .count() as u64
        };
        assert_eq!(kind_count("MigrationStart"), report.migration.migrations);
        assert_eq!(kind_count("MigrationComplete"), report.migration.migrations);
        assert_eq!(kind_count("RemapSwap"), report.migration.migrations);
        assert_eq!(kind_count("Epoch"), report.timeline.len() as u64);
        // Every line is valid JSON (round-trips through the vendored shim).
        for l in lines.iter() {
            let v: serde_json::Value = serde_json::from_str(l).expect("valid JSONL");
            assert!(v.get("t_ps").is_some(), "event carries a timestamp: {l}");
        }
    }

    #[test]
    fn telemetry_manager_counters_appear_in_snapshots() {
        let (report, _) = run_with_memory_sink(ManagerKind::MemPod, 40_000);
        let epochs: u64 = report
            .timeline
            .iter()
            .filter_map(|s| s.manager.get("mempod.epochs").copied())
            .sum();
        assert!(epochs > 0, "per-window mempod.epochs deltas sum > 0");
    }

    #[test]
    fn progress_counter_reaches_request_total() {
        let counter = Arc::new(AtomicU64::new(0));
        let cfg = SimConfig::new(SystemConfig::tiny(), ManagerKind::NoMigration);
        let report = Simulator::new(cfg)
            .expect("valid")
            .with_progress(Arc::clone(&counter))
            .run(&demo_trace(10_000));
        assert_eq!(counter.load(Ordering::Relaxed), report.requests);
    }

    fn run_sharded_with(kind: ManagerKind, n: usize, shards: u32) -> SimReport {
        let cfg = SimConfig::new(SystemConfig::tiny(), kind);
        Simulator::new(cfg)
            .expect("valid")
            .with_shards(shards)
            .run(&demo_trace(n))
    }

    fn run_reference_with(kind: ManagerKind, n: usize) -> SimReport {
        let cfg = SimConfig::new(SystemConfig::tiny(), kind);
        Simulator::new(cfg)
            .expect("valid")
            .run_reference(&demo_trace(n))
    }

    #[test]
    fn effective_shards_respects_channels_pods_and_domains() {
        let sim = |kind: ManagerKind, req: u32| {
            Simulator::new(SimConfig::new(SystemConfig::tiny(), kind))
                .expect("valid")
                .with_shards(req)
                .effective_shards()
        };
        // MemPod: gcd(requested, 8 fast ch, 4 slow ch, 2048 fast frames,
        // 4 pods) -- capped at 4 by the slow channels and pod count.
        assert_eq!(sim(ManagerKind::MemPod, 1), 1);
        assert_eq!(sim(ManagerKind::MemPod, 2), 2);
        assert_eq!(sim(ManagerKind::MemPod, 4), 4);
        assert_eq!(sim(ManagerKind::MemPod, 8), 4);
        assert_eq!(sim(ManagerKind::MemPod, 3), 1);
        // Single-domain managers never shard.
        assert_eq!(sim(ManagerKind::Hma, 8), 1);
        assert_eq!(sim(ManagerKind::Thm, 8), 1);
        assert_eq!(sim(ManagerKind::Cameo, 8), 1);
        // Statics are unconstrained by domains: HBM-only has 8 fast
        // channels and no slow tier.
        assert_eq!(sim(ManagerKind::HbmOnly, 8), 8);
        assert_eq!(sim(ManagerKind::DdrOnly, 8), 4);
    }

    #[test]
    fn sharded_runs_match_the_reference_bit_for_bit() {
        for kind in [
            ManagerKind::MemPod,
            ManagerKind::NoMigration,
            ManagerKind::HbmOnly,
        ] {
            let reference = run_reference_with(kind, 30_000);
            for shards in [2u32, 4, 8] {
                let sharded = run_sharded_with(kind, 30_000, shards);
                assert_eq!(reference, sharded, "{kind} diverged at {shards} shards");
            }
        }
    }

    #[test]
    fn sharded_telemetry_matches_reference_timeline_and_events() {
        let trace = demo_trace(40_000);
        let run = |shards: Option<u32>| {
            let sink = mempod_telemetry::MemorySink::new();
            let lines = sink.handle();
            let cfg = SimConfig::new(SystemConfig::tiny(), ManagerKind::MemPod);
            let sim = Simulator::new(cfg)
                .expect("valid")
                .with_telemetry(Telemetry::with_sink(Box::new(sink)));
            let report = match shards {
                Some(k) => sim.with_shards(k).run(&trace),
                None => sim.run_reference(&trace),
            };
            let mut lines = lines.lock().expect("sink mutex").clone();
            // The sharded stream merges per barrier interval in
            // timestamp-then-shard order, which may permute same-instant
            // lines relative to sequential emission -- compare as multisets.
            lines.sort();
            (report, lines)
        };
        let (ref_report, ref_lines) = run(None);
        let (shard_report, shard_lines) = run(Some(4));
        assert_eq!(ref_report, shard_report);
        assert_eq!(ref_report.timeline, shard_report.timeline);
        assert_eq!(ref_lines, shard_lines);
    }

    /// The causal span stream (requests at full sampling + migration
    /// lifecycles, execution spans off) is byte-identical — modulo sink
    /// buffering order, hence the sort — between the sequential reference
    /// and every accepted shard count.
    #[test]
    fn traced_runs_are_bit_identical_across_shard_counts() {
        let trace = demo_trace(40_000);
        let run = |shards: Option<u32>| {
            let sink = mempod_telemetry::MemorySink::new();
            let lines = sink.handle();
            let cfg = SimConfig::new(SystemConfig::tiny(), ManagerKind::MemPod);
            let sim = Simulator::new(cfg).expect("valid").with_telemetry(
                Telemetry::with_sink(Box::new(sink))
                    .with_spans(mempod_telemetry::SpanConfig::full()),
            );
            let report = match shards {
                Some(k) => sim.with_shards(k).run(&trace),
                None => sim.run_reference(&trace),
            };
            let mut lines = lines.lock().expect("sink mutex").clone();
            lines.sort();
            (report, lines)
        };
        let (ref_report, ref_lines) = run(None);
        assert!(
            ref_lines.iter().any(|l| l.contains("\"Request\"")),
            "request spans were traced"
        );
        assert!(
            ref_lines.iter().any(|l| l.contains("\"Migration\"")),
            "migration lifecycle spans were traced"
        );
        for k in [2, 4, 8] {
            let (shard_report, shard_lines) = run(Some(k));
            assert_eq!(ref_report, shard_report, "{k} shards: report");
            assert_eq!(ref_lines, shard_lines, "{k} shards: span stream");
        }
    }

    /// Execution spans are opt-in, live on their own (per-shard-count)
    /// tracks, and never contaminate the causal stream.
    #[test]
    fn exec_spans_attribute_batches_to_shards() {
        let trace = demo_trace(20_000);
        let sink = mempod_telemetry::MemorySink::new();
        let lines = sink.handle();
        let cfg = SimConfig::new(SystemConfig::tiny(), ManagerKind::MemPod);
        let report = Simulator::new(cfg)
            .expect("valid")
            .with_telemetry(Telemetry::with_sink(Box::new(sink)).with_spans(
                mempod_telemetry::SpanConfig {
                    request_sample_ppm: 0,
                    exec_spans: true,
                },
            ))
            .with_shards(4)
            .run(&trace);
        assert!(report.requests > 0);
        let lines = lines.lock().expect("sink mutex").clone();
        assert!(
            lines.iter().any(|l| l.contains("\"ShardBatch\"")),
            "shard batch windows were traced"
        );
        assert!(
            lines.iter().any(|l| l.contains("\"Barrier\"")),
            "barrier crossings were traced"
        );
        // Requests were sampled out entirely.
        assert!(!lines.iter().any(|l| l.contains("\"Request\"")));
    }

    #[test]
    fn serial_shards_and_phase_clock_do_not_change_results() {
        let clock = Arc::new(mempod_telemetry::PhaseClock::new(4));
        let cfg = SimConfig::new(SystemConfig::tiny(), ManagerKind::MemPod);
        let timed = Simulator::new(cfg)
            .expect("valid")
            .with_shards(4)
            .with_serial_shards(true)
            .with_phase_clock(Arc::clone(&clock))
            .run(&demo_trace(30_000));
        assert_eq!(timed, run_reference_with(ManagerKind::MemPod, 30_000));
        assert!(clock.barriers() > 0, "barriers were recorded");
        assert!(clock.critical_path_ns() > 0);
        assert_eq!(clock.shard_busy_ns().len(), 4);
    }

    mod shard_count_properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(12))]
            /// The report is a pure function of the trace and manager --
            /// never of the shard count.
            #[test]
            fn shard_count_never_changes_the_report(
                shards in 1u32..=8,
                n in 2_000usize..6_000,
                kind_idx in 0usize..3,
            ) {
                let kind = [
                    ManagerKind::MemPod,
                    ManagerKind::NoMigration,
                    ManagerKind::HbmOnly,
                ][kind_idx];
                let reference = run_reference_with(kind, n);
                let sharded = run_sharded_with(kind, n, shards);
                prop_assert_eq!(reference, sharded);
            }
        }
    }

    #[test]
    fn disabled_telemetry_leaves_no_timeline_and_matches_enabled_results() {
        let plain = run(ManagerKind::MemPod, 20_000);
        assert!(plain.timeline.is_empty());
        let (telem, _) = run_with_memory_sink(ManagerKind::MemPod, 20_000);
        // Observation must not perturb the simulation.
        assert_eq!(plain.total_stall, telem.total_stall);
        assert_eq!(plain.migration.migrations, telem.migration.migrations);
    }

    #[test]
    fn forced_worker_panic_degrades_to_sequential_and_matches_reference() {
        use mempod_types::{FaultConfig, WorkerPanic};
        let mut cfg = SimConfig::new(SystemConfig::tiny(), ManagerKind::MemPod);
        let mut f = FaultConfig::quiet(5);
        f.worker_panic = Some(WorkerPanic { shard: 1, batch: 2 });
        cfg.faults = Some(f);
        let mut degraded = Simulator::new(cfg)
            .expect("valid")
            .with_shards(4)
            .run(&demo_trace(20_000));
        assert!(degraded.faults.degraded_to_sequential);
        assert_eq!(degraded.faults.shard_panics, 1);
        // Apart from the recovery accounting, the degraded run must be
        // bit-identical to a clean sequential run: fault decisions are pure
        // functions, so the restart replays the exact same simulation.
        degraded.faults.shard_panics = 0;
        degraded.faults.degraded_to_sequential = false;
        let clean = run_reference_with(ManagerKind::MemPod, 20_000);
        assert_eq!(degraded, clean);
    }

    #[test]
    fn forced_worker_panic_reaches_telemetry() {
        use mempod_types::{FaultConfig, WorkerPanic};
        let sink = mempod_telemetry::MemorySink::new();
        let lines = sink.handle();
        let mut cfg = SimConfig::new(SystemConfig::tiny(), ManagerKind::MemPod);
        let mut f = FaultConfig::quiet(5);
        f.worker_panic = Some(WorkerPanic { shard: 0, batch: 1 });
        cfg.faults = Some(f);
        let report = Simulator::new(cfg)
            .expect("valid")
            .with_shards(4)
            .with_telemetry(Telemetry::with_sink(Box::new(sink)))
            .run(&demo_trace(10_000));
        assert!(report.faults.degraded_to_sequential);
        let lines = lines.lock().expect("sink mutex");
        assert!(lines.iter().any(|l| l.contains("ShardPanic")));
        assert!(lines.iter().any(|l| l.contains("DegradedToSequential")));
    }

    #[test]
    fn pre_cancelled_runs_stop_early_and_say_so() {
        for shards in [1u32, 4] {
            let token = Arc::new(AtomicBool::new(true));
            let cfg = SimConfig::new(SystemConfig::tiny(), ManagerKind::MemPod);
            let r = Simulator::new(cfg)
                .expect("valid")
                .with_shards(shards)
                .with_cancel(Arc::clone(&token))
                .run(&demo_trace(5_000));
            assert!(r.faults.cancelled, "{shards} shards");
            assert_eq!(r.requests, 0, "{shards} shards");
        }
    }

    #[test]
    fn mid_run_cancellation_stops_on_a_batch_boundary_with_exact_progress() {
        // Whenever the watchdog's store lands, the sequential loop only
        // honours it at a progress-batch boundary: the partial request
        // count is a whole number of batches and the flushed progress
        // counter equals it exactly (no trailing unflushed remainder).
        let token = Arc::new(AtomicBool::new(false));
        let counter = Arc::new(AtomicU64::new(0));
        let cfg = SimConfig::new(SystemConfig::tiny(), ManagerKind::MemPod);
        let sim = Simulator::new(cfg)
            .expect("valid")
            .with_cancel(Arc::clone(&token))
            .with_progress(Arc::clone(&counter));
        let trace = demo_trace(300_000);
        let arm = Arc::clone(&token);
        let watchdog = thread::spawn(move || {
            thread::sleep(std::time::Duration::from_millis(2));
            arm.store(true, Ordering::Release);
        });
        let r = sim.run(&trace);
        watchdog.join().expect("watchdog thread");
        if r.faults.cancelled {
            assert!(r.requests < 300_000, "stopped early");
            assert_eq!(r.requests % PROGRESS_BATCH, 0, "batch-quantized stop");
        } else {
            // The machine outran the 2ms fuse; the run completed instead.
            assert_eq!(r.requests, 300_000);
        }
        assert_eq!(counter.load(Ordering::Relaxed), r.requests);
    }

    #[test]
    fn progress_board_stays_consistent_across_shard_panic_degradation() {
        // Satellite: a shard panic mid-run degrades to the sequential
        // reference; the shared progress counter must roll back the
        // partial sharded credit and land exactly on the final request
        // count — never double-counting replayed work.
        use mempod_types::{FaultConfig, WorkerPanic};
        let counter = Arc::new(AtomicU64::new(0));
        let mut cfg = SimConfig::new(SystemConfig::tiny(), ManagerKind::MemPod);
        let mut f = FaultConfig::quiet(5);
        f.worker_panic = Some(WorkerPanic { shard: 1, batch: 2 });
        cfg.faults = Some(f);
        let r = Simulator::new(cfg)
            .expect("valid")
            .with_shards(4)
            .with_progress(Arc::clone(&counter))
            .run(&demo_trace(20_000));
        assert!(r.faults.degraded_to_sequential);
        assert_eq!(r.requests, 20_000);
        assert_eq!(counter.load(Ordering::Relaxed), r.requests);
    }
}
