//! The simulation event loop.
//!
//! The simulator is event-driven and **never advances the memory system
//! past the trace frontier**: channels drain only up to the current
//! request's arrival, so foreground and injected traffic contend exactly
//! when they would in the machine. Anything that must wait for an unknown
//! completion time is *deferred* and woken by that completion:
//!
//! * a triggered [`Migration`] becomes a state machine — its 2×N reads are
//!   injected (background priority), the write-backs launch when the last
//!   read completes, and the two involved pages stay blocked until the last
//!   write completes (paper §4.3/§6.2);
//! * a foreground access to a blocked page parks on the migration and is
//!   dispatched at its release;
//! * a metadata-cache miss injects one read to the backing store in fast
//!   memory (paper §6.3.3); the access parks on the fetch.
//!
//! AMMAT = foreground stall (completion − original arrival, including all
//! gating) / original request count — the paper's fixed-denominator
//! formulation (§6.2). Injected traffic contributes through contention and
//! blocking, not through its own queueing time.

use std::collections::HashMap;

use mempod_core::{build_manager, MemoryManager, Migration};
use mempod_dram::{Completion, MemorySystem, Priority, ReqToken};
use mempod_trace::Trace;
use mempod_types::{AccessKind, FrameId, PageId, Picos};

use crate::config::{SimConfig, SimError};
use crate::metrics::SimReport;

/// A foreground access waiting to be issued (possibly via a metadata fetch).
#[derive(Debug, Clone, Copy)]
struct Waiter {
    /// Original arrival: the AMMAT accounting base.
    arrival: Picos,
    /// Earliest issue time accumulated so far (stall, blocking, fetch).
    issue: Picos,
    frame: FrameId,
    line: u32,
    kind: AccessKind,
    /// Whether a metadata fetch must complete before the access issues.
    needs_meta: bool,
    /// Page used to spread metadata-fetch addresses.
    page: PageId,
}

/// Who a completed token belongs to.
#[derive(Debug, Clone, Copy)]
enum TokenOwner {
    Foreground { arrival: Picos },
    MigrationRead { mig: usize },
    MigrationWrite { mig: usize },
    MetaFetch { waiter: Waiter },
}

/// One in-flight migration's execution state.
#[derive(Debug)]
struct MigExec {
    m: Migration,
    pending: usize,
    latest: Picos,
    started: bool,
    reads_done: bool,
    done: bool,
    finish: Picos,
    waiters: Vec<Waiter>,
}

/// Lane key for serializing page swaps: pods migrate their pages one at a
/// time (the pod's migration driver is a single engine), and HMA's OS lane
/// is likewise serial. CAMEO's single-line swaps are not laned — they are
/// driven by the MCs themselves on each access.
fn lane_of(m: &Migration) -> Option<i64> {
    if m.line_count < 32 {
        None // line swap: event-driven, unserialised
    } else {
        Some(m.pod.map_or(-1, |p| p as i64))
    }
}

/// Why a page cannot be accessed right now.
#[derive(Debug, Clone, Copy)]
enum PageState {
    /// Swap in flight; index into the migration list.
    Migrating(usize),
    /// Swap finished at this time; accesses before it must wait.
    BlockedUntil(Picos),
}

/// Run-time engine state (separate from `Simulator` so completions can
/// trigger submissions without borrow gymnastics).
struct Engine {
    mem: MemorySystem,
    owners: HashMap<ReqToken, TokenOwner>,
    migs: Vec<MigExec>,
    blocked: HashMap<PageId, PageState>,
    /// Per-lane FIFO of migration indices; front = currently running.
    lanes: HashMap<i64, std::collections::VecDeque<usize>>,
    total_stall: Picos,
    injected_migration: u64,
    injected_meta: u64,
}

impl Engine {
    /// Drains up to `horizon` repeatedly until no more completions appear
    /// (completions may submit follow-up work that itself completes within
    /// the horizon).
    ///
    /// Completion-driven submissions (migration write phases, woken parked
    /// accesses) may arrive inside the already-drained slice; the channels
    /// clamp such requests to their local `now`, so re-draining to the same
    /// horizon services them without rewriting granted bus slots. The
    /// channels' indexed scheduler state built up this way is checked by
    /// `MemorySystem::audit_invariants` at sampled epoch boundaries and at
    /// end of run.
    fn pump(&mut self, horizon: Picos) {
        loop {
            let done = self.mem.drain_until(horizon);
            if done.is_empty() {
                break;
            }
            for c in done {
                self.handle_completion(c);
            }
        }
    }

    fn handle_completion(&mut self, c: Completion) {
        let owner = self
            .owners
            .remove(&c.token)
            .expect("completion for unknown token");
        match owner {
            TokenOwner::Foreground { arrival } => {
                self.total_stall += c.completion.saturating_sub(arrival);
            }
            TokenOwner::MigrationRead { mig } => {
                let (submit_writes, at) = {
                    let e = &mut self.migs[mig];
                    e.pending -= 1;
                    e.latest = e.latest.max(c.completion);
                    if e.pending == 0 && !e.reads_done {
                        e.reads_done = true;
                        (true, e.latest)
                    } else {
                        (false, Picos::ZERO)
                    }
                };
                if submit_writes {
                    let m = self.migs[mig].m;
                    let mut n = 0;
                    for line in m.line_start..m.line_start + m.line_count {
                        for frame in [m.frame_a, m.frame_b] {
                            let tok = self.mem.submit_with_priority(
                                frame,
                                line,
                                AccessKind::Write,
                                at,
                                Priority::Background,
                            );
                            self.owners.insert(tok, TokenOwner::MigrationWrite { mig });
                            n += 1;
                        }
                    }
                    self.migs[mig].pending = n;
                }
            }
            TokenOwner::MigrationWrite { mig } => {
                let finished = {
                    let e = &mut self.migs[mig];
                    e.pending -= 1;
                    e.latest = e.latest.max(c.completion);
                    if e.pending == 0 {
                        e.done = true;
                        e.finish = e.latest;
                        true
                    } else {
                        false
                    }
                };
                if finished {
                    let finish = self.migs[mig].finish;
                    let m = self.migs[mig].m;
                    for page in [m.page_a, m.page_b] {
                        if let Some(PageState::Migrating(idx)) = self.blocked.get(&page) {
                            if *idx == mig {
                                self.blocked.insert(page, PageState::BlockedUntil(finish));
                            }
                        }
                    }
                    let waiters = std::mem::take(&mut self.migs[mig].waiters);
                    for mut w in waiters {
                        w.issue = w.issue.max(finish);
                        self.dispatch(w);
                    }
                    // Chain: launch the lane's next queued migration.
                    if let Some(lane) = lane_of(&m) {
                        let next = {
                            let q = self.lanes.get_mut(&lane).expect("lane exists");
                            debug_assert_eq!(q.front(), Some(&mig));
                            q.pop_front();
                            q.front().copied()
                        };
                        if let Some(next) = next {
                            self.start_migration(next, finish);
                        }
                    }
                }
            }
            TokenOwner::MetaFetch { mut waiter } => {
                waiter.issue = waiter.issue.max(c.completion);
                waiter.needs_meta = false;
                self.dispatch(waiter);
            }
        }
    }

    /// Issues a waiter: via a metadata fetch if one is still needed,
    /// otherwise as the foreground access itself.
    fn dispatch(&mut self, w: Waiter) {
        if w.needs_meta {
            let meta_frame = self.meta_backing_frame(w.page);
            let tok = self.mem.submit(meta_frame, 0, AccessKind::Read, w.issue);
            self.owners.insert(tok, TokenOwner::MetaFetch { waiter: w });
            self.injected_meta += 1;
        } else {
            let tok = self.mem.submit(w.frame, w.line, w.kind, w.issue);
            self.owners
                .insert(tok, TokenOwner::Foreground { arrival: w.arrival });
        }
    }

    /// Registers a migration: its pages block immediately (the remap is
    /// already live, so their data is logically in transit), but the data
    /// movement itself queues behind its lane — a pod migrates one page at
    /// a time.
    fn enqueue_migration(&mut self, m: Migration, at: Picos) {
        let mig = self.migs.len();
        self.migs.push(MigExec {
            m,
            pending: 0,
            latest: at,
            started: false,
            reads_done: false,
            done: false,
            finish: Picos::MAX,
            waiters: Vec::new(),
        });
        self.injected_migration += m.injected_requests();
        self.blocked.insert(m.page_a, PageState::Migrating(mig));
        self.blocked.insert(m.page_b, PageState::Migrating(mig));
        match lane_of(&m) {
            None => self.start_migration(mig, at),
            Some(lane) => {
                let q = self.lanes.entry(lane).or_default();
                q.push_back(mig);
                if q.len() == 1 {
                    self.start_migration(mig, at);
                }
            }
        }
    }

    /// Launches a migration's read phase.
    fn start_migration(&mut self, mig: usize, at: Picos) {
        let m = self.migs[mig].m;
        let mut pending = 0;
        for line in m.line_start..m.line_start + m.line_count {
            for frame in [m.frame_a, m.frame_b] {
                let tok = self.mem.submit_with_priority(
                    frame,
                    line,
                    AccessKind::Read,
                    at,
                    Priority::Background,
                );
                self.owners.insert(tok, TokenOwner::MigrationRead { mig });
                pending += 1;
            }
        }
        let e = &mut self.migs[mig];
        e.started = true;
        e.pending = pending;
        e.latest = at;
    }

    /// Routes a foreground access according to its page's blocking state.
    ///
    /// Three regimes per the pod's sequential migration driver:
    /// * swap not yet started (lane-queued): the data still sits at its old
    ///   frame — service from there immediately, no delay;
    /// * swap in flight: delay until it completes (paper §4.3: "requests
    ///   that arrive while migrations are being performed have to be
    ///   delayed to ensure functionally correct memory behavior");
    /// * swap finished: accesses ordered before the finish wait for it.
    fn admit(&mut self, page: PageId, w: Waiter) {
        match self.blocked.get(&page) {
            Some(PageState::Migrating(idx)) if !self.migs[*idx].started => {
                let m = &self.migs[*idx].m;
                let mut w = w;
                w.frame = if page == m.page_a {
                    m.frame_a
                } else {
                    m.frame_b
                };
                self.dispatch(w);
            }
            Some(PageState::Migrating(idx)) if !self.migs[*idx].done => {
                self.migs[*idx].waiters.push(w);
            }
            Some(PageState::Migrating(idx)) => {
                let finish = self.migs[*idx].finish;
                let mut w = w;
                w.issue = w.issue.max(finish);
                self.dispatch(w);
            }
            Some(PageState::BlockedUntil(t)) => {
                let mut w = w;
                w.issue = w.issue.max(*t);
                self.dispatch(w);
            }
            None => self.dispatch(w),
        }
    }

    /// The backing-store frame holding a metadata entry: a slice of fast
    /// memory, spread by a multiplicative hash (the paper partitions part of
    /// stacked memory as each mechanism's backing store).
    fn meta_backing_frame(&self, page: PageId) -> FrameId {
        let fast = self.mem.layout().fast_frames.max(1);
        FrameId(page.0.wrapping_mul(0x9E3779B97F4A7C15) % fast)
    }
}

/// A configured simulator, ready to run one trace.
///
/// See the crate-level example. A `Simulator` is single-use: [`run`]
/// consumes it (manager and memory state are not reusable across traces).
///
/// [`run`]: Simulator::run
pub struct Simulator {
    cfg: SimConfig,
    mgr: Box<dyn MemoryManager>,
    mem: MemorySystem,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("manager", &self.cfg.manager)
            .field("geometry", &self.cfg.mgr.geometry)
            .finish()
    }
}

impl Simulator {
    /// Builds a simulator.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the configuration is invalid for the chosen
    /// manager (e.g. non-integral fast:slow ratio for THM/CAMEO).
    pub fn new(cfg: SimConfig) -> Result<Self, SimError> {
        let layout = cfg.layout();
        Self::with_layout(cfg, layout)
    }

    /// Builds a simulator over an explicit memory layout (e.g. to override
    /// the channel interleaving); the layout must describe the same frame
    /// counts as `cfg.layout()` would.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] under the same conditions as [`Simulator::new`].
    ///
    /// # Panics
    ///
    /// Panics if the layout's frame counts disagree with the configuration.
    pub fn with_layout(cfg: SimConfig, layout: mempod_dram::MemLayout) -> Result<Self, SimError> {
        cfg.validate()?;
        assert_eq!(
            layout.total_frames(),
            cfg.layout().total_frames(),
            "layout must cover the configured geometry"
        );
        let mgr = build_manager(cfg.manager, &cfg.mgr);
        let mem = MemorySystem::new(layout);
        Ok(Simulator { cfg, mgr, mem })
    }

    /// Runs the trace to completion and reports metrics.
    ///
    /// With the `debug-invariants` feature enabled, an
    /// [`InvariantAuditor`](mempod_audit::InvariantAuditor) checks the
    /// manager's remap/segment invariants, the DRAM channels' monotonic
    /// simulated time, and migration-count conservation between the
    /// manager's tracker and this engine at sampled epoch boundaries, and
    /// panics at the end of the run if any invariant was violated.
    pub fn run(mut self, trace: &Trace) -> SimReport {
        let mut report = SimReport::new(trace.name(), self.cfg.manager);
        report.requests = trace.len() as u64;
        #[cfg(feature = "debug-invariants")]
        let mut auditor = mempod_audit::InvariantAuditor::new(
            format!("{} on {}", self.cfg.manager, trace.name()),
            8,
        );

        let mut prune_watermark = 8192usize;
        let mut eng = Engine {
            mem: self.mem,
            owners: HashMap::new(),
            migs: Vec::new(),
            blocked: HashMap::new(),
            lanes: HashMap::new(),
            total_stall: Picos::ZERO,
            injected_migration: 0,
            injected_meta: 0,
        };

        for req in trace.requests() {
            eng.pump(req.arrival);

            let outcome = self.mgr.on_access(req);
            #[cfg(feature = "debug-invariants")]
            let crossed_boundary = !outcome.migrations.is_empty();
            for m in outcome.migrations {
                eng.enqueue_migration(m, req.arrival);
            }
            #[cfg(feature = "debug-invariants")]
            if crossed_boundary && auditor.should_sample() {
                self.mgr.audit_invariants(&mut auditor);
                eng.mem.audit_invariants(&mut auditor);
                auditor.check_conserved(
                    "migrations: manager tracker vs engine",
                    self.mgr.migration_stats().migrations,
                    eng.migs.len() as u64,
                );
            }

            let w = Waiter {
                arrival: req.arrival,
                issue: req.arrival + outcome.stall,
                frame: outcome.frame,
                line: outcome.line_in_page,
                kind: req.kind,
                needs_meta: outcome.meta_miss,
                page: req.addr.page(),
            };
            eng.admit(req.addr.page(), w);

            if eng.blocked.len() >= prune_watermark {
                let migs = &eng.migs;
                let now = req.arrival;
                eng.blocked.retain(|_, s| match s {
                    PageState::Migrating(idx) => !migs[*idx].done,
                    PageState::BlockedUntil(t) => *t > now,
                });
                // Amortize: if most entries are still live, back off so the
                // prune stays O(1) amortized per request.
                prune_watermark = (eng.blocked.len() * 2).max(8192);
            }
        }

        // Flush: completions may spawn write phases and parked accesses.
        eng.pump(Picos::MAX);
        assert!(eng.owners.is_empty(), "requests lost in the memory system");
        debug_assert!(eng.migs.iter().all(|e| e.done && e.waiters.is_empty()));
        #[cfg(feature = "debug-invariants")]
        {
            // End-of-run pass: every invariant is checked at least once even
            // if no epoch boundary was sampled.
            self.mgr.audit_invariants(&mut auditor);
            eng.mem.audit_invariants(&mut auditor);
            auditor.check_conserved(
                "migrations: manager tracker vs engine",
                self.mgr.migration_stats().migrations,
                eng.migs.len() as u64,
            );
            auditor.assert_clean();
        }

        report.total_stall = eng.total_stall;
        report.duration = trace.duration();
        report.migration = self.mgr.migration_stats().clone();
        report.meta_cache = self.mgr.meta_cache_stats();
        report.injected_migration_requests = eng.injected_migration;
        report.injected_meta_requests = eng.injected_meta;
        report.mem_stats = eng.mem.stats();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempod_core::ManagerKind;
    use mempod_trace::{TraceGenerator, WorkloadSpec};
    use mempod_types::SystemConfig;

    fn demo_trace(n: usize) -> Trace {
        TraceGenerator::new(WorkloadSpec::hotcold_demo(), 42)
            .take_requests(n, &SystemConfig::tiny().geometry)
    }

    fn run(kind: ManagerKind, n: usize) -> SimReport {
        let cfg = SimConfig::new(SystemConfig::tiny(), kind);
        Simulator::new(cfg).expect("valid").run(&demo_trace(n))
    }

    #[test]
    fn every_manager_completes_a_short_trace() {
        for kind in ManagerKind::all() {
            let r = run(kind, 3_000);
            assert_eq!(r.requests, 3_000, "{kind}");
            assert!(r.ammat_ps() > 0.0, "{kind}");
        }
    }

    #[test]
    fn hbm_only_beats_ddr_only() {
        let hbm = run(ManagerKind::HbmOnly, 5_000);
        let ddr = run(ManagerKind::DdrOnly, 5_000);
        assert!(
            hbm.ammat_ps() < ddr.ammat_ps(),
            "hbm={} ddr={}",
            hbm.ammat_ps(),
            ddr.ammat_ps()
        );
    }

    #[test]
    fn mempod_improves_on_no_migration_for_hot_cold() {
        // Long enough to amortize the warm-up epochs in which the hot set
        // migrates up (cumulative AMMAT includes that transient).
        let pod = run(ManagerKind::MemPod, 300_000);
        let tlm = run(ManagerKind::NoMigration, 300_000);
        assert!(pod.migration.migrations > 0);
        assert!(
            pod.ammat_ps() < tlm.ammat_ps(),
            "mempod={} tlm={}",
            pod.ammat_ps(),
            tlm.ammat_ps()
        );
    }

    #[test]
    fn migration_traffic_is_accounted() {
        let r = run(ManagerKind::MemPod, 40_000);
        assert_eq!(r.injected_migration_requests, r.migration.migrations * 128);
        assert_eq!(r.migration.bytes_moved, r.migration.migrations * 4096);
    }

    #[test]
    fn cameo_moves_most_data() {
        let cameo = run(ManagerKind::Cameo, 20_000);
        let pod = run(ManagerKind::MemPod, 20_000);
        assert!(cameo.migration.migrations > pod.migration.migrations * 2);
    }

    #[test]
    fn fast_service_fraction_grows_under_mempod() {
        let pod = run(ManagerKind::MemPod, 40_000);
        let tlm = run(ManagerKind::NoMigration, 40_000);
        assert!(
            pod.mem_stats.fast_service_fraction() > tlm.mem_stats.fast_service_fraction(),
            "pod={} tlm={}",
            pod.mem_stats.fast_service_fraction(),
            tlm.mem_stats.fast_service_fraction()
        );
    }

    #[test]
    fn meta_cache_adds_overhead() {
        let mut sys = SystemConfig::tiny();
        let free = Simulator::new(SimConfig::new(sys.clone(), ManagerKind::MemPod))
            .unwrap()
            .run(&demo_trace(20_000));
        sys.metadata_cache_bytes = Some(16 << 10);
        let cached = Simulator::new(SimConfig::new(sys, ManagerKind::MemPod))
            .unwrap()
            .run(&demo_trace(20_000));
        assert!(cached.injected_meta_requests > 0);
        assert!(cached.meta_cache.expect("stats").lookups > 0);
        assert!(
            cached.ammat_ps() > free.ammat_ps(),
            "cached={} free={}",
            cached.ammat_ps(),
            free.ammat_ps()
        );
    }

    #[test]
    fn deterministic_given_same_inputs() {
        let a = run(ManagerKind::Thm, 10_000);
        let b = run(ManagerKind::Thm, 10_000);
        assert_eq!(a.total_stall, b.total_stall);
        assert_eq!(a.migration.migrations, b.migration.migrations);
    }
}
