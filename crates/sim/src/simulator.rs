//! The simulation event loop.
//!
//! The simulator is event-driven and **never advances the memory system
//! past the trace frontier**: channels drain only up to the current
//! request's arrival, so foreground and injected traffic contend exactly
//! when they would in the machine. Anything that must wait for an unknown
//! completion time is *deferred* and woken by that completion:
//!
//! * a triggered [`Migration`] becomes a state machine — its 2×N reads are
//!   injected (background priority), the write-backs launch when the last
//!   read completes, and the two involved pages stay blocked until the last
//!   write completes (paper §4.3/§6.2);
//! * a foreground access to a blocked page parks on the migration and is
//!   dispatched at its release;
//! * a metadata-cache miss injects one read to the backing store in fast
//!   memory (paper §6.3.3); the access parks on the fetch.
//!
//! AMMAT = foreground stall (completion − original arrival, including all
//! gating) / original request count — the paper's fixed-denominator
//! formulation (§6.2). Injected traffic contributes through contention and
//! blocking, not through its own queueing time.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mempod_core::{build_manager, MemoryManager, Migration};
use mempod_dram::{Completion, MemorySystem, Priority, ReqToken};
use mempod_telemetry::{EpochSnapshot, EventKind, Log2Histogram, Telemetry};
use mempod_trace::Trace;
use mempod_types::convert::u64_from_usize;
use mempod_types::{AccessKind, FrameId, PageId, Picos};

use crate::config::{SimConfig, SimError};
use crate::metrics::SimReport;

/// Consecutive metadata-cache misses that qualify as a burst event.
const META_MISS_BURST_MIN: u64 = 8;
/// Stalled refreshes per snapshot window that qualify as a refresh-stall
/// event.
const REFRESH_STALL_EVENT_MIN: u64 = 16;
/// Progress-counter flush granularity (requests per `fetch_add`).
const PROGRESS_BATCH: u64 = 4096;

/// A foreground access waiting to be issued (possibly via a metadata fetch).
#[derive(Debug, Clone, Copy)]
struct Waiter {
    /// Original arrival: the AMMAT accounting base.
    arrival: Picos,
    /// Earliest issue time accumulated so far (stall, blocking, fetch).
    issue: Picos,
    frame: FrameId,
    line: u32,
    kind: AccessKind,
    /// Whether a metadata fetch must complete before the access issues.
    needs_meta: bool,
    /// Page used to spread metadata-fetch addresses.
    page: PageId,
}

/// Who a completed token belongs to.
#[derive(Debug, Clone, Copy)]
enum TokenOwner {
    Foreground { arrival: Picos },
    MigrationRead { mig: usize },
    MigrationWrite { mig: usize },
    MetaFetch { waiter: Waiter },
}

/// One in-flight migration's execution state.
#[derive(Debug)]
struct MigExec {
    m: Migration,
    pending: usize,
    latest: Picos,
    started: bool,
    reads_done: bool,
    done: bool,
    finish: Picos,
    /// When the read phase launched (for the completion event's latency).
    t_start: Picos,
    waiters: Vec<Waiter>,
}

/// Lane key for serializing page swaps: pods migrate their pages one at a
/// time (the pod's migration driver is a single engine), and HMA's OS lane
/// is likewise serial. CAMEO's single-line swaps are not laned — they are
/// driven by the MCs themselves on each access.
fn lane_of(m: &Migration) -> Option<i64> {
    if m.line_count < 32 {
        None // line swap: event-driven, unserialised
    } else {
        Some(m.pod.map_or(-1, |p| p as i64))
    }
}

/// Why a page cannot be accessed right now.
#[derive(Debug, Clone, Copy)]
enum PageState {
    /// Swap in flight; index into the migration list.
    Migrating(usize),
    /// Swap finished at this time; accesses before it must wait.
    BlockedUntil(Picos),
}

/// Run-time engine state (separate from `Simulator` so completions can
/// trigger submissions without borrow gymnastics).
struct Engine {
    mem: MemorySystem,
    owners: HashMap<ReqToken, TokenOwner>,
    migs: Vec<MigExec>,
    blocked: HashMap<PageId, PageState>,
    /// Per-lane FIFO of migration indices; front = currently running.
    lanes: HashMap<i64, std::collections::VecDeque<usize>>,
    total_stall: Picos,
    injected_migration: u64,
    injected_meta: u64,
    /// Telemetry facade (disabled by default: every emit is one branch).
    tel: Telemetry,
}

impl Engine {
    /// Drains up to `horizon` repeatedly until no more completions appear
    /// (completions may submit follow-up work that itself completes within
    /// the horizon).
    ///
    /// Completion-driven submissions (migration write phases, woken parked
    /// accesses) may arrive inside the already-drained slice; the channels
    /// clamp such requests to their local `now`, so re-draining to the same
    /// horizon services them without rewriting granted bus slots. The
    /// channels' indexed scheduler state built up this way is checked by
    /// `MemorySystem::audit_invariants` at sampled epoch boundaries and at
    /// end of run.
    fn pump(&mut self, horizon: Picos) {
        loop {
            let done = self.mem.drain_until(horizon);
            if done.is_empty() {
                break;
            }
            for c in done {
                self.handle_completion(c);
            }
        }
    }

    fn handle_completion(&mut self, c: Completion) {
        let owner = self
            .owners
            .remove(&c.token)
            .expect("completion for unknown token");
        match owner {
            TokenOwner::Foreground { arrival } => {
                self.total_stall += c.completion.saturating_sub(arrival);
            }
            TokenOwner::MigrationRead { mig } => {
                let (submit_writes, at) = {
                    let e = &mut self.migs[mig];
                    e.pending -= 1;
                    e.latest = e.latest.max(c.completion);
                    if e.pending == 0 && !e.reads_done {
                        e.reads_done = true;
                        (true, e.latest)
                    } else {
                        (false, Picos::ZERO)
                    }
                };
                if submit_writes {
                    let m = self.migs[mig].m;
                    let mut n = 0;
                    for line in m.line_start..m.line_start + m.line_count {
                        for frame in [m.frame_a, m.frame_b] {
                            let tok = self.mem.submit_with_priority(
                                frame,
                                line,
                                AccessKind::Write,
                                at,
                                Priority::Background,
                            );
                            self.owners.insert(tok, TokenOwner::MigrationWrite { mig });
                            n += 1;
                        }
                    }
                    self.migs[mig].pending = n;
                }
            }
            TokenOwner::MigrationWrite { mig } => {
                let finished = {
                    let e = &mut self.migs[mig];
                    e.pending -= 1;
                    e.latest = e.latest.max(c.completion);
                    if e.pending == 0 {
                        e.done = true;
                        e.finish = e.latest;
                        true
                    } else {
                        false
                    }
                };
                if finished {
                    let finish = self.migs[mig].finish;
                    let m = self.migs[mig].m;
                    if self.tel.is_enabled() {
                        let latency = finish.saturating_sub(self.migs[mig].t_start);
                        self.tel.event(
                            finish.as_ps(),
                            EventKind::MigrationComplete {
                                pod: m.pod,
                                frame_a: m.frame_a.0,
                                frame_b: m.frame_b.0,
                                latency_ps: latency.as_ps(),
                            },
                        );
                    }
                    for page in [m.page_a, m.page_b] {
                        if let Some(PageState::Migrating(idx)) = self.blocked.get(&page) {
                            if *idx == mig {
                                self.blocked.insert(page, PageState::BlockedUntil(finish));
                            }
                        }
                    }
                    let waiters = std::mem::take(&mut self.migs[mig].waiters);
                    for mut w in waiters {
                        w.issue = w.issue.max(finish);
                        self.dispatch(w);
                    }
                    // Chain: launch the lane's next queued migration.
                    if let Some(lane) = lane_of(&m) {
                        let next = {
                            let q = self.lanes.get_mut(&lane).expect("lane exists");
                            debug_assert_eq!(q.front(), Some(&mig));
                            q.pop_front();
                            q.front().copied()
                        };
                        if let Some(next) = next {
                            self.start_migration(next, finish);
                        }
                    }
                }
            }
            TokenOwner::MetaFetch { mut waiter } => {
                waiter.issue = waiter.issue.max(c.completion);
                waiter.needs_meta = false;
                self.dispatch(waiter);
            }
        }
    }

    /// Issues a waiter: via a metadata fetch if one is still needed,
    /// otherwise as the foreground access itself.
    fn dispatch(&mut self, w: Waiter) {
        if w.needs_meta {
            let meta_frame = self.meta_backing_frame(w.page);
            let tok = self.mem.submit(meta_frame, 0, AccessKind::Read, w.issue);
            self.owners.insert(tok, TokenOwner::MetaFetch { waiter: w });
            self.injected_meta += 1;
        } else {
            let tok = self.mem.submit(w.frame, w.line, w.kind, w.issue);
            self.owners
                .insert(tok, TokenOwner::Foreground { arrival: w.arrival });
        }
    }

    /// Registers a migration: its pages block immediately (the remap is
    /// already live, so their data is logically in transit), but the data
    /// movement itself queues behind its lane — a pod migrates one page at
    /// a time.
    fn enqueue_migration(&mut self, m: Migration, at: Picos) {
        let mig = self.migs.len();
        if self.tel.is_enabled() {
            self.tel.event(
                at.as_ps(),
                EventKind::RemapSwap {
                    page_a: m.page_a.0,
                    page_b: m.page_b.0,
                    pod: m.pod,
                },
            );
        }
        self.migs.push(MigExec {
            m,
            pending: 0,
            latest: at,
            started: false,
            reads_done: false,
            done: false,
            finish: Picos::MAX,
            t_start: at,
            waiters: Vec::new(),
        });
        self.injected_migration += m.injected_requests();
        self.blocked.insert(m.page_a, PageState::Migrating(mig));
        self.blocked.insert(m.page_b, PageState::Migrating(mig));
        match lane_of(&m) {
            None => self.start_migration(mig, at),
            Some(lane) => {
                let q = self.lanes.entry(lane).or_default();
                q.push_back(mig);
                if q.len() == 1 {
                    self.start_migration(mig, at);
                }
            }
        }
    }

    /// Launches a migration's read phase.
    fn start_migration(&mut self, mig: usize, at: Picos) {
        let m = self.migs[mig].m;
        if self.tel.is_enabled() {
            self.tel.event(
                at.as_ps(),
                EventKind::MigrationStart {
                    pod: m.pod,
                    frame_a: m.frame_a.0,
                    frame_b: m.frame_b.0,
                    lines: m.line_count,
                },
            );
        }
        let mut pending = 0;
        for line in m.line_start..m.line_start + m.line_count {
            for frame in [m.frame_a, m.frame_b] {
                let tok = self.mem.submit_with_priority(
                    frame,
                    line,
                    AccessKind::Read,
                    at,
                    Priority::Background,
                );
                self.owners.insert(tok, TokenOwner::MigrationRead { mig });
                pending += 1;
            }
        }
        let e = &mut self.migs[mig];
        e.started = true;
        e.pending = pending;
        e.latest = at;
        e.t_start = at;
    }

    /// Routes a foreground access according to its page's blocking state.
    ///
    /// Three regimes per the pod's sequential migration driver:
    /// * swap not yet started (lane-queued): the data still sits at its old
    ///   frame — service from there immediately, no delay;
    /// * swap in flight: delay until it completes (paper §4.3: "requests
    ///   that arrive while migrations are being performed have to be
    ///   delayed to ensure functionally correct memory behavior");
    /// * swap finished: accesses ordered before the finish wait for it.
    fn admit(&mut self, page: PageId, w: Waiter) {
        match self.blocked.get(&page) {
            Some(PageState::Migrating(idx)) if !self.migs[*idx].started => {
                let m = &self.migs[*idx].m;
                let mut w = w;
                w.frame = if page == m.page_a {
                    m.frame_a
                } else {
                    m.frame_b
                };
                self.dispatch(w);
            }
            Some(PageState::Migrating(idx)) if !self.migs[*idx].done => {
                self.migs[*idx].waiters.push(w);
            }
            Some(PageState::Migrating(idx)) => {
                let finish = self.migs[*idx].finish;
                let mut w = w;
                w.issue = w.issue.max(finish);
                self.dispatch(w);
            }
            Some(PageState::BlockedUntil(t)) => {
                let mut w = w;
                w.issue = w.issue.max(*t);
                self.dispatch(w);
            }
            None => self.dispatch(w),
        }
    }

    /// The backing-store frame holding a metadata entry: a slice of fast
    /// memory, spread by a multiplicative hash (the paper partitions part of
    /// stacked memory as each mechanism's backing store).
    fn meta_backing_frame(&self, page: PageId) -> FrameId {
        let fast = self.mem.layout().fast_frames.max(1);
        FrameId(page.0.wrapping_mul(0x9E3779B97F4A7C15) % fast)
    }
}

/// Pull-based epoch snapshot driver.
///
/// Keeps the previous boundary's cumulative statistics and, whenever the
/// request stream crosses one or more epoch boundaries, diffs the current
/// cumulative values against them to produce one [`EpochSnapshot`]
/// covering the whole gap (sparse traces can skip thousands of epochs at
/// once; emitting one snapshot per gap keeps telemetry O(requests), not
/// O(simulated time)). Nothing here touches the per-access hot path — the
/// driver only ever *reads* counters the simulation already maintained.
struct EpochDriver {
    len: Picos,
    next_boundary: Picos,
    prev_requests: u64,
    prev_migrations: u64,
    prev_bytes_moved: u64,
    prev_per_pod_bytes: Vec<u64>,
    prev_fast: u64,
    prev_slow: u64,
    prev_row_hits: u64,
    prev_row_refs: u64,
    prev_refreshes: u64,
    prev_meta: u64,
    prev_manager: Vec<(&'static str, u64)>,
    prev_depth: Log2Histogram,
    prev_stalled_refreshes: u64,
    prev_high_water: u64,
}

impl EpochDriver {
    /// A driver snapshotting every `len` of simulated time (`None` if the
    /// configured epoch is zero — nothing to key snapshots off).
    fn new(len: Picos) -> Option<Self> {
        (len.as_ps() > 0).then(|| EpochDriver {
            len,
            next_boundary: len,
            prev_requests: 0,
            prev_migrations: 0,
            prev_bytes_moved: 0,
            prev_per_pod_bytes: Vec::new(),
            prev_fast: 0,
            prev_slow: 0,
            prev_row_hits: 0,
            prev_row_refs: 0,
            prev_refreshes: 0,
            prev_meta: 0,
            prev_manager: Vec::new(),
            prev_depth: Log2Histogram::new(),
            prev_stalled_refreshes: 0,
            prev_high_water: 0,
        })
    }

    /// Emits one snapshot if `now` has crossed the next epoch boundary.
    fn observe(
        &mut self,
        now: Picos,
        requests_so_far: u64,
        mgr: &dyn MemoryManager,
        eng: &mut Engine,
    ) {
        if now < self.next_boundary {
            return;
        }
        let len = self.len.as_ps();
        let crossed = (now.as_ps() - self.next_boundary.as_ps()) / len + 1;
        let boundary = Picos(self.next_boundary.as_ps() + (crossed - 1) * len);
        self.next_boundary = boundary + self.len;
        // Boundaries are exact multiples of the epoch length.
        let epoch = boundary.as_ps() / len;
        self.snapshot_at(epoch, boundary, crossed, requests_so_far, mgr, eng);
    }

    /// Emits a final snapshot covering the partial window since the last
    /// boundary, if anything happened in it. The partial window is labelled
    /// with the in-progress epoch index, so epochs stay strictly increasing
    /// even when a full-boundary snapshot fired just before the trace ended.
    fn finalize(
        &mut self,
        end: Picos,
        requests_so_far: u64,
        mgr: &dyn MemoryManager,
        eng: &mut Engine,
    ) {
        if requests_so_far == self.prev_requests && eng.migs.len() as u64 == self.prev_migrations {
            return;
        }
        let epoch = self.next_boundary.as_ps() / self.len.as_ps();
        let last_boundary = self.next_boundary.saturating_sub(self.len);
        self.snapshot_at(epoch, end.max(last_boundary), 1, requests_so_far, mgr, eng);
    }

    #[allow(clippy::too_many_arguments)]
    fn snapshot_at(
        &mut self,
        epoch: u64,
        boundary: Picos,
        epochs_elapsed: u64,
        requests_so_far: u64,
        mgr: &dyn MemoryManager,
        eng: &mut Engine,
    ) {
        let mut snap = EpochSnapshot::empty(epoch, boundary.as_ps());
        snap.epochs_elapsed = epochs_elapsed;

        snap.requests = requests_so_far;
        snap.requests_delta = requests_so_far - self.prev_requests;
        self.prev_requests = requests_so_far;
        snap.ammat_ps_so_far =
            (requests_so_far > 0).then(|| eng.total_stall.as_ps() as f64 / requests_so_far as f64);

        let mig = mgr.migration_stats();
        snap.migrations = mig.migrations;
        snap.migrations_delta = mig.migrations - self.prev_migrations;
        self.prev_migrations = mig.migrations;
        snap.bytes_moved_delta = mig.bytes_moved - self.prev_bytes_moved;
        self.prev_bytes_moved = mig.bytes_moved;
        self.prev_per_pod_bytes.resize(mig.per_pod_bytes.len(), 0);
        snap.per_pod_bytes_delta = mig
            .per_pod_bytes
            .iter()
            .zip(self.prev_per_pod_bytes.iter())
            .map(|(now, prev)| now - prev)
            .collect();
        self.prev_per_pod_bytes.copy_from_slice(&mig.per_pod_bytes);

        let stats = eng.mem.stats();
        let total = stats.total();
        snap.fast_requests_delta = stats.fast.requests() - self.prev_fast;
        snap.slow_requests_delta = stats.slow.requests() - self.prev_slow;
        self.prev_fast = stats.fast.requests();
        self.prev_slow = stats.slow.requests();
        let served = snap.fast_requests_delta + snap.slow_requests_delta;
        snap.fast_service_fraction =
            (served > 0).then(|| snap.fast_requests_delta as f64 / served as f64);
        let row_refs = total.row_hits + total.row_misses + total.row_conflicts;
        let ref_delta = row_refs - self.prev_row_refs;
        snap.row_hit_rate = (ref_delta > 0)
            .then(|| (total.row_hits - self.prev_row_hits) as f64 / ref_delta as f64);
        self.prev_row_hits = total.row_hits;
        self.prev_row_refs = row_refs;
        snap.refreshes_delta = total.refreshes - self.prev_refreshes;
        self.prev_refreshes = total.refreshes;

        snap.meta_miss_delta = eng.injected_meta - self.prev_meta;
        self.prev_meta = eng.injected_meta;

        // Manager counters are reported as per-window deltas, matched by
        // name against the previous poll.
        let mut mc = Vec::new();
        mgr.telemetry_counters(&mut mc);
        for &(name, value) in &mc {
            let prev = self
                .prev_manager
                .iter()
                .find(|(n, _)| *n == name)
                .map_or(0, |&(_, v)| v);
            snap.manager.insert(name.to_string(), value - prev);
        }
        self.prev_manager = mc;

        if let Some(probe) = eng.mem.probe_summary() {
            let window = probe.depth.diff(&self.prev_depth);
            snap.queue_depth_p50 = window.value_at_quantile(0.50);
            snap.queue_depth_p99 = window.value_at_quantile(0.99);
            snap.queue_depth_max = window.max();
            self.prev_depth = probe.depth;

            let stall_delta = probe.stalled_refreshes - self.prev_stalled_refreshes;
            self.prev_stalled_refreshes = probe.stalled_refreshes;
            if stall_delta >= REFRESH_STALL_EVENT_MIN {
                eng.tel.event(
                    boundary.as_ps(),
                    EventKind::RefreshStall {
                        refreshes: stall_delta,
                        epoch,
                    },
                );
            }
        }

        let high_water = u64_from_usize(total.max_queue_depth);
        if high_water > self.prev_high_water {
            self.prev_high_water = high_water;
            eng.tel.event(
                boundary.as_ps(),
                EventKind::QueueDepthHighWater {
                    depth: high_water,
                    epoch,
                },
            );
        }

        eng.tel.snapshot(snap);
    }
}

/// A configured simulator, ready to run one trace.
///
/// See the crate-level example. A `Simulator` is single-use: [`run`]
/// consumes it (manager and memory state are not reusable across traces).
/// Attach telemetry with [`with_telemetry`] to get per-epoch snapshots and
/// a JSONL event stream; attach a progress counter with [`with_progress`]
/// for live sweep monitoring.
///
/// [`run`]: Simulator::run
/// [`with_telemetry`]: Simulator::with_telemetry
/// [`with_progress`]: Simulator::with_progress
pub struct Simulator {
    cfg: SimConfig,
    mgr: Box<dyn MemoryManager>,
    mem: MemorySystem,
    tel: Telemetry,
    progress: Option<Arc<AtomicU64>>,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("manager", &self.cfg.manager)
            .field("geometry", &self.cfg.mgr.geometry)
            .finish()
    }
}

impl Simulator {
    /// Builds a simulator.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the configuration is invalid for the chosen
    /// manager (e.g. non-integral fast:slow ratio for THM/CAMEO).
    pub fn new(cfg: SimConfig) -> Result<Self, SimError> {
        let layout = cfg.layout();
        Self::with_layout(cfg, layout)
    }

    /// Builds a simulator over an explicit memory layout (e.g. to override
    /// the channel interleaving); the layout must describe the same frame
    /// counts as `cfg.layout()` would.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] under the same conditions as [`Simulator::new`].
    ///
    /// # Panics
    ///
    /// Panics if the layout's frame counts disagree with the configuration.
    pub fn with_layout(cfg: SimConfig, layout: mempod_dram::MemLayout) -> Result<Self, SimError> {
        cfg.validate()?;
        assert_eq!(
            layout.total_frames(),
            cfg.layout().total_frames(),
            "layout must cover the configured geometry"
        );
        let mgr = build_manager(cfg.manager, &cfg.mgr);
        let mem = MemorySystem::new(layout);
        Ok(Simulator {
            cfg,
            mgr,
            mem,
            tel: Telemetry::disabled(),
            progress: None,
        })
    }

    /// Attaches telemetry: per-epoch snapshots (keyed off the configured
    /// epoch length), structured events and DRAM channel probes. The run's
    /// retained snapshots come back in [`SimReport::timeline`]; the full
    /// stream goes to the telemetry's sink as JSONL.
    #[must_use]
    pub fn with_telemetry(mut self, tel: Telemetry) -> Self {
        self.tel = tel;
        self
    }

    /// Attaches a live progress counter, incremented (in batches) as trace
    /// requests are admitted. Another thread may read it at any time — this
    /// is what the parallel runner's per-job heartbeat polls.
    #[must_use]
    pub fn with_progress(mut self, counter: Arc<AtomicU64>) -> Self {
        self.progress = Some(counter);
        self
    }

    /// Runs the trace to completion and reports metrics.
    ///
    /// With the `debug-invariants` feature enabled, an
    /// [`InvariantAuditor`](mempod_audit::InvariantAuditor) checks the
    /// manager's remap/segment invariants, the DRAM channels' monotonic
    /// simulated time, and migration-count conservation between the
    /// manager's tracker and this engine at sampled epoch boundaries, and
    /// panics at the end of the run if any invariant was violated.
    pub fn run(mut self, trace: &Trace) -> SimReport {
        let mut report = SimReport::new(trace.name(), self.cfg.manager);
        report.requests = trace.len() as u64;
        #[cfg(feature = "debug-invariants")]
        let mut auditor = mempod_audit::InvariantAuditor::new(
            format!("{} on {}", self.cfg.manager, trace.name()),
            8,
        );

        let telemetry_on = self.tel.is_enabled();
        if telemetry_on {
            self.mem.attach_probes();
        }
        let mut driver = if telemetry_on {
            EpochDriver::new(self.cfg.mgr.epoch)
        } else {
            None
        };
        let mut requests_so_far = 0u64;
        let mut miss_run = 0u64;
        let mut progress_batch = 0u64;

        let mut prune_watermark = 8192usize;
        let mut eng = Engine {
            mem: self.mem,
            owners: HashMap::new(),
            migs: Vec::new(),
            blocked: HashMap::new(),
            lanes: HashMap::new(),
            total_stall: Picos::ZERO,
            injected_migration: 0,
            injected_meta: 0,
            tel: self.tel,
        };

        for req in trace.requests() {
            eng.pump(req.arrival);
            if let Some(d) = driver.as_mut() {
                d.observe(req.arrival, requests_so_far, &*self.mgr, &mut eng);
            }

            let outcome = self.mgr.on_access(req);
            if telemetry_on {
                if outcome.meta_miss {
                    miss_run += 1;
                } else if miss_run > 0 {
                    if miss_run >= META_MISS_BURST_MIN {
                        eng.tel.event(
                            req.arrival.as_ps(),
                            EventKind::MetaMissBurst { len: miss_run },
                        );
                    }
                    miss_run = 0;
                }
            }
            #[cfg(feature = "debug-invariants")]
            let crossed_boundary = !outcome.migrations.is_empty();
            for m in outcome.migrations {
                eng.enqueue_migration(m, req.arrival);
            }
            #[cfg(feature = "debug-invariants")]
            if crossed_boundary && auditor.should_sample() {
                self.mgr.audit_invariants(&mut auditor);
                eng.mem.audit_invariants(&mut auditor);
                auditor.check_conserved(
                    "migrations: manager tracker vs engine",
                    self.mgr.migration_stats().migrations,
                    eng.migs.len() as u64,
                );
            }

            let w = Waiter {
                arrival: req.arrival,
                issue: req.arrival + outcome.stall,
                frame: outcome.frame,
                line: outcome.line_in_page,
                kind: req.kind,
                needs_meta: outcome.meta_miss,
                page: req.addr.page(),
            };
            eng.admit(req.addr.page(), w);
            requests_so_far += 1;
            if self.progress.is_some() {
                progress_batch += 1;
                if progress_batch == PROGRESS_BATCH {
                    if let Some(p) = &self.progress {
                        p.fetch_add(PROGRESS_BATCH, Ordering::Relaxed);
                    }
                    progress_batch = 0;
                }
            }

            if eng.blocked.len() >= prune_watermark {
                let migs = &eng.migs;
                let now = req.arrival;
                eng.blocked.retain(|_, s| match s {
                    PageState::Migrating(idx) => !migs[*idx].done,
                    PageState::BlockedUntil(t) => *t > now,
                });
                // Amortize: if most entries are still live, back off so the
                // prune stays O(1) amortized per request.
                prune_watermark = (eng.blocked.len() * 2).max(8192);
            }
        }

        // Flush: completions may spawn write phases and parked accesses.
        eng.pump(Picos::MAX);
        if let Some(p) = &self.progress {
            p.fetch_add(progress_batch, Ordering::Relaxed);
        }
        if telemetry_on && miss_run >= META_MISS_BURST_MIN {
            eng.tel.event(
                trace.duration().as_ps(),
                EventKind::MetaMissBurst { len: miss_run },
            );
        }
        if let Some(d) = driver.as_mut() {
            d.finalize(trace.duration(), requests_so_far, &*self.mgr, &mut eng);
        }
        assert!(eng.owners.is_empty(), "requests lost in the memory system");
        debug_assert!(eng.migs.iter().all(|e| e.done && e.waiters.is_empty()));
        #[cfg(feature = "debug-invariants")]
        {
            // End-of-run pass: every invariant is checked at least once even
            // if no epoch boundary was sampled.
            self.mgr.audit_invariants(&mut auditor);
            eng.mem.audit_invariants(&mut auditor);
            auditor.check_conserved(
                "migrations: manager tracker vs engine",
                self.mgr.migration_stats().migrations,
                eng.migs.len() as u64,
            );
            auditor.assert_clean();
        }

        report.total_stall = eng.total_stall;
        report.duration = trace.duration();
        report.migration = self.mgr.migration_stats().clone();
        report.meta_cache = self.mgr.meta_cache_stats();
        report.injected_migration_requests = eng.injected_migration;
        report.injected_meta_requests = eng.injected_meta;
        report.mem_stats = eng.mem.stats();
        eng.tel.flush();
        report.timeline = eng.tel.ring.drain();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempod_core::ManagerKind;
    use mempod_trace::{TraceGenerator, WorkloadSpec};
    use mempod_types::SystemConfig;

    fn demo_trace(n: usize) -> Trace {
        TraceGenerator::new(WorkloadSpec::hotcold_demo(), 42)
            .take_requests(n, &SystemConfig::tiny().geometry)
    }

    fn run(kind: ManagerKind, n: usize) -> SimReport {
        let cfg = SimConfig::new(SystemConfig::tiny(), kind);
        Simulator::new(cfg).expect("valid").run(&demo_trace(n))
    }

    #[test]
    fn every_manager_completes_a_short_trace() {
        for kind in ManagerKind::all() {
            let r = run(kind, 3_000);
            assert_eq!(r.requests, 3_000, "{kind}");
            assert!(r.ammat_ps().expect("has requests") > 0.0, "{kind}");
        }
    }

    #[test]
    fn hbm_only_beats_ddr_only() {
        let hbm = run(ManagerKind::HbmOnly, 5_000);
        let ddr = run(ManagerKind::DdrOnly, 5_000);
        assert!(
            hbm.ammat_ps() < ddr.ammat_ps(),
            "hbm={:?} ddr={:?}",
            hbm.ammat_ps(),
            ddr.ammat_ps()
        );
    }

    #[test]
    fn mempod_improves_on_no_migration_for_hot_cold() {
        // Long enough to amortize the warm-up epochs in which the hot set
        // migrates up (cumulative AMMAT includes that transient).
        let pod = run(ManagerKind::MemPod, 300_000);
        let tlm = run(ManagerKind::NoMigration, 300_000);
        assert!(pod.migration.migrations > 0);
        assert!(
            pod.ammat_ps() < tlm.ammat_ps(),
            "mempod={:?} tlm={:?}",
            pod.ammat_ps(),
            tlm.ammat_ps()
        );
    }

    #[test]
    fn migration_traffic_is_accounted() {
        let r = run(ManagerKind::MemPod, 40_000);
        assert_eq!(r.injected_migration_requests, r.migration.migrations * 128);
        assert_eq!(r.migration.bytes_moved, r.migration.migrations * 4096);
    }

    #[test]
    fn cameo_moves_most_data() {
        let cameo = run(ManagerKind::Cameo, 20_000);
        let pod = run(ManagerKind::MemPod, 20_000);
        assert!(cameo.migration.migrations > pod.migration.migrations * 2);
    }

    #[test]
    fn fast_service_fraction_grows_under_mempod() {
        let pod = run(ManagerKind::MemPod, 40_000);
        let tlm = run(ManagerKind::NoMigration, 40_000);
        assert!(
            pod.mem_stats.fast_service_fraction() > tlm.mem_stats.fast_service_fraction(),
            "pod={} tlm={}",
            pod.mem_stats.fast_service_fraction(),
            tlm.mem_stats.fast_service_fraction()
        );
    }

    #[test]
    fn meta_cache_adds_overhead() {
        let mut sys = SystemConfig::tiny();
        let free = Simulator::new(SimConfig::new(sys.clone(), ManagerKind::MemPod))
            .unwrap()
            .run(&demo_trace(20_000));
        sys.metadata_cache_bytes = Some(16 << 10);
        let cached = Simulator::new(SimConfig::new(sys, ManagerKind::MemPod))
            .unwrap()
            .run(&demo_trace(20_000));
        assert!(cached.injected_meta_requests > 0);
        assert!(cached.meta_cache.expect("stats").lookups > 0);
        assert!(
            cached.ammat_ps() > free.ammat_ps(),
            "cached={:?} free={:?}",
            cached.ammat_ps(),
            free.ammat_ps()
        );
    }

    #[test]
    fn deterministic_given_same_inputs() {
        let a = run(ManagerKind::Thm, 10_000);
        let b = run(ManagerKind::Thm, 10_000);
        assert_eq!(a.total_stall, b.total_stall);
        assert_eq!(a.migration.migrations, b.migration.migrations);
    }

    fn run_with_memory_sink(
        kind: ManagerKind,
        n: usize,
    ) -> (SimReport, std::sync::Arc<std::sync::Mutex<Vec<String>>>) {
        let sink = mempod_telemetry::MemorySink::new();
        let lines = sink.handle();
        let cfg = SimConfig::new(SystemConfig::tiny(), kind);
        let report = Simulator::new(cfg)
            .expect("valid")
            .with_telemetry(Telemetry::with_sink(Box::new(sink)))
            .run(&demo_trace(n));
        (report, lines)
    }

    #[test]
    fn telemetry_run_populates_epoch_timeline() {
        let (report, _) = run_with_memory_sink(ManagerKind::MemPod, 40_000);
        assert!(
            !report.timeline.is_empty(),
            "a 40k-request hotcold trace spans multiple 50us epochs"
        );
        let last = report.timeline.last().expect("non-empty");
        // Cumulative fields are consistent with the report.
        assert!(last.requests <= report.requests);
        assert!(last.ammat_ps_so_far.is_some());
        // The probe was attached, so queue-depth percentiles exist in at
        // least one window with traffic.
        assert!(report
            .timeline
            .iter()
            .any(|s| s.queue_depth_p50.is_some() && s.queue_depth_p99.is_some()));
        // Percentile ordering holds wherever both are present.
        for s in &report.timeline {
            if let (Some(p50), Some(p99)) = (s.queue_depth_p50, s.queue_depth_p99) {
                assert!(p50 <= p99, "p50={p50} p99={p99}");
            }
        }
        // Epochs advance strictly.
        for w in report.timeline.windows(2) {
            assert!(w[0].epoch < w[1].epoch);
        }
        // MemPod migrated, and the timeline saw it happen.
        let migs: u64 = report.timeline.iter().map(|s| s.migrations_delta).sum();
        assert_eq!(migs, report.migration.migrations);
        let pod_bytes: u64 = report
            .timeline
            .iter()
            .flat_map(|s| s.per_pod_bytes_delta.iter().copied())
            .sum();
        assert_eq!(pod_bytes, report.migration.bytes_moved);
    }

    #[test]
    fn telemetry_sink_receives_migration_and_epoch_events() {
        let (report, lines) = run_with_memory_sink(ManagerKind::MemPod, 40_000);
        assert!(report.migration.migrations > 0);
        let lines = lines.lock().expect("sink mutex");
        // Events are externally tagged: {"kind":{"MigrationStart":{...}}}.
        let kind_count = |k: &str| {
            lines
                .iter()
                .filter(|l| l.contains(&format!("\"kind\":{{\"{k}\"")))
                .count() as u64
        };
        assert_eq!(kind_count("MigrationStart"), report.migration.migrations);
        assert_eq!(kind_count("MigrationComplete"), report.migration.migrations);
        assert_eq!(kind_count("RemapSwap"), report.migration.migrations);
        assert_eq!(kind_count("Epoch"), report.timeline.len() as u64);
        // Every line is valid JSON (round-trips through the vendored shim).
        for l in lines.iter() {
            let v: serde_json::Value = serde_json::from_str(l).expect("valid JSONL");
            assert!(v.get("t_ps").is_some(), "event carries a timestamp: {l}");
        }
    }

    #[test]
    fn telemetry_manager_counters_appear_in_snapshots() {
        let (report, _) = run_with_memory_sink(ManagerKind::MemPod, 40_000);
        let epochs: u64 = report
            .timeline
            .iter()
            .filter_map(|s| s.manager.get("mempod.epochs").copied())
            .sum();
        assert!(epochs > 0, "per-window mempod.epochs deltas sum > 0");
    }

    #[test]
    fn progress_counter_reaches_request_total() {
        let counter = Arc::new(AtomicU64::new(0));
        let cfg = SimConfig::new(SystemConfig::tiny(), ManagerKind::NoMigration);
        let report = Simulator::new(cfg)
            .expect("valid")
            .with_progress(Arc::clone(&counter))
            .run(&demo_trace(10_000));
        assert_eq!(counter.load(Ordering::Relaxed), report.requests);
    }

    #[test]
    fn disabled_telemetry_leaves_no_timeline_and_matches_enabled_results() {
        let plain = run(ManagerKind::MemPod, 20_000);
        assert!(plain.timeline.is_empty());
        let (telem, _) = run_with_memory_sink(ManagerKind::MemPod, 20_000);
        // Observation must not perturb the simulation.
        assert_eq!(plain.total_stall, telem.total_stall);
        assert_eq!(plain.migration.migrations, telem.migration.migrations);
    }
}
