//! Parallel experiment runner.
//!
//! The paper's figures are matrices (workloads × mechanisms × parameters).
//! [`try_run_jobs`] executes a list of independent [`Job`]s across scoped
//! worker threads (`thread::scope` via the `mempod-sync` facade; no
//! external thread-pool crates), preserving job order in the output.
//! Traces are shared by `Arc` so a workload generated once can feed every
//! mechanism.
//!
//! This module is on the audited hot path (`mempod-audit` forbids
//! `unwrap`/`expect`/`panic!` here), so every fallible step propagates a
//! [`SimError`]; the panicking convenience wrapper
//! [`run_jobs`](crate::run_jobs) lives at the crate surface instead.

use std::time::Instant;

use mempod_sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use mempod_sync::{thread, Arc, Mutex};

use mempod_trace::Trace;

use crate::config::{SimConfig, SimError};
use crate::metrics::SimReport;
use crate::simulator::Simulator;

/// One simulation to run: a configuration plus a shared trace.
#[derive(Debug, Clone)]
pub struct Job {
    /// The simulation configuration.
    pub cfg: SimConfig,
    /// The trace to drive (shared across jobs).
    pub trace: Arc<Trace>,
}

impl Job {
    /// Creates a job.
    pub fn new(cfg: SimConfig, trace: Arc<Trace>) -> Self {
        Job { cfg, trace }
    }
}

/// Lifecycle of one job within a monitored run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Not yet picked up by a worker.
    Pending,
    /// Currently simulating on a worker thread.
    Running,
    /// Finished (successfully or with a config error).
    Done,
}

const STATE_PENDING: u8 = 0;
const STATE_RUNNING: u8 = 1;
const STATE_DONE: u8 = 2;

/// Live view of one job: written by its worker, read by a monitor thread.
///
/// All fields are lock-free; a monitor polling mid-update sees a slightly
/// stale but internally plausible picture (e.g. `Done` with the final
/// request count a poll late), never a torn one.
#[derive(Debug)]
pub struct JobProgress {
    /// Short human label (`workload/manager`).
    label: String,
    /// Foreground requests simulated so far (batched by the simulator, so
    /// this trails the true count by at most the flush granularity).
    requests_done: Arc<AtomicU64>,
    /// Total requests this job will simulate.
    total_requests: u64,
    state: AtomicU8,
    /// Milliseconds after run start when the worker picked the job up.
    started_ms: AtomicU64,
    /// Milliseconds after run start when the job finished.
    finished_ms: AtomicU64,
}

impl JobProgress {
    fn new(label: String, total_requests: u64) -> Self {
        JobProgress {
            label,
            requests_done: Arc::new(AtomicU64::new(0)),
            total_requests,
            state: AtomicU8::new(STATE_PENDING),
            started_ms: AtomicU64::new(0),
            finished_ms: AtomicU64::new(0),
        }
    }

    /// The job's short label (`workload/manager`).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Requests simulated so far.
    pub fn requests_done(&self) -> u64 {
        self.requests_done.load(Ordering::Relaxed)
    }

    /// Requests the job will simulate in total.
    pub fn total_requests(&self) -> u64 {
        self.total_requests
    }

    /// Current lifecycle state.
    pub fn state(&self) -> JobState {
        match self.state.load(Ordering::Acquire) {
            STATE_RUNNING => JobState::Running,
            STATE_DONE => JobState::Done,
            _ => JobState::Pending,
        }
    }

    /// Milliseconds after run start when a worker picked the job up
    /// (`None` while pending).
    pub fn started_ms(&self) -> Option<u64> {
        (self.state() != JobState::Pending).then(|| self.started_ms.load(Ordering::Relaxed))
    }

    /// Wall-clock milliseconds the job ran for (`None` until done).
    pub fn wall_ms(&self) -> Option<u64> {
        (self.state() == JobState::Done).then(|| {
            self.finished_ms
                .load(Ordering::Relaxed)
                .saturating_sub(self.started_ms.load(Ordering::Relaxed))
        })
    }

    /// How long the job has been running as of `elapsed_ms` into the run
    /// (`None` unless currently running).
    pub fn running_for_ms(&self, elapsed_ms: u64) -> Option<u64> {
        (self.state() == JobState::Running)
            .then(|| elapsed_ms.saturating_sub(self.started_ms.load(Ordering::Relaxed)))
    }
}

/// Shared live view of a whole [`try_run_jobs_with_progress`] batch.
///
/// Create one with [`RunProgress::for_jobs`], hand a clone of the `Arc` to
/// a monitor thread, and pass it to the runner; the monitor polls
/// [`total_done`](RunProgress::total_done) /
/// [`stragglers`](RunProgress::stragglers) at its own cadence while the
/// workers crunch.
#[derive(Debug)]
pub struct RunProgress {
    origin: Instant,
    jobs: Vec<JobProgress>,
}

impl RunProgress {
    /// A progress board with one slot per job, labelled
    /// `workload/manager`. Clocks start now.
    pub fn for_jobs(jobs: &[Job]) -> Arc<Self> {
        Arc::new(RunProgress {
            origin: Instant::now(),
            jobs: jobs
                .iter()
                .map(|j| {
                    JobProgress::new(
                        format!("{}/{}", j.trace.name(), j.cfg.manager),
                        j.trace.len() as u64,
                    )
                })
                .collect(),
        })
    }

    /// Per-job progress slots, in job order.
    pub fn jobs(&self) -> &[JobProgress] {
        &self.jobs
    }

    /// Milliseconds since the board was created.
    pub fn elapsed_ms(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    /// Requests simulated so far across every job.
    pub fn total_done(&self) -> u64 {
        self.jobs.iter().map(JobProgress::requests_done).sum()
    }

    /// Jobs finished so far.
    pub fn jobs_done(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| j.state() == JobState::Done)
            .count()
    }

    /// Aggregate throughput in requests per second since run start
    /// (`None` in the first millisecond, before the clock can divide).
    pub fn throughput_rps(&self) -> Option<f64> {
        let ms = self.elapsed_ms();
        (ms > 0).then(|| self.total_done() as f64 * 1000.0 / ms as f64)
    }

    /// Indices of *stragglers*: jobs still running after more than
    /// `factor` × the median wall time of completed jobs. Empty until at
    /// least one job has completed (there is no baseline to compare to).
    pub fn stragglers(&self, factor: f64) -> Vec<usize> {
        let mut walls: Vec<u64> = self.jobs.iter().filter_map(JobProgress::wall_ms).collect();
        if walls.is_empty() {
            return Vec::new();
        }
        walls.sort_unstable();
        let median = walls[walls.len() / 2];
        let threshold = (median as f64 * factor).max(1.0);
        let elapsed = self.elapsed_ms();
        self.jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| {
                j.running_for_ms(elapsed)
                    .is_some_and(|ms| ms as f64 > threshold)
            })
            .map(|(i, _)| i)
            .collect()
    }
}

/// Hard-timeout policy for a watchdog-monitored run.
///
/// The watchdog escalates beyond [`RunProgress::stragglers`] (report-only):
/// a job running longer than `hard_timeout_ms` is *cancelled* through its
/// simulator's cooperative cancellation token and surfaced as
/// [`SimError::JobTimedOut`] in the partial-results summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// How often the monitor samples job states, in milliseconds
    /// (clamped to at least 1).
    pub poll_ms: u64,
    /// A running job is cancelled once it has been running for more than
    /// this many wall-clock milliseconds.
    pub hard_timeout_ms: u64,
}

/// Runs all jobs on `threads` workers, returning reports in job order.
///
/// # Errors
///
/// Returns the first [`SimError`] (in job order) if any job's configuration
/// is rejected by [`Simulator::new`]. Remaining jobs still run; only the
/// result assembly short-circuits.
pub fn try_run_jobs(jobs: Vec<Job>, threads: usize) -> Result<Vec<SimReport>, SimError> {
    try_run_jobs_with_progress(jobs, threads, None)
}

/// [`try_run_jobs`] with an optional live progress board.
///
/// When `progress` is supplied it must come from [`RunProgress::for_jobs`]
/// on the same job list (slot `i` tracks job `i`; a shorter board simply
/// leaves later jobs untracked). Workers flip each slot to `Running`/`Done`
/// and stream batched request counts into it via
/// [`Simulator::with_progress`].
///
/// # Errors
///
/// Same contract as [`try_run_jobs`].
pub fn try_run_jobs_with_progress(
    jobs: Vec<Job>,
    threads: usize,
    progress: Option<Arc<RunProgress>>,
) -> Result<Vec<SimReport>, SimError> {
    run_jobs_core(jobs, threads, progress, None)
        .into_iter()
        .collect()
}

/// [`try_run_jobs_with_progress`] under a hard-timeout watchdog, returning
/// a *partial-results summary*: per-job `Result`s in job order, where jobs
/// that finished keep their reports and jobs the watchdog cancelled come
/// back as [`SimError::JobTimedOut`] — one slow job no longer forfeits the
/// whole batch.
///
/// A progress board is created automatically when `progress` is `None`
/// (the watchdog needs per-job running times to measure timeouts against).
pub fn try_run_jobs_with_watchdog(
    jobs: Vec<Job>,
    threads: usize,
    progress: Option<Arc<RunProgress>>,
    watchdog: WatchdogConfig,
) -> Vec<Result<SimReport, SimError>> {
    let progress = match progress {
        Some(board) => board,
        None => RunProgress::for_jobs(&jobs),
    };
    run_jobs_core(jobs, threads, Some(progress), Some(watchdog))
}

/// Shared engine behind the `try_run_jobs*` family: scoped workers pull
/// jobs off a shared counter; an optional watchdog thread polls the
/// progress board and trips per-job cancellation tokens.
fn run_jobs_core(
    jobs: Vec<Job>,
    threads: usize,
    progress: Option<Arc<RunProgress>>,
    watchdog: Option<WatchdogConfig>,
) -> Vec<Result<SimReport, SimError>> {
    let threads = threads.max(1).min(jobs.len().max(1));
    let n = jobs.len();
    let jobs = Arc::new(jobs);
    let next = AtomicUsize::new(0);
    let remaining = AtomicUsize::new(n);
    let cancels: Vec<Arc<AtomicBool>> = (0..n).map(|_| Arc::new(AtomicBool::new(false))).collect();
    let results: Mutex<Vec<Option<Result<SimReport, SimError>>>> =
        Mutex::new((0..n).map(|_| None).collect());

    thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = &jobs[i];
                let slot = progress.as_deref().and_then(|p| p.jobs.get(i));
                if let Some(slot) = slot {
                    let now = progress.as_deref().map_or(0, |p| p.elapsed_ms());
                    slot.started_ms.store(now, Ordering::Relaxed);
                    slot.state.store(STATE_RUNNING, Ordering::Release);
                }
                let outcome = Simulator::new(job.cfg.clone()).map(|sim| {
                    let sim = match slot {
                        Some(slot) => sim.with_progress(Arc::clone(&slot.requests_done)),
                        None => sim,
                    };
                    let sim = match (watchdog.is_some(), cancels.get(i)) {
                        (true, Some(token)) => sim.with_cancel(Arc::clone(token)),
                        _ => sim,
                    };
                    sim.run(&job.trace)
                });
                if let Some(slot) = slot {
                    let now = progress.as_deref().map_or(0, |p| p.elapsed_ms());
                    slot.finished_ms.store(now, Ordering::Relaxed);
                    slot.state.store(STATE_DONE, Ordering::Release);
                }
                // Index-keyed slots are either fully written or absent, so
                // recovering from a poisoned lock here is sound; worker
                // panics still propagate out of the scope.
                results.lock_recovering()[i] = Some(outcome);
                remaining.fetch_sub(1, Ordering::Release);
            });
        }
        if let (Some(w), Some(board)) = (watchdog, progress.as_deref()) {
            // The monitor lives in the same scope, so it can never outlive
            // the tokens; it exits as soon as the last job reports in.
            let remaining = &remaining;
            let cancels = &cancels;
            scope.spawn(move || {
                while remaining.load(Ordering::Acquire) > 0 {
                    thread::sleep(std::time::Duration::from_millis(w.poll_ms.max(1)));
                    let elapsed = board.elapsed_ms();
                    for (slot, token) in board.jobs.iter().zip(cancels) {
                        if slot
                            .running_for_ms(elapsed)
                            .is_some_and(|ms| ms > w.hard_timeout_ms)
                        {
                            // Release pairs with the simulator's Acquire
                            // poll at the batch boundary.
                            token.store(true, Ordering::Release);
                        }
                    }
                }
            });
        }
        // Leaving the scope joins every worker; a worker panic (a bug, not
        // a config error) re-raises here without any explicit join code.
    });

    let slots = results.into_inner();
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            let outcome = slot.unwrap_or(Err(SimError::WorkerLost { job: i }));
            match outcome {
                // A report flagged `cancelled` after its token tripped is
                // the watchdog's doing: convert it to the timeout error so
                // a truncated run is never mistaken for a complete one.
                Ok(r)
                    if r.faults.cancelled
                        && cancels.get(i).is_some_and(|c| c.load(Ordering::Relaxed)) =>
                {
                    Err(SimError::JobTimedOut { job: i })
                }
                other => other,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempod_core::ManagerKind;
    use mempod_trace::{TraceGenerator, WorkloadSpec};
    use mempod_types::SystemConfig;

    #[test]
    fn parallel_matches_job_order_and_serial_results() {
        let sys = SystemConfig::tiny();
        let trace = Arc::new(
            TraceGenerator::new(WorkloadSpec::hotcold_demo(), 1)
                .take_requests(5_000, &sys.geometry),
        );
        let kinds = [
            ManagerKind::MemPod,
            ManagerKind::NoMigration,
            ManagerKind::Thm,
            ManagerKind::HbmOnly,
        ];
        let jobs: Vec<Job> = kinds
            .iter()
            .map(|&k| Job::new(SimConfig::new(sys.clone(), k), trace.clone()))
            .collect();
        let parallel = try_run_jobs(jobs.clone(), 4).expect("all configs valid");
        let serial: Vec<SimReport> = jobs
            .into_iter()
            .map(|j| Simulator::new(j.cfg).unwrap().run(&j.trace))
            .collect();
        assert_eq!(parallel.len(), 4);
        for (p, s) in parallel.iter().zip(&serial) {
            assert_eq!(p.manager, s.manager);
            assert_eq!(p.total_stall, s.total_stall);
        }
    }

    #[test]
    fn empty_job_list_is_fine() {
        assert!(try_run_jobs(Vec::new(), 8)
            .expect("empty is valid")
            .is_empty());
    }

    #[test]
    fn progress_board_tracks_every_job_to_done() {
        let sys = SystemConfig::tiny();
        let trace = Arc::new(
            TraceGenerator::new(WorkloadSpec::hotcold_demo(), 1)
                .take_requests(5_000, &sys.geometry),
        );
        let jobs: Vec<Job> = [ManagerKind::MemPod, ManagerKind::NoMigration]
            .iter()
            .map(|&k| Job::new(SimConfig::new(sys.clone(), k), trace.clone()))
            .collect();
        let progress = RunProgress::for_jobs(&jobs);
        assert_eq!(progress.jobs().len(), 2);
        assert_eq!(progress.jobs()[0].state(), JobState::Pending);
        assert_eq!(progress.jobs()[0].total_requests(), 5_000);
        assert!(progress.jobs()[0].label().contains("MemPod"));

        let reports = try_run_jobs_with_progress(jobs, 2, Some(Arc::clone(&progress)))
            .expect("valid configs");
        assert_eq!(reports.len(), 2);
        for (slot, report) in progress.jobs().iter().zip(&reports) {
            assert_eq!(slot.state(), JobState::Done);
            assert_eq!(slot.requests_done(), report.requests);
            assert!(slot.wall_ms().is_some());
            assert!(slot.started_ms().is_some());
        }
        assert_eq!(progress.total_done(), 10_000);
        assert_eq!(progress.jobs_done(), 2);
        // Nothing is still running, so nothing can be a straggler.
        assert!(progress.stragglers(2.0).is_empty());
    }

    #[test]
    fn stragglers_need_a_completed_baseline() {
        let sys = SystemConfig::tiny();
        let trace = Arc::new(
            TraceGenerator::new(WorkloadSpec::hotcold_demo(), 1).take_requests(100, &sys.geometry),
        );
        let jobs = vec![Job::new(
            SimConfig::new(sys, ManagerKind::NoMigration),
            trace,
        )];
        let progress = RunProgress::for_jobs(&jobs);
        // No job has completed yet: no baseline, no stragglers.
        assert!(progress.stragglers(1.0).is_empty());
        assert_eq!(progress.total_done(), 0);
    }

    #[test]
    fn watchdog_cancels_a_job_past_its_hard_timeout() {
        let sys = SystemConfig::tiny();
        let trace = Arc::new(
            TraceGenerator::new(WorkloadSpec::hotcold_demo(), 1)
                .take_requests(200_000, &sys.geometry),
        );
        let jobs = vec![Job::new(SimConfig::new(sys, ManagerKind::MemPod), trace)];
        let outcomes = try_run_jobs_with_watchdog(
            jobs,
            1,
            None,
            WatchdogConfig {
                poll_ms: 1,
                hard_timeout_ms: 0,
            },
        );
        assert_eq!(outcomes.len(), 1);
        assert!(matches!(outcomes[0], Err(SimError::JobTimedOut { job: 0 })));
    }

    #[test]
    fn watchdog_leaves_prompt_jobs_alone() {
        let sys = SystemConfig::tiny();
        let trace = Arc::new(
            TraceGenerator::new(WorkloadSpec::hotcold_demo(), 1)
                .take_requests(2_000, &sys.geometry),
        );
        let jobs: Vec<Job> = [ManagerKind::MemPod, ManagerKind::NoMigration]
            .iter()
            .map(|&k| Job::new(SimConfig::new(sys.clone(), k), trace.clone()))
            .collect();
        let plain = try_run_jobs(jobs.clone(), 2).expect("valid configs");
        let outcomes = try_run_jobs_with_watchdog(
            jobs,
            2,
            None,
            WatchdogConfig {
                poll_ms: 1,
                hard_timeout_ms: 600_000,
            },
        );
        assert_eq!(outcomes.len(), 2);
        for (outcome, baseline) in outcomes.iter().zip(&plain) {
            let r = outcome.as_ref().expect("finished well inside timeout");
            assert_eq!(r.total_stall, baseline.total_stall);
            assert!(!r.faults.cancelled);
        }
    }

    #[test]
    fn partial_results_keep_job_order_under_mixed_outcomes() {
        let sys = SystemConfig::tiny();
        let small = Arc::new(
            TraceGenerator::new(WorkloadSpec::hotcold_demo(), 1)
                .take_requests(2_000, &sys.geometry),
        );
        let huge = Arc::new(
            TraceGenerator::new(WorkloadSpec::hotcold_demo(), 2)
                .take_requests(400_000, &sys.geometry),
        );
        let jobs = vec![
            Job::new(
                SimConfig::new(sys.clone(), ManagerKind::NoMigration),
                Arc::clone(&small),
            ),
            Job::new(SimConfig::new(sys.clone(), ManagerKind::MemPod), huge),
            Job::new(SimConfig::new(sys, ManagerKind::Thm), small),
        ];
        let outcomes = try_run_jobs_with_watchdog(
            jobs,
            3,
            None,
            WatchdogConfig {
                poll_ms: 1,
                hard_timeout_ms: 5,
            },
        );
        assert_eq!(outcomes.len(), 3);
        // Ordering assertion: slot `i` always describes job `i`, whether
        // it finished or timed out — a timeout never shifts later results.
        for (i, outcome) in outcomes.iter().enumerate() {
            match outcome {
                Ok(r) => assert_eq!(r.requests, 2_000, "job {i}"),
                Err(SimError::JobTimedOut { job }) => assert_eq!(*job, i),
                Err(e) => panic!("job {i}: unexpected error {e:?}"),
            }
        }
        // The 400k-request job cannot finish inside a 5ms hard timeout.
        assert!(
            matches!(outcomes[1], Err(SimError::JobTimedOut { job: 1 })),
            "outcome 1 was {:?}",
            outcomes[1].as_ref().map(|r| r.requests)
        );
    }

    #[test]
    fn result_slots_recover_from_a_poisoned_lock_with_consistent_state() {
        // The runner's result board pattern in isolation: a worker dies
        // holding the lock mid-update; survivors recover the poisoned
        // lock and every slot is still either complete or absent.
        let results: Arc<Mutex<Vec<Option<usize>>>> = Arc::new(Mutex::new(vec![None; 3]));
        let r2 = Arc::clone(&results);
        let dead = thread::spawn(move || {
            let mut g = r2.lock_recovering();
            g[0] = Some(0);
            panic!("worker dies mid-update");
        });
        assert!(dead.join().is_err());
        assert!(results.is_poisoned(), "unwinding guard must poison");
        for i in 1..3 {
            results.lock_recovering()[i] = Some(i);
        }
        let slots = results.lock_recovering();
        for (i, slot) in slots.iter().enumerate() {
            assert_eq!(*slot, Some(i), "slot {i} complete and untorn");
        }
    }

    #[test]
    fn single_thread_works() {
        let sys = SystemConfig::tiny();
        let trace = Arc::new(
            TraceGenerator::new(WorkloadSpec::hotcold_demo(), 1)
                .take_requests(1_000, &sys.geometry),
        );
        let jobs = vec![Job::new(
            SimConfig::new(sys, ManagerKind::NoMigration),
            trace,
        )];
        assert_eq!(try_run_jobs(jobs, 1).expect("valid").len(), 1);
    }
}
