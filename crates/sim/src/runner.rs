//! Parallel experiment runner.
//!
//! The paper's figures are matrices (workloads × mechanisms × parameters).
//! [`try_run_jobs`] executes a list of independent [`Job`]s across scoped
//! worker threads (`std::thread::scope`; no external thread-pool crates),
//! preserving job order in the output. Traces are shared by `Arc` so a
//! workload generated once can feed every mechanism.
//!
//! This module is on the audited hot path (`mempod-audit` forbids
//! `unwrap`/`expect`/`panic!` here), so every fallible step propagates a
//! [`SimError`]; the panicking convenience wrapper
//! [`run_jobs`](crate::run_jobs) lives at the crate surface instead.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use mempod_trace::Trace;

use crate::config::{SimConfig, SimError};
use crate::metrics::SimReport;
use crate::simulator::Simulator;

/// One simulation to run: a configuration plus a shared trace.
#[derive(Debug, Clone)]
pub struct Job {
    /// The simulation configuration.
    pub cfg: SimConfig,
    /// The trace to drive (shared across jobs).
    pub trace: Arc<Trace>,
}

impl Job {
    /// Creates a job.
    pub fn new(cfg: SimConfig, trace: Arc<Trace>) -> Self {
        Job { cfg, trace }
    }
}

/// Locks a mutex, recovering the guard if a previous holder panicked.
///
/// Worker panics propagate out of `std::thread::scope` anyway; the data
/// under the lock is per-slot writes that are either complete or absent,
/// so continuing past poison is sound and keeps this path panic-free.
fn lock_unpoisoned<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Runs all jobs on `threads` workers, returning reports in job order.
///
/// # Errors
///
/// Returns the first [`SimError`] (in job order) if any job's configuration
/// is rejected by [`Simulator::new`]. Remaining jobs still run; only the
/// result assembly short-circuits.
pub fn try_run_jobs(jobs: Vec<Job>, threads: usize) -> Result<Vec<SimReport>, SimError> {
    let threads = threads.max(1).min(jobs.len().max(1));
    let n = jobs.len();
    let jobs = Arc::new(jobs);
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<Result<SimReport, SimError>>>> =
        Mutex::new((0..n).map(|_| None).collect());

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = &jobs[i];
                let outcome = Simulator::new(job.cfg.clone()).map(|sim| sim.run(&job.trace));
                lock_unpoisoned(&results)[i] = Some(outcome);
            });
        }
        // Leaving the scope joins every worker; a worker panic (a bug, not
        // a config error) re-raises here without any explicit join code.
    });

    let slots = match results.into_inner() {
        Ok(slots) => slots,
        Err(poisoned) => poisoned.into_inner(),
    };
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| slot.unwrap_or(Err(SimError::WorkerLost { job: i })))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempod_core::ManagerKind;
    use mempod_trace::{TraceGenerator, WorkloadSpec};
    use mempod_types::SystemConfig;

    #[test]
    fn parallel_matches_job_order_and_serial_results() {
        let sys = SystemConfig::tiny();
        let trace = Arc::new(
            TraceGenerator::new(WorkloadSpec::hotcold_demo(), 1)
                .take_requests(5_000, &sys.geometry),
        );
        let kinds = [
            ManagerKind::MemPod,
            ManagerKind::NoMigration,
            ManagerKind::Thm,
            ManagerKind::HbmOnly,
        ];
        let jobs: Vec<Job> = kinds
            .iter()
            .map(|&k| Job::new(SimConfig::new(sys.clone(), k), trace.clone()))
            .collect();
        let parallel = try_run_jobs(jobs.clone(), 4).expect("all configs valid");
        let serial: Vec<SimReport> = jobs
            .into_iter()
            .map(|j| Simulator::new(j.cfg).unwrap().run(&j.trace))
            .collect();
        assert_eq!(parallel.len(), 4);
        for (p, s) in parallel.iter().zip(&serial) {
            assert_eq!(p.manager, s.manager);
            assert_eq!(p.total_stall, s.total_stall);
        }
    }

    #[test]
    fn empty_job_list_is_fine() {
        assert!(try_run_jobs(Vec::new(), 8)
            .expect("empty is valid")
            .is_empty());
    }

    #[test]
    fn single_thread_works() {
        let sys = SystemConfig::tiny();
        let trace = Arc::new(
            TraceGenerator::new(WorkloadSpec::hotcold_demo(), 1)
                .take_requests(1_000, &sys.geometry),
        );
        let jobs = vec![Job::new(
            SimConfig::new(sys, ManagerKind::NoMigration),
            trace,
        )];
        assert_eq!(try_run_jobs(jobs, 1).expect("valid").len(), 1);
    }
}
