//! Parallel experiment runner.
//!
//! The paper's figures are matrices (workloads × mechanisms × parameters).
//! [`run_jobs`] executes a list of independent [`Job`]s across scoped worker
//! threads, preserving job order in the output. Traces are shared by `Arc`
//! so a workload generated once can feed every mechanism.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use mempod_trace::Trace;
use parking_lot::Mutex;

use crate::config::SimConfig;
use crate::metrics::SimReport;
use crate::simulator::Simulator;

/// One simulation to run: a configuration plus a shared trace.
#[derive(Debug, Clone)]
pub struct Job {
    /// The simulation configuration.
    pub cfg: SimConfig,
    /// The trace to drive (shared across jobs).
    pub trace: Arc<Trace>,
}

impl Job {
    /// Creates a job.
    pub fn new(cfg: SimConfig, trace: Arc<Trace>) -> Self {
        Job { cfg, trace }
    }
}

/// Runs all jobs on `threads` workers, returning reports in job order.
///
/// # Panics
///
/// Panics if any job's configuration is invalid ([`Simulator::new`] fails) —
/// experiment matrices are built programmatically, so an invalid entry is a
/// harness bug worth failing loudly on.
pub fn run_jobs(jobs: Vec<Job>, threads: usize) -> Vec<SimReport> {
    let threads = threads.max(1).min(jobs.len().max(1));
    let n = jobs.len();
    let jobs = Arc::new(jobs);
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<SimReport>>> = Mutex::new(vec![None; n]);

    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = &jobs[i];
                let report = Simulator::new(job.cfg.clone())
                    .expect("experiment matrix contains an invalid configuration")
                    .run(&job.trace);
                results.lock()[i] = Some(report);
            });
        }
    })
    .expect("worker thread panicked");

    results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("every job produced a report"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempod_core::ManagerKind;
    use mempod_trace::{TraceGenerator, WorkloadSpec};
    use mempod_types::SystemConfig;

    #[test]
    fn parallel_matches_job_order_and_serial_results() {
        let sys = SystemConfig::tiny();
        let trace = Arc::new(
            TraceGenerator::new(WorkloadSpec::hotcold_demo(), 1)
                .take_requests(5_000, &sys.geometry),
        );
        let kinds = [
            ManagerKind::MemPod,
            ManagerKind::NoMigration,
            ManagerKind::Thm,
            ManagerKind::HbmOnly,
        ];
        let jobs: Vec<Job> = kinds
            .iter()
            .map(|&k| Job::new(SimConfig::new(sys.clone(), k), trace.clone()))
            .collect();
        let parallel = run_jobs(jobs.clone(), 4);
        let serial: Vec<SimReport> = jobs
            .into_iter()
            .map(|j| Simulator::new(j.cfg).unwrap().run(&j.trace))
            .collect();
        assert_eq!(parallel.len(), 4);
        for (p, s) in parallel.iter().zip(&serial) {
            assert_eq!(p.manager, s.manager);
            assert_eq!(p.total_stall, s.total_stall);
        }
    }

    #[test]
    fn empty_job_list_is_fine() {
        assert!(run_jobs(Vec::new(), 8).is_empty());
    }

    #[test]
    fn single_thread_works() {
        let sys = SystemConfig::tiny();
        let trace = Arc::new(
            TraceGenerator::new(WorkloadSpec::hotcold_demo(), 1)
                .take_requests(1_000, &sys.geometry),
        );
        let jobs = vec![Job::new(
            SimConfig::new(sys, ManagerKind::NoMigration),
            trace,
        )];
        assert_eq!(run_jobs(jobs, 1).len(), 1);
    }
}
