//! Per-pod shard state for the sharded event loop.
//!
//! A [`Shard`] owns one residue class of the machine: the channels whose
//! global index is `shard_id (mod shard_count)` (via
//! [`MemorySystem::into_shards`]) and every piece of engine state keyed by
//! a frame or page of that class — outstanding token owners, in-flight
//! migration state machines, blocked-page tracking, and migration lanes.
//! Because a shard count is only ever chosen so that frames, pages, pods,
//! and channels of one residue class never interact with another's (see
//! `Simulator::effective_shards`), shards can tick through the same global
//! arrival grid independently and reproduce the sequential engine's
//! decisions *bit for bit*: each per-channel decision depends only on that
//! channel's queue, and every submission a shard makes lands on a channel
//! it owns.
//!
//! The same `Shard` type drives the sequential path (one shard over the
//! unsharded system), so there is exactly one copy of the migration/
//! blocking/metadata state machine to keep correct.

use std::collections::{BTreeMap, HashMap, VecDeque};

use mempod_core::Migration;
use mempod_dram::{Completion, MemorySystem, Priority, ReqToken};
use mempod_faults::backoff_after;
use mempod_telemetry::span::{child_span_id, migration_span_id};
use mempod_telemetry::{EventKind, SpanName, SpanRecord, SPAN_NONE};
use mempod_types::convert::{u64_from_usize, usize_from_u32};
use mempod_types::{AccessKind, FrameId, MigrationFaultSpec, PageId, Picos};

/// Initial `blocked`-map size that triggers a prune sweep.
const PRUNE_WATERMARK_MIN: usize = 8192;

/// Panic payload for the injected shard-worker crash
/// ([`mempod_types::WorkerPanic`]); the barrier recognises any worker
/// panic, this type just keeps the unwind payload self-describing.
#[derive(Debug)]
pub(crate) struct InjectedShardPanic;

/// A foreground access waiting to be issued (possibly via a metadata
/// fetch).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Waiter {
    /// Original arrival: the AMMAT accounting base.
    pub(crate) arrival: Picos,
    /// Earliest issue time accumulated so far (stall, blocking, fetch).
    pub(crate) issue: Picos,
    pub(crate) frame: FrameId,
    pub(crate) line: u32,
    pub(crate) kind: AccessKind,
    /// Whether a metadata fetch must complete before the access issues.
    pub(crate) needs_meta: bool,
    /// Page used to spread metadata-fetch addresses.
    pub(crate) page: PageId,
    /// Request-service span id, or [`SPAN_NONE`] when the request is
    /// unsampled (or span tracing is off). Derived on the main thread at
    /// admission from the request's stable identity, so every shard count
    /// samples the same requests.
    pub(crate) span: u64,
}

/// Who a completed token belongs to.
#[derive(Debug, Clone, Copy)]
enum TokenOwner {
    Foreground {
        arrival: Picos,
        /// Request span id ([`SPAN_NONE`] when unsampled).
        span: u64,
        /// Issue time of the foreground access (span phase boundary).
        issue: Picos,
        /// Frame serviced (the span's anchor coordinate).
        frame: FrameId,
    },
    MigrationRead {
        mig: usize,
    },
    MigrationWrite {
        mig: usize,
    },
    MetaFetch {
        waiter: Waiter,
    },
}

/// One in-flight migration's execution state.
#[derive(Debug)]
pub(crate) struct MigExec {
    m: Migration,
    pending: usize,
    latest: Picos,
    started: bool,
    reads_done: bool,
    pub(crate) done: bool,
    finish: Picos,
    /// When the *first* read phase launched (for the completion event's
    /// latency — retries extend the latency, they do not reset it).
    t_start: Picos,
    /// Lifecycle span id (0 when span tracing is off; migrations are
    /// always traced when it is on — they are rare and load-bearing).
    span: u64,
    /// When the manager committed the swap (the lifecycle span's start).
    decided: Picos,
    /// When the *current* read-phase attempt launched (attempt spans).
    attempt_start: Picos,
    /// Injected-fault budget: read-phase attempts that must still abort.
    aborts_left: u32,
    /// Whether the abort budget ends in a permanent failure (the manager's
    /// map was already rolled back at admission; the engine only models
    /// the timing of the doomed attempts and never writes data).
    permanent: bool,
    /// Current read-phase attempt number (1-based).
    attempt: u32,
    pub(crate) waiters: Vec<Waiter>,
}

/// Lane key for serializing page swaps: pods migrate their pages one at a
/// time (the pod's migration driver is a single engine), and HMA's OS lane
/// is likewise serial. CAMEO's single-line swaps are not laned — they are
/// driven by the MCs themselves on each access.
fn lane_of(m: &Migration) -> Option<i64> {
    if !m.is_page_swap() {
        None // line swap: event-driven, unserialised
    } else {
        Some(m.pod.map_or(-1, i64::from))
    }
}

/// Why a page cannot be accessed right now.
#[derive(Debug, Clone, Copy)]
enum PageState {
    /// Swap in flight; index into the migration list.
    Migrating(usize),
    /// Swap finished at this time; accesses before it must wait.
    BlockedUntil(Picos),
}

/// One unit of admission-phase work routed to a shard, applied at a tick
/// of the global arrival grid.
#[derive(Debug, Clone, Copy)]
pub(crate) enum WorkItem {
    /// Register a migration the manager committed at this tick, with the
    /// fault plan's admission-time verdict (decided on the main thread so
    /// every shard count sees the same outcome).
    Migrate(Migration, Option<MigrationFaultSpec>),
    /// Admit a foreground access (after the manager translated it).
    Admit { page: PageId, w: Waiter },
}

/// All shards of one run, in residue-class order: `shards[s]` owns the
/// channels, frames, and pages whose index is `≡ s` modulo the set's
/// length. The per-shard engine state is replicated here — nothing in a
/// [`Shard`] is reachable from any other.
#[derive(Debug)]
pub(crate) struct ShardSet {
    pub(crate) shards: Vec<Shard>,
}

/// One residue class of the engine: its memory-system view plus all state
/// keyed by its frames and pages.
#[derive(Debug)]
pub(crate) struct Shard {
    /// Memory channels of this residue class ([`MemorySystem::shard_id`]).
    pub(crate) mem: MemorySystem,
    /// Pod count, for the pod-local metadata backing-store hash.
    pods: u32,
    /// Outstanding token ownership. Deliberately a `HashMap`: it is keyed
    /// by opaque per-shard tokens, touched on every completion, and never
    /// iterated (only insert/remove/is-empty), so ordering cannot leak.
    owners: HashMap<ReqToken, TokenOwner>,
    pub(crate) migs: Vec<MigExec>,
    /// Blocked pages. A `BTreeMap` so the prune sweep below iterates in a
    /// deterministic order (same reasoning as PR 6's `MeaTracker` switch).
    blocked: BTreeMap<PageId, PageState>,
    /// Per-lane FIFO of migration indices; front = currently running.
    /// `BTreeMap` for deterministic ordering under any future iteration.
    lanes: BTreeMap<i64, VecDeque<usize>>,
    pub(crate) total_stall: Picos,
    pub(crate) injected_migration: u64,
    pub(crate) injected_meta: u64,
    /// Injected migration-fault bookkeeping: exponential-backoff base and
    /// cap for retries (copied from the fault config; identical on every
    /// shard), and counters of aborted attempts and retries.
    pub(crate) backoff_base: Picos,
    pub(crate) backoff_cap: Picos,
    pub(crate) fault_aborts: u64,
    pub(crate) fault_retries: u64,
    /// Injected worker panic: fires on the given (1-based) `run_ticks`
    /// batch. Only the sharded path calls `run_ticks`, so a degraded
    /// sequential rerun can never re-trigger it.
    pub(crate) panic_at_batch: Option<u64>,
    batches_run: u64,
    /// Prune trigger for the blocked map (adapts upward under load).
    prune_watermark: usize,
    /// Whether events are worth buffering (telemetry enabled and the sink
    /// keeps lines).
    events_wanted: bool,
    /// Whether causal span tracing is on (implies `events_wanted`).
    spans_enabled: bool,
    /// Buffered `(t_ps, kind)` events since the last barrier flush, in
    /// emission order. The main thread merges buffers across shards in
    /// timestamp-then-shard-id order (`Telemetry::emit_merged`).
    pub(crate) events: Vec<(u64, EventKind)>,
}

impl Shard {
    /// Wraps one memory-system view as a shard. `spans_enabled` switches
    /// causal span emission on (only meaningful with `events_wanted`).
    pub(crate) fn new(
        mem: MemorySystem,
        pods: u32,
        events_wanted: bool,
        spans_enabled: bool,
    ) -> Self {
        Shard {
            mem,
            pods,
            owners: HashMap::new(),
            migs: Vec::new(),
            blocked: BTreeMap::new(),
            lanes: BTreeMap::new(),
            total_stall: Picos::ZERO,
            injected_migration: 0,
            injected_meta: 0,
            backoff_base: Picos::from_ns(500),
            backoff_cap: Picos::from_us(8),
            fault_aborts: 0,
            fault_retries: 0,
            panic_at_batch: None,
            batches_run: 0,
            prune_watermark: PRUNE_WATERMARK_MIN,
            events_wanted,
            spans_enabled: spans_enabled && events_wanted,
            events: Vec::new(),
        }
    }

    fn event(&mut self, t: Picos, kind: EventKind) {
        if self.events_wanted {
            self.events.push((t.as_ps(), kind));
        }
    }

    /// Buffers a completed span, timestamped at its end. Records whose id
    /// is [`SPAN_NONE`] are unsampled markers and are dropped here — this
    /// is the shard-side emission gate the `unsampled-span` audit rule
    /// forces every tick-phase span through.
    fn push_span(&mut self, rec: SpanRecord) {
        if rec.id == SPAN_NONE || !self.spans_enabled {
            return;
        }
        self.events.push((rec.end_ps, EventKind::Span(rec)));
    }

    /// A causal-domain span record: `shard` is always 0 so the stream is
    /// identical whichever shard (or the sequential path) emits it.
    #[allow(clippy::too_many_arguments)]
    fn causal_span(
        id: u64,
        parent: u64,
        name: SpanName,
        start: Picos,
        end: Picos,
        pod: Option<u32>,
        frame: u64,
        aux: u64,
    ) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name,
            start_ps: start.as_ps(),
            end_ps: end.as_ps(),
            pod,
            frame,
            shard: 0,
            aux,
        }
    }

    /// Whether every submitted request has completed (end-of-run check).
    pub(crate) fn owners_empty(&self) -> bool {
        self.owners.is_empty()
    }

    /// Ticks this shard through a batch of the global arrival grid: for
    /// every tick, service completions up to that arrival, then apply the
    /// admission work routed here for the tick.
    ///
    /// Every shard pumps at *every* global arrival — not just the ticks it
    /// received work for — because an enqueue at an intermediate horizon
    /// changes which requests compete in a channel's later scheduling
    /// decisions. Pumping an unchanged shard to the same horizon again is
    /// a no-op (an empty drain does not advance channel state), which is
    /// what makes the shared grid safe and the result independent of the
    /// batch boundaries.
    pub(crate) fn run_ticks(&mut self, arrivals: &[Picos], work: &[(u32, WorkItem)]) {
        self.batches_run += 1;
        if let Some(b) = self.panic_at_batch {
            if self.batches_run >= b.max(1) {
                // Injected fault: deliberately crash this shard worker so
                // the barrier's containment-and-degrade path is exercised.
                // `panic_any` (not the panic macro) keeps the audit's
                // panic-free rules meaningful: this is fault-injection
                // machinery, not an error path.
                std::panic::panic_any(InjectedShardPanic);
            }
        }
        let mut next = 0usize;
        for (tick, &horizon) in arrivals.iter().enumerate() {
            self.pump(horizon);
            while let Some(&(t, item)) = work.get(next) {
                if usize_from_u32(t) != tick {
                    break;
                }
                match item {
                    WorkItem::Migrate(m, spec) => self.enqueue_migration(m, horizon, spec),
                    WorkItem::Admit { page, w } => self.admit(page, w),
                }
                next += 1;
            }
            self.maybe_prune(horizon);
        }
        debug_assert_eq!(next, work.len(), "work items beyond the arrival grid");
    }

    /// Drains up to `horizon` repeatedly until no more completions appear
    /// (completions may submit follow-up work that itself completes within
    /// the horizon).
    ///
    /// Completion-driven submissions (migration write phases, woken parked
    /// accesses) may arrive inside the already-drained slice; the channels
    /// clamp such requests to their local `now`, so re-draining to the same
    /// horizon services them without rewriting granted bus slots. The
    /// channels' indexed scheduler state built up this way is checked by
    /// `MemorySystem::audit_invariants` at sampled epoch boundaries and at
    /// end of run.
    pub(crate) fn pump(&mut self, horizon: Picos) {
        loop {
            let done = self.mem.drain_until(horizon);
            if done.is_empty() {
                break;
            }
            for c in done {
                self.handle_completion(c);
            }
        }
    }

    /// Prunes settled entries from the blocked map once it grows past the
    /// adaptive watermark. Removal is semantically neutral: a `Migrating`
    /// entry whose swap is done has already been rewritten to
    /// `BlockedUntil`, and a `BlockedUntil(t <= now)` entry no longer
    /// delays anything (future admissions issue at or after `now`), so the
    /// shard's observable behavior does not depend on when this runs.
    pub(crate) fn maybe_prune(&mut self, now: Picos) {
        if self.blocked.len() >= self.prune_watermark {
            let migs = &self.migs;
            self.blocked.retain(|_, s| match s {
                PageState::Migrating(idx) => !migs[*idx].done,
                PageState::BlockedUntil(t) => *t > now,
            });
            // Amortize: if most entries are still live, back off so the
            // prune stays O(1) amortized per request.
            self.prune_watermark = (self.blocked.len() * 2).max(PRUNE_WATERMARK_MIN);
        }
    }

    fn handle_completion(&mut self, c: Completion) {
        let owner = self
            .owners
            .remove(&c.token)
            .expect("completion for unknown token");
        match owner {
            TokenOwner::Foreground {
                arrival,
                span,
                issue,
                frame,
            } => {
                self.total_stall += c.completion.saturating_sub(arrival);
                if span != SPAN_NONE {
                    let channel = u64::from(c.channel);
                    // Root: admission to completion (`aux` = global channel).
                    self.push_span(Self::causal_span(
                        span,
                        SPAN_NONE,
                        SpanName::Request,
                        arrival,
                        c.completion,
                        None,
                        frame.0,
                        channel,
                    ));
                    // Gate child: only when admission actually delayed the
                    // request (blocking, stall, metadata fetch).
                    if issue > arrival {
                        self.push_span(Self::causal_span(
                            child_span_id(span, 0),
                            span,
                            SpanName::Gate,
                            arrival,
                            issue,
                            None,
                            frame.0,
                            channel,
                        ));
                    }
                    // Service child: channel queue + DRAM service.
                    self.push_span(Self::causal_span(
                        child_span_id(span, 1),
                        span,
                        SpanName::Service,
                        issue,
                        c.completion,
                        None,
                        frame.0,
                        channel,
                    ));
                }
            }
            TokenOwner::MigrationRead { mig } => {
                /// What a completed read phase leads to.
                enum Next {
                    Wait,
                    Writes(Picos),
                    Abort(Picos),
                }
                let next = {
                    let e = &mut self.migs[mig];
                    e.pending -= 1;
                    e.latest = e.latest.max(c.completion);
                    if e.pending > 0 {
                        Next::Wait
                    } else if e.aborts_left > 0 {
                        Next::Abort(e.latest)
                    } else {
                        e.reads_done = true;
                        Next::Writes(e.latest)
                    }
                };
                match next {
                    Next::Wait => {}
                    Next::Writes(at) => self.submit_writes(mig, at),
                    Next::Abort(at) => self.abort_attempt(mig, at),
                }
            }
            TokenOwner::MigrationWrite { mig } => {
                let finished = {
                    let e = &mut self.migs[mig];
                    e.pending -= 1;
                    e.latest = e.latest.max(c.completion);
                    e.pending == 0
                };
                if finished {
                    let finish = self.migs[mig].latest;
                    self.complete_migration(mig, finish, false);
                }
            }
            TokenOwner::MetaFetch { mut waiter } => {
                if waiter.span != SPAN_NONE {
                    // The fetch ran from the waiter's pre-completion issue
                    // time to this completion.
                    self.push_span(Self::causal_span(
                        child_span_id(waiter.span, 2),
                        waiter.span,
                        SpanName::MetaFetch,
                        waiter.issue,
                        c.completion,
                        None,
                        waiter.frame.0,
                        u64::from(c.channel),
                    ));
                }
                waiter.issue = waiter.issue.max(c.completion);
                waiter.needs_meta = false;
                self.dispatch(waiter);
            }
        }
    }

    /// Launches a migration's 2×N write-back phase at `at` (its read phase
    /// just completed cleanly).
    fn submit_writes(&mut self, mig: usize, at: Picos) {
        let m = self.migs[mig].m;
        let mut n = 0;
        for line in m.line_start..m.line_start + m.line_count {
            for frame in [m.frame_a, m.frame_b] {
                let tok = self.mem.submit_with_priority(
                    frame,
                    line,
                    AccessKind::Write,
                    at,
                    Priority::Background,
                );
                self.owners.insert(tok, TokenOwner::MigrationWrite { mig });
                n += 1;
            }
        }
        self.migs[mig].pending = n;
        self.injected_migration += u64_from_usize(n);
    }

    /// An injected fault aborts the migration's current read phase at `at`:
    /// either retry after exponential backoff (in simulated time) or, when
    /// the budget ends permanently, finish the migration as failed — its
    /// map entries were already rolled back at admission, so releasing its
    /// pages and waiters leaves the address map exactly as before.
    fn abort_attempt(&mut self, mig: usize, at: Picos) {
        let (m, attempt, conflicting, give_up, span, attempt_start) = {
            let e = &mut self.migs[mig];
            e.aborts_left -= 1;
            // Cause labelling: a parked writer means the abort races a
            // conflicting write; otherwise it is a transient datapath fault.
            let conflicting = e.waiters.iter().any(|w| w.kind == AccessKind::Write);
            (
                e.m,
                e.attempt,
                conflicting,
                e.aborts_left == 0 && e.permanent,
                e.span,
                e.attempt_start,
            )
        };
        self.fault_aborts += 1;
        if span != SPAN_NONE {
            // The aborted attempt: launch to the abort point.
            self.push_span(Self::causal_span(
                child_span_id(span, 2 * u64::from(attempt)),
                span,
                SpanName::MigrationAttempt,
                attempt_start,
                at,
                m.pod,
                m.frame_a.0,
                u64::from(attempt),
            ));
        }
        self.event(
            at,
            EventKind::MigrationAbort {
                pod: m.pod,
                frame_a: m.frame_a.0,
                frame_b: m.frame_b.0,
                attempt,
                conflicting,
            },
        );
        if give_up {
            self.event(
                at,
                EventKind::MigrationRollback {
                    pod: m.pod,
                    frame_a: m.frame_a.0,
                    frame_b: m.frame_b.0,
                    attempts: attempt,
                },
            );
            self.complete_migration(mig, at, true);
        } else {
            let backoff = backoff_after(self.backoff_base, self.backoff_cap, attempt);
            self.migs[mig].attempt = attempt + 1;
            self.migs[mig].attempt_start = at + backoff;
            self.fault_retries += 1;
            self.event(
                at,
                EventKind::MigrationRetry {
                    pod: m.pod,
                    frame_a: m.frame_a.0,
                    frame_b: m.frame_b.0,
                    attempt: attempt + 1,
                    backoff_ps: backoff.as_ps(),
                },
            );
            if span != SPAN_NONE {
                // The simulated-time backoff window before the retry.
                self.push_span(Self::causal_span(
                    child_span_id(span, 2 * u64::from(attempt) + 1),
                    span,
                    SpanName::MigrationBackoff,
                    at,
                    at + backoff,
                    m.pod,
                    m.frame_a.0,
                    u64::from(attempt + 1),
                ));
            }
            self.submit_reads(mig, at + backoff);
        }
    }

    /// Finishes a migration at `finish` — successfully (`failed == false`,
    /// after its last write-back) or as a rolled-back permanent abort — and
    /// runs the shared release path: rewrite its pages' blocking state,
    /// dispatch parked waiters, and chain the lane's next migration.
    fn complete_migration(&mut self, mig: usize, finish: Picos, failed: bool) {
        {
            let e = &mut self.migs[mig];
            e.done = true;
            e.finish = finish;
        }
        let m = self.migs[mig].m;
        if !failed && self.events_wanted {
            let latency = finish.saturating_sub(self.migs[mig].t_start);
            self.event(
                finish,
                EventKind::MigrationComplete {
                    pod: m.pod,
                    frame_a: m.frame_a.0,
                    frame_b: m.frame_b.0,
                    latency_ps: latency.as_ps(),
                },
            );
        }
        let (span, decided, attempt, attempt_start) = {
            let e = &self.migs[mig];
            (e.span, e.decided, e.attempt, e.attempt_start)
        };
        if span != SPAN_NONE {
            if !failed {
                // The successful final attempt (aborted lifecycles already
                // closed their last attempt span at the abort point).
                self.push_span(Self::causal_span(
                    child_span_id(span, 2 * u64::from(attempt)),
                    span,
                    SpanName::MigrationAttempt,
                    attempt_start,
                    finish,
                    m.pod,
                    m.frame_a.0,
                    u64::from(attempt),
                ));
            }
            // Lifecycle root: decision to commit (or rollback).
            let name = if failed {
                SpanName::MigrationAborted
            } else {
                SpanName::Migration
            };
            self.push_span(Self::causal_span(
                span,
                SPAN_NONE,
                name,
                decided,
                finish,
                m.pod,
                m.frame_a.0,
                u64::from(attempt),
            ));
        }
        for page in [m.page_a, m.page_b] {
            if let Some(PageState::Migrating(idx)) = self.blocked.get(&page) {
                if *idx == mig {
                    self.blocked.insert(page, PageState::BlockedUntil(finish));
                }
            }
        }
        let waiters = std::mem::take(&mut self.migs[mig].waiters);
        for mut w in waiters {
            w.issue = w.issue.max(finish);
            self.dispatch(w);
        }
        // Chain: launch the lane's next queued migration.
        if let Some(lane) = lane_of(&m) {
            let next = {
                let q = self.lanes.get_mut(&lane).expect("lane exists");
                debug_assert_eq!(q.front(), Some(&mig));
                q.pop_front();
                q.front().copied()
            };
            if let Some(next) = next {
                self.start_migration(next, finish);
            }
        }
    }

    /// Issues a waiter: via a metadata fetch if one is still needed,
    /// otherwise as the foreground access itself.
    fn dispatch(&mut self, w: Waiter) {
        if w.needs_meta {
            let meta_frame = meta_backing_frame(w.page, self.mem.layout().fast_frames, self.pods);
            let tok = self.mem.submit(meta_frame, 0, AccessKind::Read, w.issue);
            self.owners.insert(tok, TokenOwner::MetaFetch { waiter: w });
            self.injected_meta += 1;
        } else {
            let tok = self.mem.submit(w.frame, w.line, w.kind, w.issue);
            self.owners.insert(
                tok,
                TokenOwner::Foreground {
                    arrival: w.arrival,
                    span: w.span,
                    issue: w.issue,
                    frame: w.frame,
                },
            );
        }
    }

    /// Registers a migration: its pages block immediately (the remap is
    /// already live, so their data is logically in transit), but the data
    /// movement itself queues behind its lane — a pod migrates one page at
    /// a time.
    pub(crate) fn enqueue_migration(
        &mut self,
        m: Migration,
        at: Picos,
        spec: Option<MigrationFaultSpec>,
    ) {
        let mig = self.migs.len();
        self.event(
            at,
            EventKind::RemapSwap {
                page_a: m.page_a.0,
                page_b: m.page_b.0,
                pod: m.pod,
                frame_a: m.frame_a.0,
                frame_b: m.frame_b.0,
                hotness: m.hotness,
            },
        );
        let (aborts_left, permanent) =
            spec.map_or((0, false), |s| (s.failed_attempts, s.permanent));
        // Lifecycle span identity: pure function of the swap's coordinates
        // and decision time, so every shard count derives the same id.
        // Migrations are always traced when spans are on (no sampling).
        let span = if self.spans_enabled {
            migration_span_id(m.frame_a.0, m.frame_b.0, at.as_ps())
        } else {
            SPAN_NONE
        };
        self.migs.push(MigExec {
            m,
            pending: 0,
            latest: at,
            started: false,
            reads_done: false,
            done: false,
            finish: Picos::MAX,
            t_start: at,
            span,
            decided: at,
            attempt_start: at,
            aborts_left,
            permanent,
            attempt: 1,
            waiters: Vec::new(),
        });
        self.blocked.insert(m.page_a, PageState::Migrating(mig));
        self.blocked.insert(m.page_b, PageState::Migrating(mig));
        match lane_of(&m) {
            None => self.start_migration(mig, at),
            Some(lane) => {
                let q = self.lanes.entry(lane).or_default();
                q.push_back(mig);
                if q.len() == 1 {
                    self.start_migration(mig, at);
                }
            }
        }
    }

    /// Launches a migration's first read phase (emits `MigrationStart`
    /// exactly once; injected retries re-enter via
    /// [`submit_reads`](Shard::submit_reads) alone).
    fn start_migration(&mut self, mig: usize, at: Picos) {
        let m = self.migs[mig].m;
        self.event(
            at,
            EventKind::MigrationStart {
                pod: m.pod,
                frame_a: m.frame_a.0,
                frame_b: m.frame_b.0,
                lines: m.line_count,
            },
        );
        {
            let e = &mut self.migs[mig];
            e.started = true;
            e.t_start = at;
            e.attempt_start = at;
        }
        self.submit_reads(mig, at);
    }

    /// Launches (or, after an injected abort, re-launches) a migration's
    /// 2×N read phase at `at`.
    fn submit_reads(&mut self, mig: usize, at: Picos) {
        let m = self.migs[mig].m;
        let mut pending = 0;
        for line in m.line_start..m.line_start + m.line_count {
            for frame in [m.frame_a, m.frame_b] {
                let tok = self.mem.submit_with_priority(
                    frame,
                    line,
                    AccessKind::Read,
                    at,
                    Priority::Background,
                );
                self.owners.insert(tok, TokenOwner::MigrationRead { mig });
                pending += 1;
            }
        }
        let e = &mut self.migs[mig];
        e.pending = pending;
        e.latest = at;
        self.injected_migration += u64_from_usize(pending);
    }

    /// Routes a foreground access according to its page's blocking state.
    ///
    /// Three regimes per the pod's sequential migration driver:
    /// * swap not yet started (lane-queued): the data still sits at its old
    ///   frame — service from there immediately, no delay;
    /// * swap in flight: delay until it completes (paper §4.3: "requests
    ///   that arrive while migrations are being performed have to be
    ///   delayed to ensure functionally correct memory behavior");
    /// * swap finished: accesses ordered before the finish wait for it.
    pub(crate) fn admit(&mut self, page: PageId, w: Waiter) {
        match self.blocked.get(&page) {
            Some(PageState::Migrating(idx)) if !self.migs[*idx].started => {
                let m = &self.migs[*idx].m;
                let mut w = w;
                w.frame = if page == m.page_a {
                    m.frame_a
                } else {
                    m.frame_b
                };
                self.dispatch(w);
            }
            Some(PageState::Migrating(idx)) if !self.migs[*idx].done => {
                self.migs[*idx].waiters.push(w);
            }
            Some(PageState::Migrating(idx)) => {
                let finish = self.migs[*idx].finish;
                let mut w = w;
                w.issue = w.issue.max(finish);
                self.dispatch(w);
            }
            Some(PageState::BlockedUntil(t)) => {
                let mut w = w;
                w.issue = w.issue.max(*t);
                self.dispatch(w);
            }
            None => self.dispatch(w),
        }
    }

    /// Drains buffered events into `tel` in emission order (the sequential
    /// path's flush; the sharded path uses `Telemetry::emit_merged`).
    pub(crate) fn flush_events_into(&mut self, tel: &mut mempod_telemetry::Telemetry) {
        for (t, kind) in self.events.drain(..) {
            tel.event(t, kind);
        }
    }
}

/// The backing-store frame holding a page's metadata entry: a slice of
/// fast memory, spread by a multiplicative hash (the paper partitions part
/// of stacked memory as each mechanism's backing store).
///
/// The hash is *pod-local*: a page's entry lives in a fast frame of the
/// page's own pod (`frame % pods == page % pods`), matching the paper's
/// per-pod metadata organization (§6.3.3) — and, structurally, keeping the
/// metadata fetch on the same shard as the access that triggered it. The
/// old global hash was exactly the cross-shard hazard the shard-safety
/// report flagged: a pod-0 access could inject a read into pod-3's
/// channels. Layouts with fewer fast frames than pods (no room for a
/// per-pod slice) keep the global hash; such systems never shard.
fn meta_backing_frame(page: PageId, fast_frames: u64, pods: u32) -> FrameId {
    let fast = fast_frames.max(1);
    let pods = u64::from(pods.max(1));
    let hash = page.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let per_pod = fast / pods;
    if per_pod == 0 {
        return FrameId(hash % fast);
    }
    // Fast frames of pod p are exactly {p, p + pods, p + 2*pods, ...}
    // (Geometry::fast_frame_of_pod), so this stays in range and in-pod.
    FrameId(page.0 % pods + pods * (hash % per_pod))
}

/// Greatest common divisor (for the shard-count feasibility computation).
pub(crate) fn gcd(a: u64, b: u64) -> u64 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(8, 4), 4);
        assert_eq!(gcd(4, 8), 4);
        assert_eq!(gcd(7, 3), 1);
        assert_eq!(gcd(12, 0), 12);
        assert_eq!(gcd(0, 5), 5);
    }

    #[test]
    fn meta_backing_frame_is_pod_local_and_in_range() {
        let fast = 2048u64;
        let pods = 4u32;
        for p in 0..10_000u64 {
            let f = meta_backing_frame(PageId(p), fast, pods);
            assert!(f.0 < fast);
            assert_eq!(f.0 % u64::from(pods), p % u64::from(pods), "page {p}");
        }
    }

    #[test]
    fn meta_backing_frame_degenerate_layouts_fall_back() {
        // Fewer fast frames than pods: global hash, still in range.
        for p in 0..100u64 {
            assert!(meta_backing_frame(PageId(p), 3, 4).0 < 3);
            // No fast tier at all: frame 0 (the old behavior).
            assert_eq!(meta_backing_frame(PageId(p), 0, 4).0, 0);
        }
    }

    #[test]
    fn lane_routing_follows_granularity() {
        let page = Migration::page_swap(FrameId(0), FrameId(4), PageId(0), PageId(4), Some(2));
        assert_eq!(lane_of(&page), Some(2));
        let unpodded = Migration::page_swap(FrameId(0), FrameId(4), PageId(0), PageId(4), None);
        assert_eq!(lane_of(&unpodded), Some(-1));
        let line = Migration::line_swap(FrameId(0), FrameId(4), 3, PageId(0), PageId(4));
        assert_eq!(lane_of(&line), None);
    }
}
