//! Simulation reports and aggregation helpers.

use mempod_core::{ManagerKind, MetaCacheStats, MigrationStats};
use mempod_dram::SystemStats;
use mempod_telemetry::EpochSnapshot;
use mempod_types::Picos;
use serde::{Deserialize, Serialize};

use crate::provenance::ProvenanceSummary;

/// Fault-injection and recovery accounting for one run.
///
/// All zeros / false for a run without an active fault plan, so the
/// summary is free to carry unconditionally on every report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSummary {
    /// Migrations the fault plan selected for at least one mid-swap abort.
    pub migration_faults: u64,
    /// Retry attempts launched after an abort (backoff in simulated time).
    pub migration_retries: u64,
    /// Individual abort events (one per failed attempt).
    pub migration_aborts: u64,
    /// Channel-level timing faults injected (latency spikes, stuck banks,
    /// refresh storms).
    pub channel_faults: u64,
    /// Shard worker panics caught at the epoch barrier.
    pub shard_panics: u64,
    /// Whether the sharded engine abandoned its state and restarted on the
    /// sequential reference path.
    pub degraded_to_sequential: bool,
    /// Whether the run was cancelled early (watchdog or external token);
    /// a cancelled report covers only the requests admitted before the
    /// cancellation was observed.
    pub cancelled: bool,
}

/// Everything one simulation run measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Workload name.
    pub workload: String,
    /// Manager simulated.
    pub manager: ManagerKind,
    /// Original trace requests (the fixed AMMAT denominator).
    pub requests: u64,
    /// Total memory stall time across foreground and injected requests.
    pub total_stall: Picos,
    /// Trace duration (last arrival).
    pub duration: Picos,
    /// Migration accounting from the manager.
    pub migration: MigrationStats,
    /// Metadata-cache statistics, if a cache was configured.
    pub meta_cache: Option<MetaCacheStats>,
    /// Migration read/write requests injected into the memory system.
    pub injected_migration_requests: u64,
    /// Metadata-fetch reads injected.
    pub injected_meta_requests: u64,
    /// DRAM-level statistics (row hits, tier service split, ...).
    pub mem_stats: SystemStats,
    /// Fault-injection and recovery accounting (all zeros when no fault
    /// plan was active; `default` keeps pre-fault reports deserializable).
    #[serde(default)]
    pub faults: FaultSummary,
    /// Page provenance totals and hottest-page histories (`None` unless
    /// the run had telemetry attached; `default` keeps pre-provenance
    /// reports deserializable).
    #[serde(default)]
    pub provenance: Option<ProvenanceSummary>,
    /// Per-epoch snapshots retained by the telemetry ring (empty unless the
    /// run had telemetry attached; the full series streams to the JSONL
    /// sink). Skipped in serialized reports — the timeline's serialized
    /// form *is* the JSONL stream.
    #[serde(skip)]
    pub timeline: Vec<EpochSnapshot>,
}

impl SimReport {
    /// An empty report for `workload` under `manager`.
    pub fn new(workload: &str, manager: ManagerKind) -> Self {
        SimReport {
            workload: workload.to_string(),
            manager,
            requests: 0,
            total_stall: Picos::ZERO,
            duration: Picos::ZERO,
            migration: MigrationStats::default(),
            meta_cache: None,
            injected_migration_requests: 0,
            injected_meta_requests: 0,
            mem_stats: SystemStats::default(),
            faults: FaultSummary::default(),
            provenance: None,
            timeline: Vec::new(),
        }
    }

    /// Average Main Memory Access Time in picoseconds: total stall divided
    /// by the number of *original* requests (paper §6.2).
    ///
    /// Returns `None` for a report with zero requests — an empty or broken
    /// run has no access time, and a silent `0.0` used to flow into
    /// normalization baselines and geomeans where it *inflated* summaries
    /// instead of failing (same failure mode as the [`normalize_to`] fix).
    pub fn ammat_ps(&self) -> Option<f64> {
        (self.requests > 0).then(|| self.total_stall.as_ps() as f64 / self.requests as f64)
    }

    /// AMMAT in nanoseconds (for human-readable tables); `None` for a
    /// zero-request report like [`ammat_ps`](SimReport::ammat_ps).
    pub fn ammat_ns(&self) -> Option<f64> {
        self.ammat_ps().map(|ps| ps / 1000.0)
    }

    /// Row-buffer hit rate across all channels.
    pub fn row_hit_rate(&self) -> f64 {
        self.mem_stats.total().row_hit_rate()
    }

    /// Data moved by migrations, in megabytes.
    pub fn migrated_mb(&self) -> f64 {
        self.migration.bytes_moved as f64 / (1 << 20) as f64
    }
}

/// `a / b` AMMAT ratio: `normalize_to(&report, &baseline)` below 1.0 means
/// the report beats the baseline.
///
/// Returns `None` when either AMMAT is undefined (zero requests) or the
/// baseline AMMAT is zero (an empty or broken baseline run). Callers must
/// surface that case loudly — a silent `0.0` here used to flow into
/// [`geometric_mean`], which skips non-positive values, so a broken
/// baseline *inflated* summary geomeans instead of failing.
pub fn normalize_to(report: &SimReport, baseline: &SimReport) -> Option<f64> {
    let a = report.ammat_ps()?;
    let b = baseline.ammat_ps()?;
    (b > 0.0).then(|| a / b)
}

/// Geometric mean of a ratio series (the conventional way to average
/// normalized AMMAT across workloads).
pub fn geometric_mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0u32;
    for v in values {
        if v > 0.0 {
            log_sum += v.ln();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ammat_divides_by_original_requests() {
        let mut r = SimReport::new("w", ManagerKind::MemPod);
        r.requests = 100;
        r.total_stall = Picos(50_000);
        assert!((r.ammat_ps().expect("has requests") - 500.0).abs() < 1e-9);
        assert!((r.ammat_ns().expect("has requests") - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_report_has_no_ammat() {
        let r = SimReport::new("w", ManagerKind::Hma);
        assert_eq!(r.ammat_ps(), None);
        assert_eq!(r.ammat_ns(), None);
    }

    #[test]
    fn normalization() {
        let mut a = SimReport::new("w", ManagerKind::MemPod);
        a.requests = 10;
        a.total_stall = Picos(1000);
        let mut b = SimReport::new("w", ManagerKind::NoMigration);
        b.requests = 10;
        b.total_stall = Picos(2000);
        let ratio = normalize_to(&a, &b).expect("non-zero baseline");
        assert!((ratio - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_baseline_is_surfaced_not_averaged_away() {
        let mut a = SimReport::new("w", ManagerKind::MemPod);
        a.requests = 10;
        a.total_stall = Picos(1000);
        // A broken (empty) baseline must yield None, not a quiet 0.0 that
        // geometric_mean would skip.
        let broken = SimReport::new("w", ManagerKind::Hma);
        assert_eq!(normalize_to(&a, &broken), None);
        assert_eq!(normalize_to(&broken, &broken), None);
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean([1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean([2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geometric_mean(std::iter::empty()), 0.0);
        // Non-positive values are skipped, not propagated as NaN.
        assert!((geometric_mean([0.0, 3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn migrated_mb_converts() {
        let mut r = SimReport::new("w", ManagerKind::Cameo);
        r.migration.bytes_moved = 3 << 20;
        assert!((r.migrated_mb() - 3.0).abs() < 1e-12);
    }
}
