//! Simulation configuration: manager choice, manager parameters, memory
//! timings, and the derived memory layout.

use mempod_core::{ManagerConfig, ManagerKind};
use mempod_dram::{DramTiming, MemLayout};
use mempod_types::{FaultConfig, Picos, SystemConfig, TrackerKind};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Errors from building a [`Simulator`](crate::Simulator).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Segmented managers need the slow tier to tile the fast tier exactly.
    RatioNotIntegral {
        /// Fast pages.
        fast: u64,
        /// Slow pages.
        slow: u64,
    },
    /// A parallel-runner worker disappeared without reporting a result.
    /// Only reachable if a worker thread dies without panicking, which the
    /// runner cannot distinguish from a harness bug — surfaced as an error
    /// so the hot path never panics.
    WorkerLost {
        /// Index of the job whose result never arrived.
        job: usize,
    },
    /// The runner watchdog cancelled a job that exceeded its hard per-job
    /// timeout; completed jobs in the same batch keep their reports.
    JobTimedOut {
        /// Index of the cancelled job.
        job: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::RatioNotIntegral { fast, slow } => write!(
                f,
                "segmented managers need slow pages ({slow}) to be an integer multiple of fast pages ({fast})"
            ),
            SimError::WorkerLost { job } => {
                write!(f, "parallel runner lost the result of job {job}")
            }
            SimError::JobTimedOut { job } => {
                write!(f, "watchdog cancelled job {job} after its hard timeout")
            }
        }
    }
}

impl Error for SimError {}

/// Complete configuration of one simulation run.
///
/// # Examples
///
/// ```
/// use mempod_sim::SimConfig;
/// use mempod_core::ManagerKind;
/// use mempod_types::SystemConfig;
///
/// let cfg = SimConfig::new(SystemConfig::tiny(), ManagerKind::Hma);
/// // HMA's 100 ms interval is auto-scaled to the 36 MB test geometry.
/// assert!(cfg.mgr.hma_interval < mempod_types::Picos::from_ms(100));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Which migration mechanism to simulate.
    pub manager: ManagerKind,
    /// Manager parameters (geometry lives here).
    pub mgr: ManagerConfig,
    /// Fast-tier DRAM timing.
    pub fast_timing: DramTiming,
    /// Slow-tier DRAM timing.
    pub slow_timing: DramTiming,
    /// Deterministic fault-injection plan seed and rates (`None`, the
    /// default, runs fault-free; `default` keeps pre-fault configs
    /// deserializable).
    #[serde(default)]
    pub faults: Option<FaultConfig>,
}

impl SimConfig {
    /// Builds a config from a [`SystemConfig`], with Table 2 timings and
    /// HMA/THM parameters scaled to the geometry.
    ///
    /// Software-cost parameters that the paper expresses in wall-clock terms
    /// (HMA's 100 ms interval and 7 ms sort) scale linearly with memory
    /// capacity so that scaled-down geometries see the same *relative*
    /// adaptivity gap (see `EXPERIMENTS.md`).
    pub fn new(system: SystemConfig, manager: ManagerKind) -> Self {
        let paper_bytes = 9u64 << 30;
        let scale = (paper_bytes / system.geometry.total_bytes().max(1)).max(1);
        let mgr = ManagerConfig {
            geometry: system.geometry,
            epoch: system.epoch,
            mea_entries: system.mea_entries,
            mea_counter_bits: system.mea_counter_bits,
            hma_interval: Picos::from_ms(100) / scale,
            hma_sort_penalty: Picos::from_ms(7) / scale,
            hma_hot_threshold: 64,
            hma_max_migrations: 8192,
            thm_threshold: 64,
            meta_cache_bytes: system.metadata_cache_bytes,
            cameo_llp: false,
            thm_layout: mempod_core::SegmentLayout::Strided,
            mempod_tracker: TrackerKind::Mea,
        };
        SimConfig {
            manager,
            mgr,
            fast_timing: DramTiming::hbm(),
            slow_timing: DramTiming::ddr4_1600(),
            faults: None,
        }
    }

    /// Attaches a fault-injection plan to the run. Fault decisions are a
    /// pure function of the plan's seed and each event's identity, so a
    /// faulted run stays bit-identical across shard counts and replays.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Switches to the Fig. 10 future system: 4 GHz HBM + DDR4-2400, with
    /// HMA's sort penalty reduced 40 % as the paper does.
    pub fn into_future_system(mut self) -> Self {
        self.fast_timing = DramTiming::hbm_4ghz();
        self.slow_timing = DramTiming::ddr4_2400();
        self.mgr.hma_sort_penalty = self.mgr.hma_sort_penalty * 6 / 10;
        self
    }

    /// The memory layout this configuration implies: hybrid for managed
    /// kinds, single-tier for the HBM-only / DDR-only baselines.
    pub fn layout(&self) -> MemLayout {
        let geo = &self.mgr.geometry;
        match self.manager {
            ManagerKind::HbmOnly => MemLayout::hbm_only(geo.total_pages(), self.fast_timing),
            ManagerKind::DdrOnly => MemLayout::ddr_only(geo.total_pages(), self.slow_timing),
            _ => MemLayout {
                fast_frames: geo.fast_pages(),
                slow_frames: geo.slow_pages(),
                fast_channels: 8,
                slow_channels: 4,
                fast_timing: self.fast_timing,
                slow_timing: self.slow_timing,
                ctrl_latency: Picos::from_ns(10),
                interleave: mempod_dram::Interleave::PageFrame,
            },
        }
    }

    /// Validates manager-specific requirements.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RatioNotIntegral`] for THM/CAMEO on a geometry
    /// whose slow tier is not an integer multiple of the fast tier.
    pub fn validate(&self) -> Result<(), SimError> {
        if matches!(self.manager, ManagerKind::Thm | ManagerKind::Cameo) {
            let geo = &self.mgr.geometry;
            if geo.fast_pages() * geo.slow_to_fast_ratio() != geo.slow_pages() {
                return Err(SimError::RatioNotIntegral {
                    fast: geo.fast_pages(),
                    slow: geo.slow_pages(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempod_types::Geometry;

    #[test]
    fn hma_parameters_scale_with_geometry() {
        let full = SimConfig::new(SystemConfig::paper_default(), ManagerKind::Hma);
        assert_eq!(full.mgr.hma_interval, Picos::from_ms(100));
        assert_eq!(full.mgr.hma_sort_penalty, Picos::from_ms(7));

        let tiny = SimConfig::new(SystemConfig::tiny(), ManagerKind::Hma);
        // 9 GB / 36 MB = 256.
        assert_eq!(tiny.mgr.hma_interval, Picos::from_ms(100) / 256);
        assert_eq!(tiny.mgr.hma_sort_penalty, Picos::from_ms(7) / 256);
    }

    #[test]
    fn layouts_follow_manager_kind() {
        let sys = SystemConfig::tiny();
        let hybrid = SimConfig::new(sys.clone(), ManagerKind::MemPod).layout();
        assert_eq!(hybrid.fast_frames, sys.geometry.fast_pages());
        assert_eq!(hybrid.slow_frames, sys.geometry.slow_pages());

        let hbm = SimConfig::new(sys.clone(), ManagerKind::HbmOnly).layout();
        assert_eq!(hbm.fast_frames, sys.geometry.total_pages());
        assert_eq!(hbm.slow_frames, 0);

        let ddr = SimConfig::new(sys, ManagerKind::DdrOnly).layout();
        assert_eq!(ddr.fast_frames, 0);
        assert_eq!(ddr.slow_frames, 4_718_592 / 256);
    }

    #[test]
    fn future_system_swaps_timings_and_discounts_hma() {
        let cfg =
            SimConfig::new(SystemConfig::paper_default(), ManagerKind::Hma).into_future_system();
        assert_eq!(cfg.fast_timing, DramTiming::hbm_4ghz());
        assert_eq!(cfg.slow_timing, DramTiming::ddr4_2400());
        assert_eq!(cfg.mgr.hma_sort_penalty, Picos::from_ms(7) * 6 / 10);
    }

    #[test]
    fn validate_catches_bad_ratio_for_segmented_managers() {
        let mut sys = SystemConfig::tiny();
        // 4 MB fast + 12 MB slow: ratio 3, integral -> fine. Use a
        // non-integral one: 4 MB fast + 10 MB slow.
        sys.geometry = Geometry::new(4 << 20, 10 << 20, 4).unwrap();
        let thm = SimConfig::new(sys.clone(), ManagerKind::Thm);
        assert!(matches!(
            thm.validate(),
            Err(SimError::RatioNotIntegral { .. })
        ));
        let pod = SimConfig::new(sys, ManagerKind::MemPod);
        assert!(pod.validate().is_ok());
    }

    #[test]
    fn error_display_is_useful() {
        let e = SimError::RatioNotIntegral { fast: 10, slow: 25 };
        assert!(e.to_string().contains("25"));
        assert!(e.to_string().contains("10"));
    }
}
