//! Full-system two-level-memory simulator.
//!
//! This crate ties the suite together: it drives a [`Trace`] through a
//! migration [`MemoryManager`] and the cycle-level [`MemorySystem`],
//! accounting the paper's headline metric — **AMMAT** (Average Main Memory
//! Access Time): total memory stall time divided by the number of *original*
//! trace requests. Migration traffic, metadata-cache-miss fetches, HMA's
//! sort freeze, and blocking of in-flight-migration pages all inflate the
//! numerator, never the denominator (paper §6.2).
//!
//! * [`config`] — [`SimConfig`]: manager choice + manager/timing parameters.
//! * [`simulator`] — the event loop (translate → inject → drain → account).
//! * [`metrics`] — [`SimReport`] and cross-run aggregation helpers.
//! * [`provenance`] — per-page migration histories and ping-pong detection.
//! * [`runner`] — a scoped-thread parallel runner for experiment matrices.
//!
//! [`Trace`]: mempod_trace::Trace
//! [`MemoryManager`]: mempod_core::MemoryManager
//! [`MemorySystem`]: mempod_dram::MemorySystem
//!
//! # Examples
//!
//! ```
//! use mempod_sim::{SimConfig, Simulator};
//! use mempod_core::ManagerKind;
//! use mempod_trace::{TraceGenerator, WorkloadSpec};
//! use mempod_types::SystemConfig;
//!
//! let system = SystemConfig::tiny();
//! let trace = TraceGenerator::new(WorkloadSpec::hotcold_demo(), 42)
//!     .take_requests(5_000, &system.geometry);
//! let cfg = SimConfig::new(system, ManagerKind::MemPod);
//! let report = Simulator::new(cfg).expect("valid config").run(&trace);
//! assert!(report.ammat_ps().expect("non-empty trace") > 0.0);
//! assert_eq!(report.requests, 5_000);
//! ```

pub mod config;
pub mod metrics;
pub mod provenance;
pub mod runner;
mod shard;
pub mod simulator;

pub use config::{SimConfig, SimError};
pub use metrics::{geometric_mean, normalize_to, FaultSummary, SimReport};
pub use provenance::{PageMove, PageProvenance, ProvenanceLedger, ProvenanceSummary};
pub use runner::{
    try_run_jobs, try_run_jobs_with_progress, try_run_jobs_with_watchdog, Job, JobProgress,
    JobState, RunProgress, WatchdogConfig,
};
pub use simulator::Simulator;

/// Runs all jobs on `threads` workers, returning reports in job order.
///
/// Convenience wrapper over [`try_run_jobs`] for the experiment harness,
/// where an invalid entry in a programmatically built matrix is a bug worth
/// failing loudly on. The runner module itself is panic-free (it is on the
/// audited hot path); the panic lives here at the crate surface.
///
/// # Panics
///
/// Panics if any job's configuration is invalid ([`Simulator::new`] fails).
pub fn run_jobs(jobs: Vec<Job>, threads: usize) -> Vec<SimReport> {
    match try_run_jobs(jobs, threads) {
        Ok(reports) => reports,
        Err(e) => panic!("experiment matrix contains an invalid configuration: {e}"),
    }
}
