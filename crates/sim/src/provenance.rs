//! Page provenance ledger: bounded per-page migration histories.
//!
//! The tracing layer answers "what happened to this page?" — which tier
//! moves it made, what the tracker's hotness count was when each swap was
//! decided, and whether any of them were rolled back by an injected fault.
//! The ledger records every migration the manager commits, *on the main
//! thread at decision time*, so its contents (and the ping-pong events it
//! emits) are bit-identical across shard counts by construction: both the
//! sequential and sharded paths feed it the same commit-ordered stream.
//!
//! Ping-pong detection is the load-bearing query (paper §3: a page that
//! bounces between tiers pays two full swaps for one epoch of locality).
//! A *trip* is a pair of consecutive moves of the same page in opposite
//! tier directions within the configured window (4× the epoch length —
//! one epoch to get promoted, one to cool off, with slack); each trip
//! emits an [`EventKind::PagePingPong`] event and counts toward the page's
//! history.
//!
//! Memory is bounded on both axes: at most [`MAX_TRACKED_PAGES`] pages are
//! tracked (later pages are counted in `skipped_pages`, never silently
//! dropped) and each page keeps its last [`HISTORY_PER_PAGE`] moves.

use std::collections::BTreeMap;

use mempod_core::Migration;
use mempod_types::convert::u64_from_usize;
use mempod_types::Picos;
use serde::{Deserialize, Serialize};

/// Moves retained per page (older moves fall off the front).
pub const HISTORY_PER_PAGE: usize = 8;
/// Pages tracked before the ledger stops admitting new ones.
pub const MAX_TRACKED_PAGES: usize = 1 << 20;
/// Pages reported in [`ProvenanceSummary::hottest`].
pub const HOTTEST_PAGES: usize = 8;
/// Ping-pong window as a multiple of the epoch length.
const PING_PONG_EPOCHS: u64 = 4;

/// Why a page moved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MoveCause {
    /// The tracker selected the page for promotion to the fast tier.
    Promotion,
    /// The page was the resident victim displaced by a promotion.
    Displaced,
    /// A CAMEO-style single-line swap touched the page.
    LineSwap,
}

/// One recorded tier move of a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageMove {
    /// Simulated time the manager committed the swap.
    pub t_ps: u64,
    /// Frame the page's data left.
    pub from_frame: u64,
    /// Frame the page's data moved to.
    pub to_frame: u64,
    /// Whether the destination frame is in the fast tier.
    pub to_fast: bool,
    /// Tracker hotness (MEA count) of the *promoted* page at decision
    /// time; the displaced victim carries the same value (it is the count
    /// that evicted it).
    pub hotness: u64,
    /// Why the page moved.
    pub cause: MoveCause,
    /// Whether an injected fault permanently rolled the swap back (the
    /// move never took effect; it still cost the doomed attempts' time).
    pub rolled_back: bool,
}

/// One tracked page's bounded history.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
struct PageHistory {
    /// Last [`HISTORY_PER_PAGE`] moves, oldest first.
    moves: Vec<PageMove>,
    /// All moves ever recorded (not bounded by the ring).
    total_moves: u64,
    /// Ping-pong trips detected (direction reversals within the window).
    trips: u32,
}

/// A ping-pong detection, returned to the caller for event emission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PingPong {
    /// The bouncing page.
    pub page: u64,
    /// Time between the two opposing moves.
    pub round_trip_ps: u64,
    /// This page's cumulative trip count (1-based).
    pub trips: u32,
}

/// One page's provenance in the end-of-run summary.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageProvenance {
    /// Page id.
    pub page: u64,
    /// Total moves recorded for the page.
    pub moves: u64,
    /// Ping-pong trips detected for the page.
    pub trips: u32,
    /// The retained tail of the page's history, oldest first.
    pub history: Vec<PageMove>,
}

/// End-of-run provenance totals carried on `SimReport`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ProvenanceSummary {
    /// Distinct pages with at least one recorded move.
    pub tracked_pages: u64,
    /// Total page moves recorded (both sides of every swap).
    pub total_moves: u64,
    /// Total ping-pong trips across all pages.
    pub ping_pong_trips: u64,
    /// Moves not tracked because [`MAX_TRACKED_PAGES`] was reached.
    pub skipped_moves: u64,
    /// The most-moved pages (ties broken by page id), with their retained
    /// histories.
    pub hottest: Vec<PageProvenance>,
}

/// The ledger itself. Build one per run ([`ProvenanceLedger::new`]), feed
/// it every committed migration in commit order ([`record`]), and take the
/// summary at the end ([`summary`]).
///
/// [`record`]: ProvenanceLedger::record
/// [`summary`]: ProvenanceLedger::summary
#[derive(Debug)]
pub struct ProvenanceLedger {
    /// Frames below this index are fast-tier (page-frame interleaved
    /// layouts place the fast tier first in the global frame space).
    fast_frames: u64,
    /// Ping-pong window; `0` disables trip detection (no epoch configured).
    window_ps: u64,
    /// Keyed by page id; a `BTreeMap` so iteration (the summary ranking)
    /// is deterministic without relying on the sort to mask map order.
    pages: BTreeMap<u64, PageHistory>,
    skipped_moves: u64,
    ping_pong_trips: u64,
}

impl ProvenanceLedger {
    /// A ledger for a layout whose fast tier spans frames
    /// `[0, fast_frames)`, with the ping-pong window derived from `epoch`.
    pub fn new(fast_frames: u64, epoch: Picos) -> Self {
        ProvenanceLedger {
            fast_frames,
            window_ps: epoch.as_ps().saturating_mul(PING_PONG_EPOCHS),
            pages: BTreeMap::new(),
            skipped_moves: 0,
            ping_pong_trips: 0,
        }
    }

    /// Records both sides of one committed migration and reports any
    /// ping-pong trips it completed (at most one per side).
    ///
    /// `rolled_back` marks swaps whose fault verdict was permanent — the
    /// manager's map was already restored, so the move is recorded as
    /// history that never took effect.
    pub fn record(&mut self, m: &Migration, at: Picos, rolled_back: bool) -> Vec<PingPong> {
        let (cause_a, cause_b) = if m.is_page_swap() {
            // `page_a` is the promoted page moving into the resident
            // victim's frame; `page_b` is the victim displaced out.
            (MoveCause::Promotion, MoveCause::Displaced)
        } else {
            (MoveCause::LineSwap, MoveCause::LineSwap)
        };
        let mut pongs = Vec::new();
        for (page, to_frame, cause) in [
            (m.page_a.0, m.frame_b.0, cause_a),
            (m.page_b.0, m.frame_a.0, cause_b),
        ] {
            let from_frame = if to_frame == m.frame_a.0 {
                m.frame_b.0
            } else {
                m.frame_a.0
            };
            let mv = PageMove {
                t_ps: at.as_ps(),
                from_frame,
                to_frame,
                to_fast: to_frame < self.fast_frames,
                hotness: m.hotness,
                cause,
                rolled_back,
            };
            if let Some(pong) = self.push(page, mv) {
                pongs.push(pong);
            }
        }
        pongs
    }

    /// Appends one move to a page's ring, detecting a direction reversal.
    fn push(&mut self, page: u64, mv: PageMove) -> Option<PingPong> {
        if !self.pages.contains_key(&page) && self.pages.len() >= MAX_TRACKED_PAGES {
            self.skipped_moves += 1;
            return None;
        }
        let hist = self.pages.entry(page).or_default();
        let pong = match hist.moves.last() {
            Some(prev)
                if prev.to_fast != mv.to_fast
                    && !mv.rolled_back
                    && !prev.rolled_back
                    && self.window_ps > 0
                    && mv.t_ps.saturating_sub(prev.t_ps) <= self.window_ps =>
            {
                hist.trips += 1;
                self.ping_pong_trips += 1;
                Some(PingPong {
                    page,
                    round_trip_ps: mv.t_ps - prev.t_ps,
                    trips: hist.trips,
                })
            }
            _ => None,
        };
        if hist.moves.len() == HISTORY_PER_PAGE {
            hist.moves.remove(0);
        }
        hist.moves.push(mv);
        hist.total_moves += 1;
        pong
    }

    /// End-of-run totals plus the [`HOTTEST_PAGES`] most-moved pages.
    /// Ordering is deterministic: moves descending, then page id ascending.
    pub fn summary(&self) -> ProvenanceSummary {
        let mut ranked: Vec<(&u64, &PageHistory)> = self.pages.iter().collect();
        ranked.sort_by_key(|(page, h)| (std::cmp::Reverse(h.total_moves), **page));
        ProvenanceSummary {
            tracked_pages: u64_from_usize(self.pages.len()),
            total_moves: self.pages.values().map(|h| h.total_moves).sum(),
            ping_pong_trips: self.ping_pong_trips,
            skipped_moves: self.skipped_moves,
            hottest: ranked
                .into_iter()
                .take(HOTTEST_PAGES)
                .map(|(page, h)| PageProvenance {
                    page: *page,
                    moves: h.total_moves,
                    trips: h.trips,
                    history: h.moves.clone(),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempod_types::{FrameId, PageId};

    fn swap(fast: u64, slow: u64, pa: u64, pb: u64, hot: u64) -> Migration {
        // frame_a = slow-side frame of the promoted page, frame_b = fast
        // slot it moves into (mirrors `MemPod::plan` / `Hma`).
        Migration::page_swap(
            FrameId(slow),
            FrameId(fast),
            PageId(pa),
            PageId(pb),
            Some(0),
        )
        .with_hotness(hot)
    }

    #[test]
    fn records_both_sides_with_tier_direction() {
        let mut ldg = ProvenanceLedger::new(4, Picos::from_us(1));
        let pongs = ldg.record(&swap(2, 9, 100, 200, 7), Picos(10), false);
        assert!(pongs.is_empty());
        let s = ldg.summary();
        assert_eq!(s.tracked_pages, 2);
        assert_eq!(s.total_moves, 2);
        let promoted = s.hottest.iter().find(|p| p.page == 100).expect("tracked");
        assert_eq!(promoted.history.len(), 1);
        assert!(promoted.history[0].to_fast);
        assert_eq!(promoted.history[0].to_frame, 2);
        assert_eq!(promoted.history[0].from_frame, 9);
        assert_eq!(promoted.history[0].hotness, 7);
        assert_eq!(promoted.history[0].cause, MoveCause::Promotion);
        let victim = s.hottest.iter().find(|p| p.page == 200).expect("tracked");
        assert!(!victim.history[0].to_fast);
        assert_eq!(victim.history[0].cause, MoveCause::Displaced);
    }

    #[test]
    fn detects_ping_pong_within_window_only() {
        let mut ldg = ProvenanceLedger::new(4, Picos(100)); // window = 400 ps
        ldg.record(&swap(1, 8, 50, 60, 3), Picos(0), false);
        // Page 50 bounces back out within the window: one trip.
        let pongs = ldg.record(&swap(1, 8, 61, 50, 5), Picos(300), false);
        assert_eq!(pongs.len(), 1);
        assert_eq!(pongs[0].page, 50);
        assert_eq!(pongs[0].round_trip_ps, 300);
        assert_eq!(pongs[0].trips, 1);
        // Back in again, but far outside the window: no trip.
        let pongs = ldg.record(&swap(1, 8, 50, 61, 9), Picos(10_000), false);
        assert!(pongs.is_empty());
        assert_eq!(ldg.summary().ping_pong_trips, 1);
    }

    #[test]
    fn rolled_back_moves_never_pong() {
        let mut ldg = ProvenanceLedger::new(4, Picos(1_000));
        ldg.record(&swap(1, 8, 50, 60, 3), Picos(0), false);
        let pongs = ldg.record(&swap(1, 8, 61, 50, 5), Picos(10), true);
        assert!(pongs.is_empty());
        let s = ldg.summary();
        let page = s.hottest.iter().find(|p| p.page == 50).expect("tracked");
        assert!(page.history[1].rolled_back);
    }

    #[test]
    fn history_ring_is_bounded() {
        let mut ldg = ProvenanceLedger::new(4, Picos(0));
        for i in 0..(HISTORY_PER_PAGE as u64 + 5) {
            ldg.record(&swap(1, 8, 50, 60 + i, 1), Picos(i * 10), false);
        }
        let s = ldg.summary();
        let page = s.hottest.iter().find(|p| p.page == 50).expect("tracked");
        assert_eq!(page.history.len(), HISTORY_PER_PAGE);
        assert_eq!(page.moves, HISTORY_PER_PAGE as u64 + 5);
        // Oldest retained move is the (total - HISTORY_PER_PAGE)-th.
        assert_eq!(page.history[0].t_ps, 50);
    }

    #[test]
    fn summary_ranking_is_deterministic() {
        let mut ldg = ProvenanceLedger::new(4, Picos(0));
        ldg.record(&swap(1, 8, 5, 6, 1), Picos(0), false);
        ldg.record(&swap(2, 9, 5, 7, 1), Picos(10), false);
        let s = ldg.summary();
        assert_eq!(s.hottest[0].page, 5); // 2 moves
                                          // Equal counts rank by page id.
        assert_eq!(s.hottest[1].page, 6);
        assert_eq!(s.hottest[2].page, 7);
    }

    #[test]
    fn summary_round_trips_through_serde() {
        let mut ldg = ProvenanceLedger::new(4, Picos(100));
        ldg.record(&swap(1, 8, 50, 60, 3), Picos(0), false);
        ldg.record(&swap(1, 8, 61, 50, 5), Picos(50), false);
        let s = ldg.summary();
        let text = serde_json::to_string(&s).expect("serialize");
        let back: ProvenanceSummary = serde_json::from_str(&text).expect("deserialize");
        assert_eq!(back, s);
    }
}
