//! Vendored, dependency-free stand-in for the `criterion` crate.
//!
//! Provides the API subset `mempod-bench` uses — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], [`black_box`],
//! [`criterion_group!`] and [`criterion_main!`] — backed by a plain
//! wall-clock timing loop instead of criterion's statistical machinery.
//! Results print as `name: <mean> ns/iter (<n> iters)`.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Default per-benchmark measurement budget.
const DEFAULT_BUDGET_MS: u64 = 200;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            budget_ms: DEFAULT_BUDGET_MS,
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), DEFAULT_BUDGET_MS, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    budget_ms: u64,
}

impl BenchmarkGroup<'_> {
    /// Scales the measurement budget; smaller sample counts shorten runs,
    /// mirroring how criterion's `sample_size` is used for slow benches.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.budget_ms = (DEFAULT_BUDGET_MS * n as u64 / 100).max(20);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, self.budget_ms, f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.budget_ms, |b| f(b, input));
        self
    }

    /// Ends the group (a no-op; results print as they are measured).
    pub fn finish(&mut self) {}
}

/// A function-plus-parameter benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id rendered as `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// Times one routine inside the measurement budget.
#[derive(Debug)]
pub struct Bencher {
    budget: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Calls `f` repeatedly until the budget elapses and records the
    /// per-iteration mean.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        // One untimed call warms caches and gives slow bodies a chance to
        // finish at least once inside the budget accounting.
        black_box(f());
        let start = Instant::now();
        let mut n = 0u64;
        loop {
            black_box(f());
            n += 1;
            if start.elapsed() >= self.budget || n >= 10_000_000 {
                break;
            }
        }
        self.iters = n;
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, budget_ms: u64, mut f: F) {
    let mut b = Bencher {
        budget: Duration::from_millis(budget_ms),
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if b.iters == 0 {
        println!("  {label}: no measurement (iter was never called)");
        return;
    }
    let mean_ns = b.elapsed.as_nanos() / u128::from(b.iters);
    println!("  {label}: {mean_ns} ns/iter ({} iters)", b.iters);
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_function("plain", |b| b.iter(|| black_box(2u64 + 2)));
        g.bench_with_input(BenchmarkId::new("with_input", 5), &5u64, |b, &k| {
            b.iter(|| black_box(k * 2));
        });
        g.finish();
        c.bench_function("top_level", |b| b.iter(|| black_box(1u64)));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_every_shape() {
        benches();
    }
}
