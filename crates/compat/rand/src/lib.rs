//! Vendored, dependency-free stand-in for the `rand` crate.
//!
//! Implements the subset the workspace uses: [`rngs::StdRng`] seeded with
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer and
//! float ranges, and [`Rng::gen`] for uniform `f64` in `[0, 1)`.
//!
//! The generator is xoshiro256++ (Blackman & Vigna), seeded through
//! SplitMix64 exactly as the reference implementation recommends. It is a
//! high-quality non-cryptographic PRNG; the workspace's statistical trace
//! tests (write-ratio, hot-fraction and arrival-rate tolerances) pass
//! against it.

use std::ops::{Range, RangeInclusive};

/// The raw random-word source.
pub trait RngCore {
    /// The next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of seeded generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Samples one value from `rng`'s output stream.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods layered over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` (uniform `f64` in `[0, 1)`, raw `u64`,
    /// or a fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Samples `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++ behind the same name rand uses
    /// for its default strong PRNG.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    /// SplitMix64 step, used to expand the 64-bit seed into full state.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut s = seed;
            let state = [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ];
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let s = &mut self.state;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = rng.gen_range(0u64..10);
            assert!(x < 10);
            seen[x as usize] = true;
            let y = rng.gen_range(5u32..=8);
            assert!((5..=8).contains(&y));
            let f = rng.gen_range(0.5f64..1.5);
            assert!((0.5..1.5).contains(&f));
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
    }

    #[test]
    fn f64_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} off-center");
    }
}
