//! Vendored, dependency-free stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` inner attribute
//!   and `name in strategy` argument bindings;
//! * range strategies over integers and `f64`, plus [`Just`];
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`].
//!
//! Unlike the real proptest there is no shrinking: a failing case panics
//! with the sampled argument values, which are reproducible because the
//! RNG is seeded deterministically from the test name.

/// Test-runner configuration and error types.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Number of randomized cases to run per property.
    #[derive(Debug, Clone, Copy)]
    pub struct Config {
        /// How many sampled cases each property executes.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` randomized cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 32 }
        }
    }

    /// A failed property case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        /// Creates a failure carrying `msg`.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError { msg: msg.into() }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.msg)
        }
    }

    /// Builds the deterministic per-test RNG: the seed is an FNV-1a hash
    /// of the test name, so failures reproduce run-to-run.
    pub fn rng_for_test(name: &str) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        StdRng::seed_from_u64(h)
    }
}

/// Value-generation strategies.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A source of sampled values for one proptest argument.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;
        /// Samples one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }
}

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares deterministic randomized property tests.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            @with_config ($cfg)
            $( $(#[$meta])* fn $name($($arg in $strat),+) $body )*
        }
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            @with_config ($crate::test_runner::Config::default())
            $( $(#[$meta])* fn $name($($arg in $strat),+) $body )*
        }
    };
    (
        @with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::Config = $cfg;
                let mut __rng =
                    $crate::test_runner::rng_for_test(stringify!($name));
                for __case in 0..__cfg.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::sample(
                            &($strat),
                            &mut __rng,
                        );
                    )+
                    let __args: String = [
                        $(format!(
                            "{} = {:?}",
                            stringify!($arg),
                            &$arg
                        )),+
                    ].join(", ");
                    let __outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(e) = __outcome {
                        panic!(
                            "property `{}` failed on case {}/{} ({}): {}",
                            stringify!($name),
                            __case + 1,
                            __cfg.cases,
                            __args,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                $($fmt)+
            )));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Sampled values respect their range bounds.
        #[test]
        fn ranges_hold(a in 3u64..9, b in 0usize..=4, f in 0.25f64..0.75) {
            prop_assert!((3..9).contains(&a));
            prop_assert!(b <= 4);
            prop_assert!((0.25..0.75).contains(&f), "f = {f}");
            prop_assert_eq!(a, a);
            prop_assert_ne!(f, -1.0);
        }
    }

    proptest! {
        /// The no-config form uses the default case count.
        #[test]
        fn default_config_runs(x in 0u32..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    #[should_panic(expected = "property `failing` failed")]
    fn failures_panic_with_args() {
        proptest! {
            @with_config (crate::test_runner::Config::with_cases(4))
            fn failing(x in 0u64..10) {
                prop_assert!(x > 100, "x = {x} is not > 100");
            }
        }
        failing();
    }
}
