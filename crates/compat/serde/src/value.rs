//! The JSON-like data model shared by the vendored `serde` and `serde_json`.

use std::fmt;

/// A number: unsigned, signed, or floating-point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
}

impl Number {
    /// This number as an `f64` (lossy for very large integers).
    pub fn as_f64(&self) -> f64 {
        match self {
            Number::U64(n) => *n as f64,
            Number::I64(n) => *n as f64,
            Number::F64(n) => *n,
        }
    }

    /// This number as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Number::U64(n) => Some(*n),
            Number::I64(n) => u64::try_from(*n).ok(),
            Number::F64(_) => None,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::U64(n) => write!(f, "{n}"),
            Number::I64(n) => write!(f, "{n}"),
            Number::F64(n) => {
                if n.is_finite() {
                    if n.fract() == 0.0 && n.abs() < 1e15 {
                        write!(f, "{n:.1}")
                    } else {
                        write!(f, "{n}")
                    }
                } else {
                    // JSON has no Inf/NaN; emit null like serde_json does.
                    write!(f, "null")
                }
            }
        }
    }
}

/// An insertion-ordered string-keyed map, mirroring `serde_json::Map`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map<K = String, V = Value> {
    entries: Vec<(K, V)>,
}

impl Map<String, Value> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Map {
            entries: Vec::new(),
        }
    }

    /// Inserts `value` under `key`, replacing and returning any prior value.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// The value under `key`, if present.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterates keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Iterates values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl FromIterator<(String, Value)> for Map<String, Value> {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

impl IntoIterator for Map<String, Value> {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered list of values.
    Array(Vec<Value>),
    /// A string-keyed object.
    Object(Map<String, Value>),
}

impl Value {
    /// The contained string, if this is a `String`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The contained number as `f64`, if this is a `Number`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The contained non-negative integer, if this is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The contained bool, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The contained array, if this is an `Array`.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The contained object, if this is an `Object`.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Indexes into an object by key, returning `Null` when absent (the
    /// ergonomic `value["key"]` accessor serde_json offers).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl From<Map<String, Value>> for Value {
    fn from(m: Map<String, Value>) -> Self {
        Value::Object(m)
    }
}

impl From<Vec<Value>> for Value {
    fn from(a: Vec<Value>) -> Self {
        Value::Array(a)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        const NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        const NULL: Value = Value::Null;
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_insertion_order_and_replaces() {
        let mut m = Map::new();
        m.insert("b".into(), Value::Bool(true));
        m.insert("a".into(), Value::Null);
        m.insert("b".into(), Value::Bool(false));
        let keys: Vec<&String> = m.keys().collect();
        assert_eq!(keys, ["b", "a"]);
        assert_eq!(m.get("b"), Some(&Value::Bool(false)));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn value_accessors() {
        let mut m = Map::new();
        m.insert("x".into(), Value::Number(Number::U64(7)));
        let v = Value::Object(m);
        assert_eq!(v["x"].as_u64(), Some(7));
        assert_eq!(v["missing"], Value::Null);
        let a = Value::Array(vec![Value::Bool(true)]);
        assert_eq!(a[0].as_bool(), Some(true));
        assert_eq!(a[5], Value::Null);
    }
}
