//! Vendored, dependency-free stand-in for the `serde` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the handful of external crates the suite relies on are vendored as small
//! API-compatible subsets under `crates/compat/`. This crate implements the
//! serde surface the workspace actually uses:
//!
//! * [`Serialize`] / [`Deserialize`] traits over a concrete JSON-like
//!   [`Value`] data model (instead of serde's visitor architecture);
//! * `#[derive(Serialize, Deserialize)]` via the sibling `serde_derive`
//!   proc-macro crate, honouring `#[serde(transparent)]`,
//!   `#[serde(skip)]` and `#[serde(default)]`;
//! * the [`de::DeserializeOwned`] marker bound.
//!
//! The sibling `serde_json` crate re-exports [`Value`]/[`Map`] and adds
//! text rendering/parsing on top of this data model.

pub mod value;

pub use value::{Map, Number, Value};

// The derive macros live in the macro namespace, the traits in the type
// namespace; both can be re-exported under the same names, exactly as the
// real serde does with its `derive` feature.
pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error carrying `msg`.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// A type that can render itself into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns [`Error`] if the value's shape does not match `Self`.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

/// The `serde::de` module: owned-deserialization marker bound.
pub mod de {
    /// Marker for types deserializable without borrowing from the input.
    /// In this vendored subset every [`Deserialize`](crate::Deserialize)
    /// type qualifies.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

/// The `serde::ser` module, for parity with upstream paths.
pub mod ser {
    pub use crate::{Error, Serialize};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                #[allow(unused_comparisons)]
                if *self >= 0 {
                    Value::Number(Number::U64(*self as u64))
                } else {
                    Value::Number(Number::I64(*self as i64))
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(Number::U64(n)) => {
                        <$t>::try_from(*n).map_err(Error::custom)
                    }
                    Value::Number(Number::I64(n)) => {
                        <$t>::try_from(*n).map_err(Error::custom)
                    }
                    Value::Number(Number::F64(n))
                        if n.fract() == 0.0 && *n >= 0.0 =>
                    {
                        <$t>::try_from(*n as u64).map_err(Error::custom)
                    }
                    other => Err(Error::custom(format!(
                        "expected integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Number(n) => Ok(n.as_f64()),
            other => Err(Error::custom(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        f64::deserialize(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for &'static str {
    /// Leaks the string to obtain `'static` — acceptable because the only
    /// such fields in this workspace are benchmark names on config types,
    /// deserialized a handful of times per process.
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let items = match v {
            Value::Array(items) => items,
            other => return Err(Error::custom(format!("expected array, got {other:?}"))),
        };
        let parsed: Vec<T> = items.iter().map(T::deserialize).collect::<Result<_, _>>()?;
        parsed.try_into().map_err(|bad: Vec<T>| {
            Error::custom(format!("expected {N} elements, got {}", bad.len()))
        })
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

/// Types usable as JSON object keys (JSON keys are always strings, so
/// integer keys round-trip through their decimal rendering, exactly as
/// serde_json does).
pub trait MapKey: Sized {
    /// Renders the key for the JSON object.
    fn to_key(&self) -> String;
    /// Parses the key back.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] if `key` does not parse as `Self`.
    fn from_key(key: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, Error> {
        Ok(key.to_string())
    }
}

macro_rules! impl_int_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, Error> {
                key.parse().map_err(Error::custom)
            }
        }
    )*};
}

impl_int_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sort keys so serialization is deterministic despite HashMap's
        // randomized iteration order.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries.into_iter().collect())
    }
}

impl<K, V, S> Deserialize for std::collections::HashMap<K, V, S>
where
    K: MapKey + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::deserialize(v)?)))
                .collect(),
            other => Err(Error::custom(format!("expected object, got {other:?}"))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(42u64.to_value(), Value::Number(Number::U64(42)));
        assert_eq!(u64::deserialize(&42u64.to_value()), Ok(42));
        assert_eq!(bool::deserialize(&true.to_value()), Ok(true));
        assert_eq!(
            String::deserialize(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
        assert_eq!(f64::deserialize(&1.5f64.to_value()), Ok(1.5));
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::deserialize(&v.to_value()), Ok(v));
        let o: Option<u64> = None;
        assert_eq!(o.to_value(), Value::Null);
        assert_eq!(Option::<u64>::deserialize(&Value::Null), Ok(None));
        assert_eq!(Option::<u64>::deserialize(&7u64.to_value()), Ok(Some(7)));
    }

    #[test]
    fn mismatch_is_an_error() {
        assert!(u64::deserialize(&Value::Bool(true)).is_err());
        assert!(bool::deserialize(&Value::Null).is_err());
        assert!(u8::deserialize(&300u64.to_value()).is_err());
    }
}
