//! `#[derive(Serialize, Deserialize)]` for the vendored serde subset.
//!
//! The real serde_derive pulls in syn + quote, neither of which is
//! available offline, so this crate parses the item token stream by hand.
//! Supported shapes (everything this workspace defines):
//!
//! * structs with named fields, tuple structs, unit structs;
//! * enums whose variants are unit, tuple, or struct-like;
//! * container attribute `#[serde(transparent)]`;
//! * field attributes `#[serde(skip)]` and `#[serde(default)]`.
//!
//! Generics are intentionally unsupported — the derive panics with a clear
//! message at compile time if it meets a `<` after the type name.
//!
//! Data model: named structs serialize to objects, one-field tuple structs
//! to their inner value, longer tuple structs to arrays, unit variants to
//! their name as a string, and data-carrying variants to externally-tagged
//! one-key objects — matching serde_json's defaults for the same shapes.

// Hand-rolled token walking reads better with explicit matches, and the
// helper signatures mirror what syn/quote would produce.
#![allow(clippy::single_match, clippy::type_complexity)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field: its accessor (name or index) and serde attributes.
struct Field {
    /// Field name for named fields, decimal index for tuple fields.
    accessor: String,
    skip: bool,
    default: bool,
}

/// The field layout of a struct or enum variant.
enum Shape {
    Unit,
    Tuple(Vec<Field>),
    Named(Vec<Field>),
}

/// A parsed container.
struct Item {
    name: String,
    transparent: bool,
    kind: Kind,
}

enum Kind {
    Struct(Shape),
    Enum(Vec<(String, Shape)>),
}

/// Serde attributes found on one attribute target.
#[derive(Default)]
struct SerdeAttrs {
    transparent: bool,
    skip: bool,
    default: bool,
}

/// Consumes leading `#[...]` attribute groups, returning any serde
/// attributes found among them.
fn take_attrs(tokens: &[TokenTree], pos: &mut usize) -> SerdeAttrs {
    let mut attrs = SerdeAttrs::default();
    while *pos + 1 < tokens.len() {
        let TokenTree::Punct(p) = &tokens[*pos] else {
            break;
        };
        if p.as_char() != '#' {
            break;
        }
        let TokenTree::Group(g) = &tokens[*pos + 1] else {
            break;
        };
        if g.delimiter() != Delimiter::Bracket {
            break;
        }
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if let [TokenTree::Ident(name), TokenTree::Group(args)] = &inner[..] {
            if name.to_string() == "serde" {
                for t in args.stream() {
                    if let TokenTree::Ident(flag) = t {
                        match flag.to_string().as_str() {
                            "transparent" => attrs.transparent = true,
                            "skip" => attrs.skip = true,
                            "default" => attrs.default = true,
                            other => panic!(
                                "serde_derive (vendored): unsupported \
                                 #[serde({other})] attribute"
                            ),
                        }
                    }
                }
            }
        }
        *pos += 2;
    }
    attrs
}

/// Consumes an optional `pub` / `pub(...)` visibility.
fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*pos) {
        if id.to_string() == "pub" {
            *pos += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *pos += 1;
                }
            }
        }
    }
}

/// Skips one type (everything up to a top-level `,`), tracking `<`/`>`
/// nesting so generic arguments don't end the field early.
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0i32;
    while *pos < tokens.len() {
        match &tokens[*pos] {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    *pos += 1; // consume the separator
                    return;
                }
                _ => {}
            },
            _ => {}
        }
        *pos += 1;
    }
}

/// Parses the fields inside a brace group: `attr* vis? name : Type ,`*
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        let attrs = take_attrs(&tokens, &mut pos);
        skip_visibility(&tokens, &mut pos);
        let TokenTree::Ident(name) = &tokens[pos] else {
            panic!("serde_derive (vendored): expected field name");
        };
        pos += 1; // name
        pos += 1; // ':'
        skip_type(&tokens, &mut pos);
        fields.push(Field {
            accessor: name.to_string(),
            skip: attrs.skip,
            default: attrs.default,
        });
    }
    fields
}

/// Parses the fields inside a paren group: `attr* vis? Type ,`*
fn parse_tuple_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    let mut index = 0usize;
    while pos < tokens.len() {
        let attrs = take_attrs(&tokens, &mut pos);
        skip_visibility(&tokens, &mut pos);
        skip_type(&tokens, &mut pos);
        fields.push(Field {
            accessor: index.to_string(),
            skip: attrs.skip,
            default: attrs.default,
        });
        index += 1;
    }
    fields
}

/// Parses the variants inside an enum body.
fn parse_variants(stream: TokenStream) -> Vec<(String, Shape)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        let _ = take_attrs(&tokens, &mut pos);
        let TokenTree::Ident(name) = &tokens[pos] else {
            panic!("serde_derive (vendored): expected variant name");
        };
        pos += 1;
        let shape = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                Shape::Tuple(parse_tuple_fields(g.stream()))
            }
            _ => Shape::Unit,
        };
        // Consume a trailing comma if present.
        if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
            if p.as_char() == ',' {
                pos += 1;
            }
        }
        variants.push((name.to_string(), shape));
    }
    variants
}

/// Parses the whole derive input item.
fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    let attrs = take_attrs(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);
    let TokenTree::Ident(kw) = &tokens[pos] else {
        panic!("serde_derive (vendored): expected `struct` or `enum`");
    };
    let kw = kw.to_string();
    pos += 1;
    let TokenTree::Ident(name) = &tokens[pos] else {
        panic!("serde_derive (vendored): expected a type name");
    };
    let name = name.to_string();
    pos += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
        if p.as_char() == '<' {
            panic!(
                "serde_derive (vendored): generic type `{name}` is not \
                 supported; write manual Serialize/Deserialize impls"
            );
        }
    }
    let kind = match kw.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Struct(Shape::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Struct(Shape::Tuple(parse_tuple_fields(g.stream())))
            }
            _ => Kind::Struct(Shape::Unit),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            _ => panic!("serde_derive (vendored): malformed enum body"),
        },
        other => panic!("serde_derive (vendored): cannot derive for `{other}`"),
    };
    Item {
        name,
        transparent: attrs.transparent,
        kind,
    }
}

/// Serialize expression for a `Shape` whose fields are reachable through
/// `access(field_accessor)`, e.g. `self.x` or a bound pattern name.
fn shape_to_value(shape: &Shape, access: &dyn Fn(&str) -> String) -> String {
    match shape {
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::Tuple(fields) => {
            let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
            if live.len() == 1 {
                format!(
                    "::serde::Serialize::to_value(&{})",
                    access(&live[0].accessor)
                )
            } else {
                let items: Vec<String> = live
                    .iter()
                    .map(|f| format!("::serde::Serialize::to_value(&{})", access(&f.accessor)))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", items.join(", "))
            }
        }
        Shape::Named(fields) => {
            let mut code = String::from("{ let mut __m = ::serde::Map::new(); ");
            for f in fields.iter().filter(|f| !f.skip) {
                code.push_str(&format!(
                    "__m.insert(::std::string::String::from(\"{}\"), \
                     ::serde::Serialize::to_value(&{})); ",
                    f.accessor,
                    access(&f.accessor)
                ));
            }
            code.push_str("::serde::Value::Object(__m) }");
            code
        }
    }
}

/// Deserialize expression building a value of `path` (a type or variant
/// path) from the object/value expression `src` for this shape.
fn shape_from_value(shape: &Shape, path: &str, src: &str) -> String {
    match shape {
        Shape::Unit => format!("Ok({path})"),
        Shape::Tuple(fields) => {
            let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
            if live.len() == 1 && fields.len() == 1 {
                format!("Ok({path}(::serde::Deserialize::deserialize({src})?))")
            } else {
                // Longer tuples deserialize from arrays, positionally;
                // skipped fields take their default.
                let mut code = format!(
                    "{{ let __a = match {src} {{ \
                       ::serde::Value::Array(a) => a, \
                       _ => return Err(::serde::Error::custom(\
                           \"expected array\")) }}; Ok({path}("
                );
                let mut live_idx = 0usize;
                for f in fields {
                    if f.skip {
                        code.push_str("::std::default::Default::default(), ");
                    } else {
                        code.push_str(&format!(
                            "::serde::Deserialize::deserialize(\
                             __a.get({live_idx}).unwrap_or(&::serde::Value::Null))?, "
                        ));
                        live_idx += 1;
                    }
                }
                code.push_str(")) }");
                code
            }
        }
        Shape::Named(fields) => {
            let mut code = format!(
                "{{ let __m = match {src} {{ \
                   ::serde::Value::Object(m) => m, \
                   _ => return Err(::serde::Error::custom(\
                       \"expected object\")) }}; Ok({path} {{ "
            );
            for f in fields {
                if f.skip {
                    code.push_str(&format!(
                        "{}: ::std::default::Default::default(), ",
                        f.accessor
                    ));
                } else if f.default {
                    code.push_str(&format!(
                        "{0}: match __m.get(\"{0}\") {{ \
                           Some(v) => ::serde::Deserialize::deserialize(v)?, \
                           None => ::std::default::Default::default() }}, ",
                        f.accessor
                    ));
                } else {
                    // A missing key behaves like an explicit null, so
                    // Option fields tolerate omission and everything else
                    // reports a type mismatch.
                    code.push_str(&format!(
                        "{0}: ::serde::Deserialize::deserialize(\
                           __m.get(\"{0}\").unwrap_or(&::serde::Value::Null))?, ",
                        f.accessor
                    ));
                }
            }
            code.push_str("}) }");
            code
        }
    }
}

/// Pattern that binds a shape's fields inside a `match` arm, plus the
/// accessor function for the bound names.
fn variant_pattern(shape: &Shape) -> (String, Box<dyn Fn(&str) -> String>) {
    match shape {
        Shape::Unit => (String::new(), Box::new(|a: &str| a.to_string())),
        Shape::Tuple(fields) => {
            let binds: Vec<String> = (0..fields.len()).map(|i| format!("__f{i}")).collect();
            (
                format!("({})", binds.join(", ")),
                Box::new(|a: &str| format!("__f{a}")),
            )
        }
        Shape::Named(fields) => {
            let binds: Vec<String> = fields.iter().map(|f| f.accessor.clone()).collect();
            (
                format!("{{ {} }}", binds.join(", ")),
                Box::new(|a: &str| a.to_string()),
            )
        }
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.kind {
        // `#[serde(transparent)]` on a named single-field struct
        // serializes as the bare inner value; tuple newtypes already do.
        Kind::Struct(Shape::Named(fields)) if item.transparent => {
            let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
            match live[..] {
                [f] => format!("::serde::Serialize::to_value(&self.{})", f.accessor),
                _ => panic!(
                    "serde_derive (vendored): transparent needs exactly one \
                     non-skipped field"
                ),
            }
        }
        Kind::Struct(shape) => shape_to_value(shape, &|a: &str| format!("self.{a}")),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for (vname, shape) in variants {
                let (pat, access) = variant_pattern(shape);
                let value = match shape {
                    Shape::Unit => format!(
                        "::serde::Value::String(\
                         ::std::string::String::from(\"{vname}\"))"
                    ),
                    _ => format!(
                        "{{ let mut __outer = ::serde::Map::new(); \
                         __outer.insert(::std::string::String::from(\"{vname}\"), {}); \
                         ::serde::Value::Object(__outer) }}",
                        shape_to_value(shape, &*access)
                    ),
                };
                arms.push_str(&format!("{name}::{vname} {pat} => {value},\n"));
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
           fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive (vendored): generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Shape::Named(fields)) if item.transparent => {
            let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
            match live[..] {
                [f] => {
                    let mut init =
                        format!("{}: ::serde::Deserialize::deserialize(__v)?, ", f.accessor);
                    for skipped in fields.iter().filter(|f| f.skip) {
                        init.push_str(&format!(
                            "{}: ::std::default::Default::default(), ",
                            skipped.accessor
                        ));
                    }
                    format!("Ok({name} {{ {init} }})")
                }
                _ => panic!(
                    "serde_derive (vendored): transparent needs exactly one \
                     non-skipped field"
                ),
            }
        }
        Kind::Struct(shape) => shape_from_value(shape, name, "__v"),
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for (vname, shape) in variants {
                match shape {
                    Shape::Unit => {
                        unit_arms.push_str(&format!("\"{vname}\" => Ok({name}::{vname}),\n"))
                    }
                    _ => data_arms.push_str(&format!(
                        "if let Some(__inner) = __m.get(\"{vname}\") {{ \
                           return {}; }}\n",
                        shape_from_value(shape, &format!("{name}::{vname}"), "__inner")
                    )),
                }
            }
            format!(
                "match __v {{\n\
                   ::serde::Value::String(__s) => match __s.as_str() {{\n\
                     {unit_arms}\n\
                     __other => Err(::serde::Error::custom(format!(\n\
                       \"unknown variant `{{__other}}` of {name}\"))),\n\
                   }},\n\
                   ::serde::Value::Object(__m) => {{\n\
                     {data_arms}\n\
                     Err(::serde::Error::custom(\n\
                       \"unknown data variant of {name}\"))\n\
                   }},\n\
                   _ => Err(::serde::Error::custom(\n\
                     \"expected string or object for enum {name}\")),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
           fn deserialize(__v: &::serde::Value) \
             -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive (vendored): generated Deserialize impl parses")
}
