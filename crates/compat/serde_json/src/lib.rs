//! Vendored, dependency-free stand-in for the `serde_json` crate.
//!
//! Re-exports the [`Value`]/[`Map`]/[`Number`] data model from the sibling
//! vendored `serde` and adds the text layer this workspace uses:
//! [`to_value`], [`to_string`], [`to_string_pretty`], [`from_str`], and the
//! [`json!`] macro (a tt-muncher supporting nested object/array literals
//! and arbitrary expression values, like the real one).

pub use serde::value::{Map, Number, Value};
pub use serde::Error;

use serde::Serialize;

/// Converts any [`Serialize`] type into a [`Value`].
///
/// # Errors
///
/// Never fails in this vendored subset; the `Result` exists for call-site
/// compatibility with the real serde_json.
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Renders `value` as compact JSON text.
///
/// # Errors
///
/// Never fails in this vendored subset.
pub fn to_string<T: Serialize>(value: T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Renders `value` as two-space-indented JSON text.
///
/// # Errors
///
/// Never fails in this vendored subset.
pub fn to_string_pretty<T: Serialize>(value: T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a `T`.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    T::deserialize(&v)
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    let (nl, pad, pad_in) = match indent {
        Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
        None => ("", String::new(), String::new()),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(out, item, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Minimal recursive-descent JSON parser over the input bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_word(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_word("null") => Ok(Value::Null),
            Some(b't') if self.eat_word("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_word("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::custom("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut m = Map::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(m));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    let val = self.parse_value()?;
                    m.insert(key, val);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(m));
                        }
                        _ => return Err(Error::custom("expected `,` or `}` in object")),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::custom(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::custom("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::custom("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| Error::custom("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by this
                            // workspace's data; map them to the
                            // replacement character instead of failing.
                            s.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::custom(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| Error::custom("invalid UTF-8"))?;
                    s.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(|n| Value::Number(Number::F64(n)))
                .map_err(Error::custom)
        } else if let Ok(n) = text.parse::<u64>() {
            Ok(Value::Number(Number::U64(n)))
        } else {
            text.parse::<i64>()
                .map(|n| Value::Number(Number::I64(n)))
                .map_err(Error::custom)
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Builds a [`Value`] from a JSON-like literal, accepting nested object
/// and array literals and arbitrary Rust expressions as values.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($body:tt)* }) => {{
        #[allow(unused_mut)]
        let mut __map = $crate::Map::new();
        $crate::json_object_entries!(__map; $($body)*);
        $crate::Value::Object(__map)
    }};
    ([ $($body:tt)* ]) => {
        $crate::__json_array_from(|__arr| {
            $crate::json_array_elems!(__arr; $($body)*);
        })
    };
    ($other:expr) => {
        match $crate::to_value(&$other) {
            Ok(v) => v,
            Err(_) => $crate::Value::Null,
        }
    };
}

/// Implementation detail of [`json!`]: builds an array value through a
/// filler closure so the element pushes expand against a plain `&mut Vec`.
#[doc(hidden)]
pub fn __json_array_from(fill: impl FnOnce(&mut Vec<Value>)) -> Value {
    let mut arr = Vec::new();
    fill(&mut arr);
    Value::Array(arr)
}

/// Implementation detail of [`json!`]: munches `"key": value` pairs.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_entries {
    ($map:ident;) => {};
    // Nested object literal value.
    ($map:ident; $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::json!({ $($inner)* }));
        $crate::json_object_entries!($map; $($($rest)*)?);
    };
    // Nested array literal value.
    ($map:ident; $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::json!([ $($inner)* ]));
        $crate::json_object_entries!($map; $($($rest)*)?);
    };
    // Expression value: accumulate tokens until a top-level comma.
    ($map:ident; $key:literal : $($rest:tt)*) => {
        $crate::json_expr_value!($map; $key; (); $($rest)*);
    };
}

/// Implementation detail of [`json!`]: accumulates one expression value.
#[doc(hidden)]
#[macro_export]
macro_rules! json_expr_value {
    ($map:ident; $key:literal; ($($val:tt)+);) => {
        $map.insert($key.to_string(), $crate::json!($($val)+));
    };
    ($map:ident; $key:literal; ($($val:tt)+); , $($rest:tt)*) => {
        $map.insert($key.to_string(), $crate::json!($($val)+));
        $crate::json_object_entries!($map; $($rest)*);
    };
    ($map:ident; $key:literal; ($($val:tt)*); $next:tt $($rest:tt)*) => {
        $crate::json_expr_value!($map; $key; ($($val)* $next); $($rest)*);
    };
}

/// Implementation detail of [`json!`]: munches array elements.
#[doc(hidden)]
#[macro_export]
macro_rules! json_array_elems {
    ($arr:ident;) => {};
    // Nested object literal element.
    ($arr:ident; { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $arr.push($crate::json!({ $($inner)* }));
        $crate::json_array_elems!($arr; $($($rest)*)?);
    };
    // Nested array literal element.
    ($arr:ident; [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $arr.push($crate::json!([ $($inner)* ]));
        $crate::json_array_elems!($arr; $($($rest)*)?);
    };
    // Expression element: accumulate tokens until a top-level comma.
    ($arr:ident; $($rest:tt)*) => {
        $crate::json_array_expr!($arr; (); $($rest)*);
    };
}

/// Implementation detail of [`json!`]: accumulates one array element.
#[doc(hidden)]
#[macro_export]
macro_rules! json_array_expr {
    ($arr:ident; ($($val:tt)+);) => {
        $arr.push($crate::json!($($val)+));
    };
    ($arr:ident; ($($val:tt)+); , $($rest:tt)*) => {
        $arr.push($crate::json!($($val)+));
        $crate::json_array_elems!($arr; $($rest)*);
    };
    ($arr:ident; ($($val:tt)*); $next:tt $($rest:tt)*) => {
        $crate::json_array_expr!($arr; ($($val)* $next); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_render() {
        let v = json!({ "a": 1, "b": [true, null], "s": "x\"y" });
        assert_eq!(
            to_string(&v).expect("render"),
            r#"{"a":1,"b":[true,null],"s":"x\"y"}"#
        );
        let pretty = to_string_pretty(&v).expect("render");
        assert!(pretty.contains("  \"a\": 1"));
    }

    #[test]
    fn json_macro_handles_nested_and_expressions() {
        let x = 4u64;
        let v = json!({
            "lit": "s",
            "expr": x * 2,
            "call": format!("n{}", x),
            "nested": { "inner": x },
            "arr": [1, 2],
        });
        assert_eq!(v["expr"].as_u64(), Some(8));
        assert_eq!(v["call"].as_str(), Some("n4"));
        assert_eq!(v["nested"]["inner"].as_u64(), Some(4));
        assert_eq!(v["arr"][1].as_u64(), Some(2));
    }

    #[test]
    fn parse_round_trips() {
        let v = json!({
            "n": -3,
            "f": 1.5,
            "s": "a\nb",
            "deep": { "list": [1, 2, 3], "ok": true },
        });
        let text = to_string_pretty(&v).expect("render");
        let back: Value = from_str(&text).expect("parse");
        assert_eq!(back, v);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("true false").is_err());
    }
}
