//! The Majority Element Algorithm (MEA) tracker — the paper's Algorithm 1.
//!
//! MEA was proposed by Karp, Shenker & Papadimitriou (TODS 2003) and studied
//! by Charikar, Chen & Farach-Colton (TCS 2004) for frequent-element mining
//! in data streams. The paper adapts it to hardware hot-page tracking: a map
//! of K `(page tag, counter)` entries processes each access with one of three
//! single-cycle operations:
//!
//! 1. page present → increment its counter (saturating at the counter width);
//! 2. page absent, map not full → insert with count 1;
//! 3. page absent, map full → decrement *every* counter, evict zeros.
//!
//! The crucial property (paper §3): when the stream does not satisfy the
//! majority condition, MEA fails *towards recency* — a page accessed near the
//! end of an interval knocks out one accessed many times early on. This makes
//! it a better predictor of the next interval than exact counting, at
//! `K × (tag + counter)` bits instead of one counter per page.
//!
//! The map prose in §5.2 says "a map structure of K entries" while
//! Algorithm 1 (Karp's formulation) inserts only while `|T| < K-1`; we follow
//! the prose and admit entries while `len < K`, which subsumes the Karp
//! variant at `K+1`.

use std::collections::BTreeMap;

use mempod_types::PageId;
use serde::{Deserialize, Serialize};

use crate::{sort_hot, ActivityTracker};

/// Counts of each MEA hardware operation, for micro-benchmarks and the
/// single-cycle-feasibility discussion in the paper's §3.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeaOpStats {
    /// Operation (1): increment an existing entry.
    pub increments: u64,
    /// Operation (2): insert a new entry.
    pub insertions: u64,
    /// Operation (3): global decrement sweeps.
    pub decrement_sweeps: u64,
    /// Entries evicted at zero during sweeps.
    pub evictions: u64,
}

/// A K-entry MEA activity tracker with saturating counters.
///
/// # Examples
///
/// ```
/// use mempod_tracker::{ActivityTracker, MeaTracker};
/// use mempod_types::PageId;
///
/// // Two entries: a third distinct page triggers a global decrement.
/// let mut t = MeaTracker::new(2, 8);
/// t.record(PageId(1));
/// t.record(PageId(2));
/// t.record(PageId(3)); // decrements 1 and 2 to zero, evicts both
/// assert!(t.hot_pages().is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct MeaTracker {
    // BTreeMap, not HashMap: the decrement sweep and `hot_pages` iterate
    // this map, and simulation-visible iteration must be deterministic
    // (page-id order). K ≤ 64 entries, so tree overhead is immaterial.
    entries: BTreeMap<PageId, u64>,
    k: usize,
    counter_max: u64,
    counter_bits: u32,
    stats: MeaOpStats,
}

impl MeaTracker {
    /// Creates a tracker with `k` entries and `counter_bits`-wide saturating
    /// counters.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or `counter_bits` is zero.
    pub fn new(k: usize, counter_bits: u32) -> Self {
        assert!(k > 0, "MEA needs at least one entry");
        assert!(
            (1..=64).contains(&counter_bits),
            "counter width must be 1..=64 bits"
        );
        let counter_max = if counter_bits >= 64 {
            u64::MAX
        } else {
            (1u64 << counter_bits) - 1
        };
        MeaTracker {
            entries: BTreeMap::new(),
            k,
            counter_max,
            counter_bits,
            stats: MeaOpStats::default(),
        }
    }

    /// The paper's chosen per-pod configuration: 64 entries, 2-bit counters.
    pub fn paper_default() -> Self {
        MeaTracker::new(64, 2)
    }

    /// Number of entries currently held (≤ K).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entry capacity K.
    pub fn capacity(&self) -> usize {
        self.k
    }

    /// Saturation value of each counter.
    pub fn counter_max(&self) -> u64 {
        self.counter_max
    }

    /// Hardware operation counts since construction (not cleared by
    /// [`reset`](ActivityTracker::reset)).
    pub fn op_stats(&self) -> MeaOpStats {
        self.stats
    }

    /// Whether `page` currently has an entry.
    pub fn contains(&self, page: PageId) -> bool {
        self.entries.contains_key(&page)
    }

    /// The counter value for `page`, if present.
    pub fn count_of(&self, page: PageId) -> Option<u64> {
        self.entries.get(&page).copied()
    }
}

impl ActivityTracker for MeaTracker {
    fn record(&mut self, page: PageId) {
        if let Some(c) = self.entries.get_mut(&page) {
            // Operation (1): saturating increment.
            if *c < self.counter_max {
                *c += 1;
            }
            self.stats.increments += 1;
        } else if self.entries.len() < self.k {
            // Operation (2): insert.
            self.entries.insert(page, 1);
            self.stats.insertions += 1;
        } else {
            // Operation (3): global decrement, evict zeros. The incoming
            // page is NOT inserted (Algorithm 1).
            self.stats.decrement_sweeps += 1;
            self.entries.retain(|_, c| {
                *c -= 1;
                *c > 0
            });
            let evicted = self.k - self.entries.len();
            self.stats.evictions += evicted as u64;
        }
    }

    fn hot_pages(&self) -> Vec<(PageId, u64)> {
        sort_hot(self.entries.iter().map(|(&p, &c)| (p, c)).collect())
    }

    fn reset(&mut self) {
        self.entries.clear();
    }

    fn storage_bits(&self, tag_bits: u32) -> u64 {
        self.k as u64 * (tag_bits as u64 + self.counter_bits as u64)
    }
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    use super::*;

    /// Brute-force re-implementation of Algorithm 1 used as a semantics
    /// oracle in tests (kept deliberately naive and separate).
    fn reference_mea(stream: &[PageId], k: usize, counter_max: u64) -> HashMap<PageId, u64> {
        let mut t: HashMap<PageId, u64> = HashMap::new();
        for &p in stream {
            if let Some(c) = t.get_mut(&p) {
                *c = (*c + 1).min(counter_max);
            } else if t.len() < k {
                t.insert(p, 1);
            } else {
                t.retain(|_, c| {
                    *c -= 1;
                    *c > 0
                });
            }
        }
        t
    }

    #[test]
    fn finds_majority_element() {
        // 7 appears more than N/(K+1) times: MEA must report it.
        let mut t = MeaTracker::new(2, 16);
        let stream: Vec<PageId> = [7u64, 1, 7, 2, 7, 3, 7, 4, 7]
            .iter()
            .map(|&x| PageId(x))
            .collect();
        for p in &stream {
            t.record(*p);
        }
        assert!(t.contains(PageId(7)));
        assert_eq!(t.hot_pages()[0].0, PageId(7));
    }

    #[test]
    fn favors_recency_over_quantity() {
        // Page 1 hammered early, pages 2..6 cycle late with K=2: the early
        // heavy hitter is ground down by decrement sweeps.
        let mut t = MeaTracker::new(2, 16);
        for _ in 0..10 {
            t.record(PageId(1));
        }
        // Late burst of fresh pages erodes page 1.
        for round in 0..6 {
            t.record(PageId(100 + round));
        }
        assert!(
            t.count_of(PageId(1)).unwrap_or(0) < 10,
            "early heavy hitter must lose weight to late arrivals"
        );
    }

    #[test]
    fn counter_saturates_at_width() {
        let mut t = MeaTracker::new(4, 2);
        for _ in 0..100 {
            t.record(PageId(5));
        }
        assert_eq!(t.count_of(PageId(5)), Some(3)); // 2^2 - 1
    }

    #[test]
    fn never_exceeds_capacity() {
        let mut t = MeaTracker::new(8, 4);
        for i in 0..10_000u64 {
            t.record(PageId(i % 97));
            assert!(t.len() <= 8);
        }
    }

    #[test]
    fn decrement_evicts_zeros_and_skips_insert() {
        let mut t = MeaTracker::new(2, 8);
        t.record(PageId(1));
        t.record(PageId(1)); // count 2
        t.record(PageId(2)); // count 1
        t.record(PageId(3)); // sweep: 1->1, 2->0 evicted; 3 not inserted
        assert_eq!(t.count_of(PageId(1)), Some(1));
        assert!(!t.contains(PageId(2)));
        assert!(!t.contains(PageId(3)));
        assert_eq!(t.len(), 1);
        let s = t.op_stats();
        assert_eq!(s.decrement_sweeps, 1);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.insertions, 2);
        assert_eq!(s.increments, 1);
    }

    #[test]
    fn matches_reference_implementation() {
        // Deterministic pseudo-random stream, no rand dependency needed.
        let mut x = 0x243F6A8885A308D3u64;
        let stream: Vec<PageId> = (0..5_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                PageId(x % 50)
            })
            .collect();
        for (k, bits) in [(1usize, 8u32), (4, 2), (16, 4), (64, 16)] {
            let mut t = MeaTracker::new(k, bits);
            for p in &stream {
                t.record(*p);
            }
            let reference = reference_mea(&stream, k, t.counter_max());
            let got: HashMap<PageId, u64> = t.hot_pages().into_iter().collect();
            assert_eq!(got, reference, "k={k} bits={bits}");
        }
    }

    #[test]
    fn reset_clears_entries_but_not_stats() {
        let mut t = MeaTracker::new(4, 8);
        t.record(PageId(1));
        t.reset();
        assert!(t.is_empty());
        assert_eq!(t.op_stats().insertions, 1);
    }

    #[test]
    fn storage_matches_paper_cost() {
        // 64 entries x (21 tag + 2 counter) bits = 1472 bits = 184 B per pod.
        let t = MeaTracker::paper_default();
        assert_eq!(t.storage_bits(21), 1472);
        assert_eq!(t.storage_bits(21) / 8, 184);
        // Four pods: 736 B total, the paper's headline number.
        assert_eq!(4 * t.storage_bits(21) / 8, 736);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        let _ = MeaTracker::new(0, 2);
    }

    #[test]
    #[should_panic(expected = "counter width")]
    fn zero_width_panics() {
        let _ = MeaTracker::new(4, 0);
    }
}
